//! The simulator driver: [`SimDriver`] adapts a [`ProtocolCore`] to the
//! discrete-event simulator's [`ProtocolNode`] interface.
//!
//! The adapter is deliberately thin so the sans-IO split costs nothing in
//! behaviour: each simulator event is translated to one [`Input`], the core
//! is polled with the live [`Context`] as its [`NodeView`], and the mailbox
//! is drained back into the context *in emission order*. Because the
//! context records actions and the simulator applies them after the handler
//! returns — exactly as the pre-sans-IO protocol implementations did — the
//! event sequence, RNG draw order and metrics of a run are byte-identical
//! to the welded-to-the-simulator design this adapter replaced.

use crate::core::ProtocolCore;
use crate::mailbox::{Effect, Input, Mailbox};
use crate::trace::{TraceEvent, TraceHandle, TracedInput};
use crate::view::{HotLanes, NodeView};
use fnp_netsim::{Context, NodeId, Payload, ProtocolNode, SimTime};
use rand::rngs::StdRng;

impl<M> HotLanes for Context<'_, M> {
    fn seen(&self) -> bool {
        Context::seen(self)
    }

    fn set_seen(&mut self) -> bool {
        Context::set_seen(self)
    }

    fn phase(&self) -> u8 {
        Context::phase(self)
    }

    fn set_phase(&mut self, phase: u8) {
        Context::set_phase(self, phase);
    }

    fn counter_lane(&self) -> u32 {
        Context::counter_lane(self)
    }

    fn set_counter_lane(&mut self, value: u32) {
        Context::set_counter_lane(self, value);
    }
}

impl<M> NodeView for Context<'_, M> {
    fn node_id(&self) -> NodeId {
        Context::node_id(self)
    }

    fn now(&self) -> SimTime {
        Context::now(self)
    }

    fn neighbors(&self) -> &[NodeId] {
        Context::neighbors(self)
    }

    fn node_count(&self) -> usize {
        Context::node_count(self)
    }

    fn rng(&mut self) -> &mut StdRng {
        Context::rng(self)
    }
}

/// Adapter running a sans-IO [`ProtocolCore`] under the simulator.
///
/// Implements [`ProtocolNode`] by translating simulator callbacks into
/// [`Input`]s and draining the core's [`Mailbox`] back into the [`Context`].
/// Dereferences to the wrapped core so read accessors
/// (`driver.is_origin()`, …) keep working at existing call sites.
#[derive(Clone, Debug, Default)]
pub struct SimDriver<C: ProtocolCore> {
    core: C,
    mailbox: Mailbox<C::Message>,
    trace: Option<TraceHandle<C::Message>>,
}

impl<C: ProtocolCore> SimDriver<C> {
    /// Wraps `core` for use as a simulator node.
    pub fn new(core: C) -> Self {
        Self {
            core,
            mailbox: Mailbox::new(),
            trace: None,
        }
    }

    /// Like [`SimDriver::new`], additionally recording every poll (input,
    /// RNG state before, effects emitted) into `trace` for later replay
    /// through the bare core via [`replay_trace`](crate::replay_trace).
    pub fn traced(core: C, trace: TraceHandle<C::Message>) -> Self {
        Self {
            core,
            mailbox: Mailbox::new(),
            trace: Some(trace),
        }
    }

    /// The wrapped core.
    pub fn core(&self) -> &C {
        &self.core
    }

    /// Mutable access to the wrapped core.
    pub fn core_mut(&mut self) -> &mut C {
        &mut self.core
    }

    /// Unwraps the adapter, returning the core.
    pub fn into_core(self) -> C {
        self.core
    }

    /// Runs an out-of-band protocol entry point (such as "start a
    /// broadcast") against the core and applies the emitted effects.
    ///
    /// This is how experiments trigger an origin under
    /// [`Simulator::trigger`](fnp_netsim::Simulator::trigger):
    ///
    /// ```ignore
    /// sim.trigger(origin, |driver, ctx| {
    ///     driver.drive(ctx, |core, view, out| core.start_broadcast(tx_id, view, out));
    /// });
    /// ```
    pub fn drive<R>(
        &mut self,
        ctx: &mut Context<'_, C::Message>,
        f: impl FnOnce(&mut C, &mut Context<'_, C::Message>, &mut Mailbox<C::Message>) -> R,
    ) -> R
    where
        C::Message: Clone,
    {
        debug_assert!(self.mailbox.is_empty());
        let rng_before = self.trace.as_ref().map(|_| ctx.rng().clone());
        let result = f(&mut self.core, ctx, &mut self.mailbox);
        if let (Some(trace), Some(rng_before)) = (&self.trace, rng_before) {
            trace.record(TraceEvent {
                node: NodeView::node_id(ctx),
                now: NodeView::now(ctx),
                input: TracedInput::External,
                rng_before,
                effects: self.mailbox.effects().to_vec(),
            });
        }
        flush(&mut self.mailbox, ctx);
        result
    }

    fn dispatch(&mut self, input: Input<C::Message>, ctx: &mut Context<'_, C::Message>)
    where
        C::Message: Clone,
    {
        debug_assert!(self.mailbox.is_empty());
        let recorded = self
            .trace
            .as_ref()
            .map(|_| (input.clone(), ctx.rng().clone()));
        self.core.poll(input, ctx, &mut self.mailbox);
        if let (Some(trace), Some((input, rng_before))) = (&self.trace, recorded) {
            trace.record(TraceEvent {
                node: NodeView::node_id(ctx),
                now: NodeView::now(ctx),
                input: TracedInput::Input(input),
                rng_before,
                effects: self.mailbox.effects().to_vec(),
            });
        }
        flush(&mut self.mailbox, ctx);
    }
}

impl<C: ProtocolCore> std::ops::Deref for SimDriver<C> {
    type Target = C;

    fn deref(&self) -> &C {
        &self.core
    }
}

impl<C: ProtocolCore> ProtocolNode for SimDriver<C>
where
    C::Message: Clone,
{
    type Message = C::Message;

    fn on_init(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.dispatch(Input::Init, ctx);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        message: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    ) {
        self.dispatch(Input::Message { from, message }, ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, Self::Message>) {
        self.dispatch(Input::TimerFired { tag }, ctx);
    }
}

/// Applies drained effects to the simulator context, in emission order.
fn flush<M: Payload>(mailbox: &mut Mailbox<M>, ctx: &mut Context<'_, M>) {
    for effect in mailbox.drain() {
        match effect {
            Effect::Send { to, message } => ctx.send(to, message),
            Effect::Broadcast { message, excluded } => ctx.broadcast_except(message, excluded),
            Effect::SetTimer { delay, tag } => ctx.set_timer(delay, tag),
            Effect::Deliver => ctx.mark_delivered(),
            Effect::Counter { name, amount } => ctx.record_many(name, amount),
        }
    }
}
