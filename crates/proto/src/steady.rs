//! Steady-state sessions: many overlapping broadcasts on one simulator.
//!
//! Every single-broadcast experiment gives the whole overlay to one
//! transaction: one seen bit per node, one protocol instance per node, one
//! delivery per node. Under sustained traffic those assumptions all break —
//! transactions overlap in flight and their duplicate-suppression state,
//! protocol state machines and delivery records must not collide.
//!
//! This module multiplexes any single-broadcast [`ProtocolCore`] into a
//! heavy-traffic session without touching the core's logic:
//!
//! * [`Tagged`] wraps the core's message type with a transaction id, so
//!   concurrent broadcasts share the wire but never each other's handlers.
//! * [`SteadyProtocol`] is the small adapter trait a core implements to
//!   become multiplexable: spawn a fresh per-transaction instance, and
//!   start a broadcast for a given transaction id.
//! * [`SteadyNode`] is the per-overlay-node multiplexer: it owns one lazy
//!   [`ProtocolCore`] instance per transaction the node has touched, routes
//!   each tagged input to the right instance, and rewrites the emitted
//!   effects (tagging messages, namespacing timer tags by transaction).
//! * [`SteadySession`] is the shared per-trial bookkeeping: a
//!   [`LanePool`] of per-transaction hot lanes, exact in-flight event
//!   accounting per transaction (each message and pending timer counts;
//!   when a transaction's count drains to zero its lanes are recycled),
//!   the delivery log that feeds latency percentiles and the mempool
//!   replay, and the first-spy observation record for privacy-under-load.
//!
//! Arrivals are precomputed (see [`fnp_netsim::arrival`]) and scheduled as
//! ordinary timers at `Init`, so the whole session rides the existing time
//! wheel: a steady-state trial is a pure function of its seed, and rows are
//! byte-identical at any worker-thread count.
//!
//! The in-flight accounting assumes no event loss: steady sessions run
//! without churn and without an event/time cap, which the experiment
//! drivers uphold. (With message loss a transaction's counter would never
//! reach zero and its lanes would simply stay live until the trial ends —
//! results stay correct, only the recycling stalls.)

use crate::core::ProtocolCore;
use crate::driver::SimDriver;
use crate::mailbox::{Effect, Input, Mailbox};
use crate::view::{HotLanes, NodeView};
use fnp_netsim::{
    Graph, HotState, LanePool, Metrics, NodeId, Payload, SimConfig, SimTime, Simulator, TrialArena,
};
use rand::rngs::StdRng;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Extra wire bytes accounted for the transaction tag a steady-state
/// session adds to every message.
pub const TX_TAG_BYTES: usize = 8;

/// Bits of a timer tag reserved for the inner core's own tag (slot 0 is
/// the arrival timer, inner tags are stored shifted by one).
const TAG_SLOT_BITS: u32 = 16;
const TAG_SLOT_MASK: u64 = (1 << TAG_SLOT_BITS) - 1;

/// A protocol message carrying the id of the transaction it belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tagged<M> {
    /// The transaction this message disseminates.
    pub tx: u64,
    /// The wrapped single-broadcast protocol message.
    pub inner: M,
}

impl<M: Payload> Payload for Tagged<M> {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes() + TX_TAG_BYTES
    }
}

/// Adapter trait a single-broadcast [`ProtocolCore`] implements to become
/// multiplexable by a [`SteadyNode`].
pub trait SteadyProtocol: ProtocolCore + Sized {
    /// Spawns a fresh per-transaction instance of this core.
    ///
    /// Called on the *prototype* instance a node was constructed with
    /// (which is never polled itself); the spawn must preserve the node's
    /// per-node configuration — parameters, stem successor, group
    /// membership, shared scratch pools — while starting from pristine
    /// protocol state.
    fn per_tx_instance(&self) -> Self;

    /// Starts broadcasting transaction `tx` from this node, exactly like
    /// the core's single-broadcast entry point.
    fn start_tx(&mut self, tx: u64, view: &mut impl NodeView, out: &mut Mailbox<Self::Message>);

    /// Whether a receiver-side instance whose first contact with the
    /// transaction is `message` needs [`Input::Init`] polled before the
    /// message is delivered.
    ///
    /// Defaults to `false`: for most cores `Init` is a no-op on receivers.
    /// The flexible broadcast overrides this for DC-net contributions, so
    /// that exactly the originator's group — and no other — runs phase-1
    /// rounds for the transaction.
    fn wants_init(_first: &Self::Message) -> bool {
        false
    }
}

/// One scheduled transaction injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Simulation time of the injection (strictly positive).
    pub at: SimTime,
    /// The injecting node.
    pub origin: NodeId,
}

/// Final per-transaction outcome extracted from a finished session.
#[derive(Clone, Debug)]
pub struct TxOutcome {
    /// The injecting node.
    pub origin: NodeId,
    /// Injection time.
    pub injected_at: SimTime,
    /// Number of nodes that delivered (accepted) the transaction.
    pub delivered_count: usize,
    /// Earliest delivery on a miner node (node index below the session's
    /// miner count), if any — what the mempool replay consumes.
    pub first_miner_delivery: Option<SimTime>,
    /// The sender of the first message any adversary node received for
    /// this transaction (the first-spy estimate), if one was observed.
    pub first_spy_estimate: Option<NodeId>,
    /// Time at which the transaction's last in-flight event drained.
    pub completed_at: Option<SimTime>,
}

/// Report of one finished steady-state session.
#[derive(Clone, Debug)]
pub struct SteadyReport {
    /// Per-transaction outcomes, indexed by transaction id.
    pub per_tx: Vec<TxOutcome>,
    /// Delivery latency of every `(transaction, node)` delivery, in
    /// microseconds since the transaction's injection, in delivery order.
    pub latencies_us: Vec<u64>,
    /// High-water mark of transactions simultaneously in flight.
    pub peak_concurrent: usize,
}

/// Per-transaction live bookkeeping.
#[derive(Clone, Debug)]
struct TxState {
    /// Events (messages in flight + pending timers) that will still arrive
    /// as inputs for this transaction. Starts at 1: the arrival timer.
    inflight: u64,
    injected_at: SimTime,
    origin: NodeId,
    delivered_count: usize,
    first_miner_delivery: Option<SimTime>,
    first_spy_estimate: Option<NodeId>,
    completed_at: Option<SimTime>,
}

/// Shared per-trial session state (one per simulation, behind
/// `Rc<RefCell<…>>` — the simulator is single-threaded).
#[derive(Debug)]
pub struct SteadySession {
    lanes: LanePool,
    txs: Vec<TxState>,
    /// Live per-transaction lane sets.
    active: BTreeMap<u64, HotState>,
    /// Transactions whose last event drained, in retirement order; nodes
    /// consume this with a cursor to drop their retired instances.
    retired: Vec<u64>,
    adversary: Vec<bool>,
    miner_count: usize,
    latencies_us: Vec<u64>,
}

impl SteadySession {
    /// Builds the session bookkeeping for an `n`-node overlay.
    #[must_use]
    pub fn new(n: usize, arrivals: &[Arrival], adversaries: &[NodeId], miner_count: usize) -> Self {
        let mut adversary = vec![false; n];
        for node in adversaries {
            adversary[node.index()] = true;
        }
        let txs = arrivals
            .iter()
            .map(|arrival| TxState {
                inflight: 1,
                injected_at: arrival.at,
                origin: arrival.origin,
                delivered_count: 0,
                first_miner_delivery: None,
                first_spy_estimate: None,
                completed_at: None,
            })
            .collect();
        Self {
            lanes: LanePool::new(n),
            txs,
            active: BTreeMap::new(),
            retired: Vec::new(),
            adversary,
            miner_count,
            latencies_us: Vec::new(),
        }
    }

    #[allow(clippy::cast_possible_truncation)] // tx ids are dense indices
    fn tx(&mut self, tx: u64) -> &mut TxState {
        &mut self.txs[tx as usize]
    }

    fn record_delivery(&mut self, tx: u64, node: NodeId, now: SimTime) {
        let miner_count = self.miner_count;
        let state = self.tx(tx);
        state.delivered_count += 1;
        if node.index() < miner_count && state.first_miner_delivery.is_none() {
            state.first_miner_delivery = Some(now);
        }
        let latency = now.saturating_sub(state.injected_at);
        self.latencies_us.push(latency);
    }

    fn observe(&mut self, tx: u64, receiver: NodeId, from: NodeId) {
        if !self.adversary[receiver.index()] {
            return;
        }
        let state = self.tx(tx);
        if state.first_spy_estimate.is_none() {
            state.first_spy_estimate = Some(from);
        }
    }

    /// Consumes the finished session into its report.
    #[must_use]
    pub fn into_report(self) -> SteadyReport {
        SteadyReport {
            peak_concurrent: self.lanes.peak_live(),
            per_tx: self
                .txs
                .into_iter()
                .map(|state| TxOutcome {
                    origin: state.origin,
                    injected_at: state.injected_at,
                    delivered_count: state.delivered_count,
                    first_miner_delivery: state.first_miner_delivery,
                    first_spy_estimate: state.first_spy_estimate,
                    completed_at: state.completed_at,
                })
                .collect(),
            latencies_us: self.latencies_us,
        }
    }
}

/// The event a tagged input decodes to.
enum TxEvent<M> {
    /// The node's own arrival timer fired: inject the transaction.
    Arrival,
    /// A tagged protocol message arrived.
    Message {
        /// Sending node.
        from: NodeId,
        /// The unwrapped inner message.
        message: M,
    },
    /// A namespaced protocol timer fired.
    Timer {
        /// The inner core's original tag.
        tag: u64,
    },
}

/// Per-node multiplexer running one lazy [`SteadyProtocol`] instance per
/// transaction over a shared [`SteadySession`].
#[derive(Debug)]
pub struct SteadyNode<C: SteadyProtocol> {
    prototype: C,
    /// Live per-transaction instances; the bool records whether `Init` has
    /// been polled on the instance.
    instances: BTreeMap<u64, (C, bool)>,
    session: Rc<RefCell<SteadySession>>,
    /// Injections this node performs, as `(at, tx)` timer schedules.
    arrivals: Vec<(SimTime, u64)>,
    /// Reused inner mailbox (drained into the outer one after every poll).
    inner: Mailbox<C::Message>,
    /// Cursor into the session's retirement log.
    pruned: usize,
}

impl<C: SteadyProtocol> SteadyNode<C> {
    /// Builds the multiplexer for one overlay node.
    ///
    /// `prototype` is the node's configured single-broadcast core; it is
    /// never polled, only [`SteadyProtocol::per_tx_instance`]d. `arrivals`
    /// are the injections scheduled on this node.
    pub fn new(
        prototype: C,
        session: Rc<RefCell<SteadySession>>,
        arrivals: Vec<(SimTime, u64)>,
    ) -> Self {
        Self {
            prototype,
            instances: BTreeMap::new(),
            session,
            arrivals,
            inner: Mailbox::new(),
            pruned: 0,
        }
    }

    /// The number of transaction instances currently alive on this node.
    #[must_use]
    pub fn live_instances(&self) -> usize {
        self.instances.len()
    }

    fn handle<V: NodeView>(
        &mut self,
        tx: u64,
        event: TxEvent<C::Message>,
        view: &mut V,
        out: &mut Mailbox<Tagged<C::Message>>,
    ) {
        // Prologue: consume the input in the session's in-flight
        // accounting, check the transaction's lanes out, drop instances of
        // transactions retired since this node was last polled.
        let mut lane = {
            let mut sess = self.session.borrow_mut();
            for &retired in &sess.retired[self.pruned..] {
                self.instances.remove(&retired);
            }
            self.pruned = sess.retired.len();
            {
                let state = sess.tx(tx);
                debug_assert!(state.inflight > 0, "input for a drained transaction");
                state.inflight -= 1;
            }
            if let TxEvent::Message { from, .. } = &event {
                sess.observe(tx, view.node_id(), *from);
            }
            match event {
                TxEvent::Arrival => sess.lanes.acquire(),
                _ => sess
                    .active
                    .remove(&tx)
                    .expect("live transaction has lanes checked in"),
            }
        };

        // Poll the transaction's instance against its own lanes.
        debug_assert!(self.inner.is_empty());
        let node = view.node_id();
        {
            let mut lane_view = LaneView {
                lane: &mut lane,
                node,
                view,
            };
            match event {
                TxEvent::Arrival => {
                    let mut instance = self.prototype.per_tx_instance();
                    instance.poll(Input::Init, &mut lane_view, &mut self.inner);
                    instance.start_tx(tx, &mut lane_view, &mut self.inner);
                    self.instances.insert(tx, (instance, true));
                }
                TxEvent::Message { from, message } => {
                    if !self.instances.contains_key(&tx) {
                        let instance = self.prototype.per_tx_instance();
                        self.instances.insert(tx, (instance, false));
                    }
                    let (instance, inited) = self
                        .instances
                        .get_mut(&tx)
                        .expect("inserted above if absent");
                    if !*inited && C::wants_init(&message) {
                        instance.poll(Input::Init, &mut lane_view, &mut self.inner);
                        *inited = true;
                    }
                    instance.poll(
                        Input::Message { from, message },
                        &mut lane_view,
                        &mut self.inner,
                    );
                }
                TxEvent::Timer { tag } => {
                    // Only a live instance can have set the timer.
                    if let Some((instance, _)) = self.instances.get_mut(&tx) {
                        instance.poll(Input::TimerFired { tag }, &mut lane_view, &mut self.inner);
                    }
                }
            }
        }

        // Epilogue: translate the inner effects onto the shared wire and
        // settle the transaction's in-flight balance.
        let now = view.now();
        let mut sess = self.session.borrow_mut();
        for effect in self.inner.drain() {
            match effect {
                Effect::Send { to, message } => {
                    sess.tx(tx).inflight += 1;
                    out.send(to, Tagged { tx, inner: message });
                }
                Effect::Broadcast { message, excluded } => {
                    let fanout = view
                        .neighbors()
                        .iter()
                        .filter(|neighbor| !excluded.contains(neighbor))
                        .count() as u64;
                    sess.tx(tx).inflight += fanout;
                    out.push(Effect::Broadcast {
                        message: Tagged { tx, inner: message },
                        excluded,
                    });
                }
                Effect::SetTimer { delay, tag } => {
                    sess.tx(tx).inflight += 1;
                    out.set_timer(delay, encode_timer(tx, tag));
                }
                Effect::Deliver => sess.record_delivery(tx, node, now),
                Effect::Counter { name, amount } => out.record_many(name, amount),
            }
        }
        if sess.tx(tx).inflight == 0 {
            sess.tx(tx).completed_at = Some(now);
            sess.lanes.release(lane);
            sess.retired.push(tx);
        } else {
            sess.active.insert(tx, lane);
        }
    }
}

/// Encodes an inner timer tag into the shared timer-tag namespace.
fn encode_timer(tx: u64, tag: u64) -> u64 {
    assert!(
        tag < TAG_SLOT_MASK,
        "inner timer tag {tag} exceeds the steady-session tag namespace"
    );
    (tx << TAG_SLOT_BITS) | (tag + 1)
}

impl<C: SteadyProtocol> ProtocolCore for SteadyNode<C> {
    type Message = Tagged<C::Message>;

    fn poll<V: NodeView>(
        &mut self,
        input: Input<Self::Message>,
        view: &mut V,
        out: &mut Mailbox<Self::Message>,
    ) {
        match input {
            Input::Init => {
                // Schedule this node's injections; each arrival was already
                // counted as one in-flight event at session construction.
                for (at, tx) in std::mem::take(&mut self.arrivals) {
                    out.set_timer(at, tx << TAG_SLOT_BITS);
                }
            }
            Input::Message { from, message } => {
                let Tagged { tx, inner } = message;
                self.handle(
                    tx,
                    TxEvent::Message {
                        from,
                        message: inner,
                    },
                    view,
                    out,
                );
            }
            Input::TimerFired { tag } => {
                let tx = tag >> TAG_SLOT_BITS;
                let slot = tag & TAG_SLOT_MASK;
                let event = if slot == 0 {
                    TxEvent::Arrival
                } else {
                    TxEvent::Timer { tag: slot - 1 }
                };
                self.handle(tx, event, view, out);
            }
        }
    }
}

/// A [`NodeView`] that redirects the hot lanes to one transaction's lane
/// set while forwarding everything else to the underlying view.
struct LaneView<'a, V> {
    lane: &'a mut HotState,
    node: NodeId,
    view: &'a mut V,
}

impl<V> HotLanes for LaneView<'_, V> {
    fn seen(&self) -> bool {
        self.lane.seen(self.node)
    }

    fn set_seen(&mut self) -> bool {
        self.lane.set_seen(self.node)
    }

    fn phase(&self) -> u8 {
        self.lane.phase(self.node)
    }

    fn set_phase(&mut self, phase: u8) {
        self.lane.set_phase(self.node, phase);
    }

    fn counter_lane(&self) -> u32 {
        self.lane.counter(self.node)
    }

    fn set_counter_lane(&mut self, value: u32) {
        self.lane.set_counter(self.node, value);
    }
}

impl<V: NodeView> NodeView for LaneView<'_, V> {
    fn node_id(&self) -> NodeId {
        self.node
    }

    fn now(&self) -> SimTime {
        self.view.now()
    }

    fn neighbors(&self) -> &[NodeId] {
        self.view.neighbors()
    }

    fn node_count(&self) -> usize {
        self.view.node_count()
    }

    fn rng(&mut self) -> &mut StdRng {
        self.view.rng()
    }
}

/// Runs one steady-state session: injects `arrivals` into an overlay whose
/// node `i` runs `prototypes[i]`, lets the broadcasts overlap freely and
/// returns the simulator metrics plus the session report.
///
/// Nodes `0..miner_count` are the miners (their earliest delivery per
/// transaction is recorded for the mempool replay); `adversaries` are the
/// colluding observers for the first-spy estimate. The session relies on
/// loss-free execution for its lane recycling, so `config` must not cap
/// simulated time below the drain point and must not schedule churn —
/// callers pass the defaults.
///
/// # Panics
///
/// Panics if `prototypes.len()` differs from the overlay size.
pub fn run_steady_in<C: SteadyProtocol + 'static>(
    arena: &mut TrialArena,
    graph: Graph,
    prototypes: Vec<C>,
    arrivals: &[Arrival],
    adversaries: &[NodeId],
    miner_count: usize,
    config: SimConfig,
) -> (Metrics, SteadyReport) {
    let n = graph.node_count();
    assert_eq!(prototypes.len(), n, "one prototype per overlay node");
    let session = Rc::new(RefCell::new(SteadySession::new(
        n,
        arrivals,
        adversaries,
        miner_count,
    )));

    let mut per_node: Vec<Vec<(SimTime, u64)>> = vec![Vec::new(); n];
    for (tx, arrival) in arrivals.iter().enumerate() {
        per_node[arrival.origin.index()].push((arrival.at, tx as u64));
    }

    let mut nodes: Vec<SimDriver<SteadyNode<C>>> = arena.take_nodes();
    nodes.extend(
        prototypes
            .into_iter()
            .zip(per_node)
            .map(|(prototype, arrivals)| {
                SimDriver::new(SteadyNode::new(prototype, Rc::clone(&session), arrivals))
            }),
    );

    let mut sim = Simulator::new_in(arena, graph, nodes, config);
    sim.run();
    let (nodes, metrics) = sim.into_parts_in(arena);
    // Clearing the node storage drops every `Rc` clone of the session.
    arena.store_nodes(nodes);
    let session = Rc::try_unwrap(session)
        .expect("all session handles released with the nodes")
        .into_inner();
    (metrics, session.into_report())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Ping;
    impl Payload for Ping {
        fn kind(&self) -> &'static str {
            "ping"
        }

        fn size_bytes(&self) -> usize {
            100
        }
    }

    #[test]
    fn tagged_payload_delegates_kind_and_adds_tag_bytes() {
        let tagged = Tagged { tx: 7, inner: Ping };
        assert_eq!(tagged.kind(), "ping");
        assert_eq!(tagged.size_bytes(), 100 + TX_TAG_BYTES);
    }

    #[test]
    fn timer_tags_round_trip_and_reserve_slot_zero() {
        let encoded = encode_timer(3, 1);
        assert_eq!(encoded >> TAG_SLOT_BITS, 3);
        assert_eq!(encoded & TAG_SLOT_MASK, 2);
        // Slot 0 of every transaction is the arrival timer.
        assert_ne!(encoded & TAG_SLOT_MASK, 0);
    }

    #[test]
    #[should_panic(expected = "tag namespace")]
    fn oversized_inner_tags_are_rejected() {
        let _ = encode_timer(0, TAG_SLOT_MASK);
    }

    #[test]
    fn session_counts_deliveries_and_first_spy_per_transaction() {
        let arrivals = [
            Arrival {
                at: 10,
                origin: NodeId::new(4),
            },
            Arrival {
                at: 20,
                origin: NodeId::new(5),
            },
        ];
        let mut session = SteadySession::new(6, &arrivals, &[NodeId::new(3)], 2);
        session.record_delivery(0, NodeId::new(4), 10);
        session.record_delivery(0, NodeId::new(1), 35);
        session.record_delivery(1, NodeId::new(0), 50);
        // Adversary node 3 first hears tx 0 from node 4 (the origin);
        // non-adversary receipts are ignored.
        session.observe(0, NodeId::new(2), NodeId::new(1));
        session.observe(0, NodeId::new(3), NodeId::new(4));
        session.observe(0, NodeId::new(3), NodeId::new(1));
        let report = session.into_report();
        assert_eq!(report.per_tx[0].delivered_count, 2);
        assert_eq!(report.per_tx[0].first_miner_delivery, Some(35));
        assert_eq!(report.per_tx[0].first_spy_estimate, Some(NodeId::new(4)));
        assert_eq!(report.per_tx[1].first_miner_delivery, Some(50));
        assert_eq!(report.per_tx[1].first_spy_estimate, None);
        assert_eq!(report.latencies_us, vec![0, 25, 30]);
    }

    /// A miniature flood-and-prune with a delayed re-announce timer: enough
    /// structure to exercise message tagging, timer namespacing, lane
    /// isolation and in-flight accounting end to end.
    #[derive(Clone, Debug, Default)]
    struct MiniFlood;

    impl ProtocolCore for MiniFlood {
        type Message = Ping;

        fn poll<V: NodeView>(&mut self, input: Input<Ping>, view: &mut V, out: &mut Mailbox<Ping>) {
            match input {
                Input::Init => {}
                Input::Message { from, message } => {
                    if view.set_seen() {
                        return;
                    }
                    out.deliver();
                    out.broadcast(message, &[from]);
                    // Re-announce once after a delay, exercising per-tx
                    // timers; the duplicate receipts all prune.
                    out.set_timer(1_000, 3);
                }
                Input::TimerFired { tag } => {
                    if tag == 3 {
                        out.broadcast(Ping, &[]);
                    }
                }
            }
        }
    }

    impl SteadyProtocol for MiniFlood {
        fn per_tx_instance(&self) -> Self {
            MiniFlood
        }

        fn start_tx(&mut self, _tx: u64, view: &mut impl NodeView, out: &mut Mailbox<Ping>) {
            if view.set_seen() {
                return;
            }
            out.deliver();
            out.broadcast(Ping, &[]);
        }
    }

    fn ring(n: usize) -> Graph {
        fnp_netsim::topology::ring(n).unwrap()
    }

    #[test]
    fn overlapping_broadcasts_all_cover_the_overlay() {
        let n = 12;
        let arrivals: Vec<Arrival> = (0..6)
            .map(|i| Arrival {
                at: 1 + i * 400, // well inside each other's flight time
                origin: NodeId::new((5 * i as usize + 1) % n),
            })
            .collect();
        let (metrics, report) = run_steady_in(
            &mut TrialArena::new(),
            ring(n),
            vec![MiniFlood; n],
            &arrivals,
            &[NodeId::new(0)],
            2,
            SimConfig::default(),
        );
        assert_eq!(report.per_tx.len(), arrivals.len());
        for (tx, outcome) in report.per_tx.iter().enumerate() {
            assert_eq!(outcome.delivered_count, n, "tx {tx} did not cover");
            assert!(
                outcome.first_miner_delivery.is_some(),
                "tx {tx} missed miners"
            );
            assert!(outcome.completed_at.is_some(), "tx {tx} never drained");
            assert!(outcome.first_spy_estimate.is_some(), "tx {tx}");
        }
        assert_eq!(report.latencies_us.len(), arrivals.len() * n);
        assert!(
            report.peak_concurrent >= 2,
            "arrivals 400 µs apart should overlap in flight"
        );
        // Tag bytes ride on every wire message.
        assert_eq!(metrics.bytes_sent, metrics.messages_sent * (100 + 8) as u64);
    }

    #[test]
    fn sequential_arrivals_recycle_lanes() {
        let n = 8;
        // Spaced far beyond a broadcast's flight time: never concurrent.
        let arrivals: Vec<Arrival> = (0..5)
            .map(|i| Arrival {
                at: 1 + i * 10_000_000,
                origin: NodeId::new(i as usize % n),
            })
            .collect();
        let (_, report) = run_steady_in(
            &mut TrialArena::new(),
            ring(n),
            vec![MiniFlood; n],
            &arrivals,
            &[],
            0,
            SimConfig::default(),
        );
        assert_eq!(
            report.peak_concurrent, 1,
            "sequential txs must share one lane set"
        );
        for outcome in &report.per_tx {
            assert_eq!(outcome.delivered_count, n);
            assert!(
                outcome.first_miner_delivery.is_none(),
                "no miners configured"
            );
        }
    }

    #[test]
    fn steady_sessions_are_deterministic_and_arena_reuse_is_invisible() {
        let n = 10;
        let arrivals: Vec<Arrival> = (0..4)
            .map(|i| Arrival {
                at: 1 + i * 700,
                origin: NodeId::new((3 * i as usize) % n),
            })
            .collect();
        let run = |arena: &mut TrialArena| {
            let (metrics, report) = run_steady_in(
                arena,
                ring(n),
                vec![MiniFlood; n],
                &arrivals,
                &[NodeId::new(7)],
                1,
                SimConfig {
                    seed: 42,
                    ..SimConfig::default()
                },
            );
            let digest = format!("{report:?}");
            arena.recycle_metrics(metrics);
            digest
        };
        let fresh = run(&mut TrialArena::new());
        let mut arena = TrialArena::new();
        let cold = run(&mut arena);
        let warm = run(&mut arena);
        assert_eq!(fresh, cold);
        assert_eq!(fresh, warm);
    }
}
