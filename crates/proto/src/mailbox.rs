//! Protocol inputs and the mailbox of deferred effects.
//!
//! A sans-IO core never touches a socket, a clock or the simulator: it is
//! handed one [`Input`] at a time and responds by pushing [`Effect`]s into a
//! [`Mailbox`]. The driver that owns the core — the discrete-event
//! simulator, the `fnp-node` stdin/stdout event loop, or a replay harness —
//! drains the mailbox after every poll and performs the effects in order.
//! Effect *order* is part of the protocol contract: drivers must apply
//! effects exactly in the order they were pushed, because downstream
//! randomness (link-latency sampling, fan-out iteration) consumes the
//! driver's RNG in that order.

use fnp_netsim::{NodeId, SimTime};

/// One event delivered to a protocol core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Input<M> {
    /// The node is starting up (delivered once, before any other input).
    Init,
    /// A protocol message arrived from a peer.
    Message {
        /// The sending node.
        from: NodeId,
        /// The message payload.
        message: M,
    },
    /// A timer previously requested via [`Effect::SetTimer`] fired.
    TimerFired {
        /// The tag the core attached when setting the timer.
        tag: u64,
    },
}

/// One deferred action emitted by a protocol core.
///
/// Mirrors the action vocabulary of the simulator's
/// [`Context`](fnp_netsim::Context) so the simulator driver can translate
/// effects one-to-one (keeping runs byte-identical to the pre-sans-IO
/// implementation), while remaining meaningful to any other driver: a real
/// transport maps `Send`/`Broadcast` to socket writes and `SetTimer` to its
/// timer wheel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Effect<M> {
    /// Send `message` to the single peer `to`.
    Send {
        /// The destination node.
        to: NodeId,
        /// The message payload.
        message: M,
    },
    /// Send `message` to every overlay neighbour not in `excluded`.
    ///
    /// Kept as a first-class effect (rather than expanded to `Send`s by the
    /// core) so drivers can exploit fan-out sharing: the simulator queues
    /// one reference-counted payload for the whole fan-out.
    Broadcast {
        /// The message payload.
        message: M,
        /// Neighbours to skip (typically the peer the message came from).
        excluded: Vec<NodeId>,
    },
    /// Request a [`Input::TimerFired`] callback after `delay`.
    SetTimer {
        /// Delay from now until the timer fires.
        delay: SimTime,
        /// Tag handed back in [`Input::TimerFired`].
        tag: u64,
    },
    /// Mark the broadcast payload as delivered (accepted) on this node.
    Deliver,
    /// Increment the experiment counter `name` by `amount`.
    Counter {
        /// Counter name (a static string, interned by the metrics sink).
        name: &'static str,
        /// Increment amount.
        amount: u64,
    },
}

/// An ordered collection of [`Effect`]s produced by one poll of a core.
///
/// The mailbox is append-only while the core runs and drained by the driver
/// afterwards; the buffer is reused across polls so the hot path does not
/// allocate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mailbox<M> {
    effects: Vec<Effect<M>>,
}

impl<M> Default for Mailbox<M> {
    fn default() -> Self {
        Self {
            effects: Vec::new(),
        }
    }
}

impl<M> Mailbox<M> {
    /// Creates an empty mailbox.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending effects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// Whether no effects are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }

    /// The pending effects, in emission order.
    #[must_use]
    pub fn effects(&self) -> &[Effect<M>] {
        &self.effects
    }

    /// Pushes a raw effect.
    pub fn push(&mut self, effect: Effect<M>) {
        self.effects.push(effect);
    }

    /// Emits [`Effect::Send`].
    pub fn send(&mut self, to: NodeId, message: M) {
        self.push(Effect::Send { to, message });
    }

    /// Emits [`Effect::Broadcast`] to every neighbour except `excluded`.
    pub fn broadcast(&mut self, message: M, excluded: &[NodeId]) {
        self.push(Effect::Broadcast {
            message,
            excluded: excluded.to_vec(),
        });
    }

    /// Emits [`Effect::SetTimer`].
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        self.push(Effect::SetTimer { delay, tag });
    }

    /// Emits [`Effect::Deliver`].
    pub fn deliver(&mut self) {
        self.push(Effect::Deliver);
    }

    /// Emits [`Effect::Counter`] with amount 1.
    pub fn record(&mut self, name: &'static str) {
        self.record_many(name, 1);
    }

    /// Emits [`Effect::Counter`].
    pub fn record_many(&mut self, name: &'static str, amount: u64) {
        self.push(Effect::Counter { name, amount });
    }

    /// Drains the pending effects in emission order, leaving the buffer
    /// (and its allocation) ready for the next poll.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Effect<M>> {
        self.effects.drain(..)
    }

    /// Discards all pending effects.
    pub fn clear(&mut self) {
        self.effects.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_preserves_emission_order() {
        let mut out: Mailbox<&'static str> = Mailbox::new();
        assert!(out.is_empty());
        out.send(NodeId::new(1), "a");
        out.broadcast("b", &[NodeId::new(0)]);
        out.set_timer(5, 9);
        out.deliver();
        out.record("hits");
        out.record_many("bytes", 3);
        assert_eq!(out.len(), 6);
        let effects: Vec<_> = out.drain().collect();
        assert_eq!(
            effects,
            vec![
                Effect::Send {
                    to: NodeId::new(1),
                    message: "a"
                },
                Effect::Broadcast {
                    message: "b",
                    excluded: vec![NodeId::new(0)]
                },
                Effect::SetTimer { delay: 5, tag: 9 },
                Effect::Deliver,
                Effect::Counter {
                    name: "hits",
                    amount: 1
                },
                Effect::Counter {
                    name: "bytes",
                    amount: 3
                },
            ]
        );
        assert!(out.is_empty());
    }
}
