//! A self-contained [`NodeView`] for drivers outside the simulator.
//!
//! Real-transport drivers such as the `fnp-node` binary own exactly one
//! node; [`StandaloneEnv`] packages that node's identity, neighbour list,
//! clock, RNG and hot-lane slots into a view the sans-IO cores can run
//! against. Time only moves when the driver advances it (event-time
//! semantics: set it to the timestamp of the input being processed).

use crate::view::{HotLanes, NodeView};
use fnp_netsim::{NodeId, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Environment of a single node outside the simulator.
#[derive(Clone, Debug)]
pub struct StandaloneEnv {
    node: NodeId,
    node_count: usize,
    neighbors: Vec<NodeId>,
    now: SimTime,
    rng: StdRng,
    seen: bool,
    phase: u8,
    counter: u32,
}

impl StandaloneEnv {
    /// Creates the environment of `node` in an overlay of `node_count`
    /// nodes with the given neighbours (sorted and deduplicated to match
    /// the simulator's deterministic neighbour order).
    #[must_use]
    pub fn new(node: NodeId, node_count: usize, mut neighbors: Vec<NodeId>, seed: u64) -> Self {
        neighbors.sort_unstable();
        neighbors.dedup();
        Self {
            node,
            node_count,
            neighbors,
            now: 0,
            rng: StdRng::seed_from_u64(seed),
            seen: false,
            phase: 0,
            counter: 0,
        }
    }

    /// Advances the clock to `at` (never backwards).
    pub fn advance_to(&mut self, at: SimTime) {
        self.now = self.now.max(at);
    }
}

impl HotLanes for StandaloneEnv {
    fn seen(&self) -> bool {
        self.seen
    }

    fn set_seen(&mut self) -> bool {
        std::mem::replace(&mut self.seen, true)
    }

    fn phase(&self) -> u8 {
        self.phase
    }

    fn set_phase(&mut self, phase: u8) {
        self.phase = phase;
    }

    fn counter_lane(&self) -> u32 {
        self.counter
    }

    fn set_counter_lane(&mut self, value: u32) {
        self.counter = value;
    }
}

impl NodeView for StandaloneEnv {
    fn node_id(&self) -> NodeId {
        self.node
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_are_sorted_and_deduplicated() {
        let env = StandaloneEnv::new(
            NodeId::new(2),
            5,
            vec![NodeId::new(4), NodeId::new(1), NodeId::new(4)],
            7,
        );
        assert_eq!(env.neighbors(), &[NodeId::new(1), NodeId::new(4)]);
        assert_eq!(env.node_id(), NodeId::new(2));
        assert_eq!(env.node_count(), 5);
    }

    #[test]
    fn clock_is_monotone() {
        let mut env = StandaloneEnv::new(NodeId::new(0), 1, vec![], 0);
        env.advance_to(10);
        env.advance_to(5);
        assert_eq!(env.now(), 10);
    }

    #[test]
    fn hot_lanes_roundtrip() {
        let mut env = StandaloneEnv::new(NodeId::new(0), 1, vec![], 0);
        assert!(!env.set_seen());
        assert!(env.set_seen());
        env.set_phase(3);
        assert_eq!(env.phase(), 3);
        assert!(!env.round_seen(0));
        env.mark_round_seen(4);
        assert!(env.round_seen(4));
        assert!(!env.round_seen(5));
        assert_eq!(env.counter_lane(), 5);
    }
}
