//! The sans-IO protocol core trait.

use crate::mailbox::{Input, Mailbox};
use crate::view::NodeView;
use fnp_netsim::Payload;

/// A pure, driver-agnostic protocol state machine.
///
/// A core holds only the protocol's own per-node state. It is fed one
/// [`Input`] at a time — `Init`, an incoming `Message`, or a `TimerFired` —
/// reads its environment through a [`NodeView`], and responds by pushing
/// effects into the [`Mailbox`]. It never performs IO: the driver that owns
/// it (the discrete-event [`Simulator`](fnp_netsim::Simulator) via
/// [`SimDriver`](crate::SimDriver), the `fnp-node` line-delimited JSON event
/// loop, or the [trace replayer](crate::replay_trace)) drains the mailbox
/// and performs the effects, in order.
///
/// # Example: a minimal ping core under the simulator driver
///
/// ```
/// use fnp_netsim::{Graph, NodeId, Payload, SimConfig, Simulator};
/// use fnp_proto::{Input, Mailbox, NodeView, ProtocolCore, SimDriver};
///
/// #[derive(Clone, Debug)]
/// struct Ping;
/// impl Payload for Ping {
///     fn kind(&self) -> &'static str { "ping" }
/// }
///
/// struct Node;
/// impl ProtocolCore for Node {
///     type Message = Ping;
///     fn poll<V: NodeView>(
///         &mut self,
///         input: Input<Ping>,
///         _view: &mut V,
///         out: &mut Mailbox<Ping>,
///     ) {
///         if let Input::Message { .. } = input {
///             out.deliver();
///         }
///     }
/// }
///
/// let mut graph = Graph::new(2);
/// graph.add_edge(NodeId::new(0), NodeId::new(1));
/// let nodes = vec![SimDriver::new(Node), SimDriver::new(Node)];
/// let mut sim = Simulator::new(graph, nodes, SimConfig::default());
/// sim.trigger(NodeId::new(0), |driver, ctx| {
///     driver.drive(ctx, |_core, view, out| {
///         let peer = view.neighbors()[0];
///         out.send(peer, Ping);
///     });
/// });
/// let metrics = sim.run();
/// assert_eq!(metrics.messages_sent, 1);
/// assert_eq!(metrics.delivered_count(), 1);
/// ```
pub trait ProtocolCore {
    /// The message type this protocol exchanges.
    type Message: Payload;

    /// Processes one input, pushing any resulting effects into `out`.
    ///
    /// Effect order matters: drivers apply effects in emission order, and
    /// downstream randomness (latency sampling, fan-out iteration) consumes
    /// the driver RNG in that order, so reordering emissions changes runs.
    fn poll<V: NodeView>(
        &mut self,
        input: Input<Self::Message>,
        view: &mut V,
        out: &mut Mailbox<Self::Message>,
    );
}
