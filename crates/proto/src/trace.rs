//! Recording simulator runs and replaying them through bare cores.
//!
//! A [`TraceHandle`] shared by every node's [`SimDriver`](crate::SimDriver)
//! accumulates one [`TraceEvent`] per poll, in the simulator's delivery
//! order: which node was polled, at what time, with which input, the exact
//! RNG state before the poll, and the effects the core emitted.
//! [`replay_trace`] then feeds the same inputs through a *fresh* set of
//! cores — no simulator, no `Context`, just a [`ReplayView`] over recorded
//! state — and checks the emitted effects match event for event. This is
//! the determinism gate that keeps the sans-IO cores from silently
//! diverging from the simulator path.

use crate::core::ProtocolCore;
use crate::mailbox::{Effect, Input, Mailbox};
use crate::view::{HotLanes, NodeView};
use fnp_netsim::{Graph, HotState, NodeId, SimTime};
use rand::rngs::StdRng;
use std::cell::RefCell;
use std::rc::Rc;

/// The input of one recorded poll.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TracedInput<M> {
    /// A regular protocol input (init, message, timer).
    Input(Input<M>),
    /// An out-of-band entry point invoked through
    /// [`SimDriver::drive`](crate::SimDriver::drive) — typically the
    /// origin's "start broadcast" trigger. The replayer cannot reconstruct
    /// the closure, so [`replay_trace`] hands these to its `on_external`
    /// callback.
    External,
}

/// One recorded poll of one node's core.
#[derive(Clone, Debug)]
pub struct TraceEvent<M> {
    /// The node that was polled.
    pub node: NodeId,
    /// Simulated time of the poll.
    pub now: SimTime,
    /// The input the core was polled with.
    pub input: TracedInput<M>,
    /// The simulation RNG state immediately before the poll. Injected
    /// verbatim during replay so cores draw the same randomness without
    /// rerunning the driver-side draws (latency sampling) interleaved
    /// between polls.
    pub rng_before: StdRng,
    /// The effects the core emitted, in emission order.
    pub effects: Vec<Effect<M>>,
}

/// Shared, append-only recording of a simulator run.
///
/// Clone one handle into every node's [`SimDriver::traced`](crate::SimDriver::traced)
/// wrapper; the drivers append events in delivery order.
#[derive(Debug, Default)]
pub struct TraceHandle<M> {
    events: Rc<RefCell<Vec<TraceEvent<M>>>>,
}

impl<M> Clone for TraceHandle<M> {
    fn clone(&self) -> Self {
        Self {
            events: Rc::clone(&self.events),
        }
    }
}

impl<M> TraceHandle<M> {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self {
            events: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Appends one recorded poll.
    pub fn record(&self, event: TraceEvent<M>) {
        self.events.borrow_mut().push(event);
    }

    /// Number of recorded polls.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Takes the recorded events out of the handle.
    #[must_use]
    pub fn take(&self) -> Vec<TraceEvent<M>> {
        std::mem::take(&mut *self.events.borrow_mut())
    }
}

/// A [`NodeView`] reconstructed from a recorded trace event: per-node hot
/// lanes evolve exactly as in the original run because the same polls
/// mutate them in the same order, while the RNG is injected per event.
#[derive(Debug)]
pub struct ReplayView<'a> {
    node: NodeId,
    now: SimTime,
    neighbors: &'a [NodeId],
    node_count: usize,
    rng: &'a mut StdRng,
    hot: &'a mut HotState,
}

impl HotLanes for ReplayView<'_> {
    fn seen(&self) -> bool {
        self.hot.seen(self.node)
    }

    fn set_seen(&mut self) -> bool {
        self.hot.set_seen(self.node)
    }

    fn phase(&self) -> u8 {
        self.hot.phase(self.node)
    }

    fn set_phase(&mut self, phase: u8) {
        self.hot.set_phase(self.node, phase);
    }

    fn counter_lane(&self) -> u32 {
        self.hot.counter(self.node)
    }

    fn set_counter_lane(&mut self, value: u32) {
        self.hot.set_counter(self.node, value);
    }
}

impl NodeView for ReplayView<'_> {
    fn node_id(&self) -> NodeId {
        self.node
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// A divergence found by [`replay_trace`].
#[derive(Debug)]
pub struct ReplayMismatch {
    /// Index of the diverging event in the trace.
    pub index: usize,
    /// The node whose poll diverged.
    pub node: NodeId,
    /// Debug rendering of the recorded effects.
    pub expected: String,
    /// Debug rendering of the effects the replayed core emitted.
    pub got: String,
}

impl std::fmt::Display for ReplayMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay diverged at event {} (node {:?}):\n  expected: {}\n  got:      {}",
            self.index, self.node, self.expected, self.got
        )
    }
}

impl std::error::Error for ReplayMismatch {}

/// Replays a recorded simulator trace through bare cores, without the
/// simulator.
///
/// `cores` must be fresh cores in the same initial state as the recorded
/// run's, indexed by [`NodeId::index`]; `graph` the same overlay. Each
/// recorded event is fed to the owning core with the recorded RNG state
/// injected; [`TracedInput::External`] events (origin triggers) are handed
/// to `on_external`, which must invoke the same entry point the original
/// driver ran. Returns the first divergence between recorded and emitted
/// effects, if any.
///
/// # Errors
///
/// Returns a [`ReplayMismatch`] describing the first event whose emitted
/// effects differ from the recording.
pub fn replay_trace<C, F>(
    cores: &mut [C],
    graph: &Graph,
    trace: &[TraceEvent<C::Message>],
    mut on_external: F,
) -> Result<(), ReplayMismatch>
where
    C: ProtocolCore,
    F: FnMut(&mut C, &mut ReplayView<'_>, &mut Mailbox<C::Message>),
{
    let mut hot = HotState::new(cores.len());
    let mut out = Mailbox::new();
    for (index, event) in trace.iter().enumerate() {
        let mut rng = event.rng_before.clone();
        let mut view = ReplayView {
            node: event.node,
            now: event.now,
            neighbors: graph.neighbors(event.node),
            node_count: graph.node_count(),
            rng: &mut rng,
            hot: &mut hot,
        };
        let core = &mut cores[event.node.index()];
        match &event.input {
            TracedInput::Input(input) => core.poll(input.clone(), &mut view, &mut out),
            TracedInput::External => on_external(core, &mut view, &mut out),
        }
        let got: Vec<Effect<C::Message>> = out.drain().collect();
        let expected = format!("{:?}", event.effects);
        let emitted = format!("{got:?}");
        if expected != emitted {
            return Err(ReplayMismatch {
                index,
                node: event.node,
                expected,
                got: emitted,
            });
        }
    }
    Ok(())
}
