//! Read-side environment views handed to protocol cores.
//!
//! Effects flow *out* of a core through the [`Mailbox`](crate::Mailbox);
//! everything a core needs to *read* — its identity, neighbours, the clock,
//! the run RNG and its hot per-node lanes — flows in through these traits.
//! The simulator implements them directly on its
//! [`Context`](fnp_netsim::Context) (so the SoA hot-lane storage keeps
//! working unchanged), `fnp-node` implements them on its standalone
//! environment, and the trace replayer implements them on a recorded view.

use fnp_netsim::{NodeId, SimTime};
use rand::rngs::StdRng;

/// View of this node's hot lanes (seen flag, phase tag, counter slot).
///
/// The lanes are dense struct-of-arrays storage owned by the driver (see
/// [`fnp_netsim::HotState`]); a core only ever touches *its own* node's
/// slots, which is exactly the surface this trait exposes. Keeping the
/// lanes behind a view trait is what lets cores stay pure while the
/// simulator keeps its cache-friendly SoA layout with zero behaviour
/// change.
pub trait HotLanes {
    /// This node's seen flag.
    fn seen(&self) -> bool;

    /// Sets this node's seen flag, returning the previous value.
    ///
    /// `if view.set_seen() { return; }` is the idiomatic prune check: it
    /// marks and tests in one lane access.
    fn set_seen(&mut self) -> bool;

    /// This node's phase tag.
    fn phase(&self) -> u8;

    /// Sets this node's phase tag.
    fn set_phase(&mut self, phase: u8);

    /// This node's general-purpose counter slot.
    fn counter_lane(&self) -> u32;

    /// Sets this node's counter slot.
    fn set_counter_lane(&mut self, value: u32);

    /// Whether a spread wave of `round` (or a later one) was already
    /// processed on this node.
    ///
    /// Wave-dedup protocols store the highest processed round in the
    /// counter lane encoded as `round + 1` (`0` = none yet); this helper
    /// and [`HotLanes::mark_round_seen`] single-source that encoding so
    /// call sites cannot drift off by one.
    fn round_seen(&self, round: u32) -> bool {
        self.counter_lane() > round
    }

    /// Records `round` as the highest spread-wave round processed on this
    /// node (see [`HotLanes::round_seen`] for the encoding).
    fn mark_round_seen(&mut self, round: u32) {
        self.set_counter_lane(round + 1);
    }
}

/// Everything a protocol core may read about its environment.
pub trait NodeView: HotLanes {
    /// The node this core is running as.
    fn node_id(&self) -> NodeId;

    /// Current time (simulated or wall-derived, depending on the driver).
    fn now(&self) -> SimTime;

    /// Overlay neighbours of this node, in deterministic (sorted) order.
    fn neighbors(&self) -> &[NodeId];

    /// Total number of nodes in the overlay.
    fn node_count(&self) -> usize;

    /// The run-wide random number generator.
    ///
    /// All protocol randomness must come from this generator; under the
    /// simulator driver it is the simulation RNG, which keeps runs
    /// reproducible under a fixed seed.
    fn rng(&mut self) -> &mut StdRng;
}
