//! # fnp-proto — sans-IO protocol cores behind a mailbox API
//!
//! The paper's broadcast protocols are pure state machines: they react to
//! messages and timers by sending messages, setting timers and recording
//! deliveries. Nothing in that logic needs a simulator — or a socket. This
//! crate pins that observation down as an API:
//!
//! * [`ProtocolCore`] — the protocol trait. One method,
//!   [`poll`](ProtocolCore::poll): take an [`Input`]
//!   (`Init` / `Message` / `TimerFired`), read the environment through a
//!   [`NodeView`], push [`Effect`]s into a [`Mailbox`]. No IO, no clock,
//!   no global state.
//! * [`Mailbox`] / [`Effect`] — the outbox: `Send`, `Broadcast`,
//!   `SetTimer`, `Deliver`, `Counter`, applied by the driver in emission
//!   order.
//! * [`HotLanes`] / [`NodeView`] — the read side: identity, neighbours,
//!   clock, RNG, and this node's hot lanes (seen/phase/counter), so the
//!   simulator keeps its struct-of-arrays storage while cores stay pure.
//! * [`SimDriver`] — the simulator driver: adapts any core to
//!   [`fnp_netsim::ProtocolNode`], byte-identical to the pre-sans-IO
//!   in-simulator implementations.
//! * [`StandaloneEnv`] — a single-node view for real-transport drivers
//!   (the `fnp-node` binary's line-delimited JSON event loop).
//! * [`steady`] — heavy-traffic multiplexing: wrap any single-broadcast
//!   core in a [`SteadyNode`] and many Poisson-injected transactions share
//!   one overlay, each with its own hot lanes and protocol instance.
//! * [`TraceHandle`] / [`replay_trace`] — record a simulator run, replay
//!   the inputs through bare cores, and assert the emitted effects match:
//!   the gate that keeps cores and simulator from drifting apart.
//!
//! See [`ProtocolCore`] for a worked minimal example, and
//! `docs/ARCHITECTURE.md` for how the pieces map onto the drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod core;
mod driver;
mod mailbox;
mod standalone;
pub mod steady;
mod trace;
mod view;

pub use crate::core::ProtocolCore;
pub use driver::SimDriver;
pub use mailbox::{Effect, Input, Mailbox};
pub use standalone::StandaloneEnv;
pub use steady::{
    Arrival, SteadyNode, SteadyProtocol, SteadyReport, SteadySession, Tagged, TxOutcome,
};
pub use trace::{replay_trace, ReplayMismatch, ReplayView, TraceEvent, TraceHandle, TracedInput};
pub use view::{HotLanes, NodeView};
