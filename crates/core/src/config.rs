//! Configuration of the flexible privacy-preserving broadcast.
//!
//! The whole point of the paper is that the protocol is *adjustable*: the
//! DC-net group size `k` buys a cryptographic anonymity floor at O(k²)
//! message cost, and the adaptive-diffusion depth `d` buys statistical
//! anonymity against cheaper attackers at extra dissemination latency.
//! [`FlexConfig`] bundles those knobs together with the simulation pacing
//! parameters.

use fnp_diffusion::AlphaSchedule;
use fnp_netsim::{SimTime, MILLISECOND};
use std::fmt;

/// How the initial phase-2 virtual source is chosen after the DC-net round.
///
/// The paper's construction (§IV-B) elects "the node whose hashed identity
/// […] is closest to the hash of the message": message-free, verifiable by
/// every group member, and independent of the originator. The ablation
/// variant keeps the originator itself as the virtual source, which saves
/// nothing in messages but re-introduces the correlation between the
/// diffusion centre and the true sender — exactly the property the election
/// exists to remove. The `abl1_vs_election` experiment quantifies the
/// difference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ElectionStrategy {
    /// Hash-based election over the group (the paper's design).
    #[default]
    HashBased,
    /// The originator keeps the virtual-source role (ablation baseline).
    OriginatorAsSource,
}

impl fmt::Display for ElectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElectionStrategy::HashBased => write!(f, "hash-based"),
            ElectionStrategy::OriginatorAsSource => write!(f, "originator-as-source"),
        }
    }
}

/// Tunable parameters of the flexible broadcast protocol.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlexConfig {
    /// Target DC-net group size `k` (the paper suggests values between four
    /// and ten). Actual groups hold between `k` and `2k − 1` members.
    pub k: usize,
    /// Number of adaptive-diffusion rounds `d` before switching to
    /// flood-and-prune, chosen relative to the network diameter.
    pub d: u32,
    /// Slot size (bytes) of the DC-net payload rounds.
    pub slot_len: usize,
    /// Virtual-source hand-off schedule used in phase 2.
    pub schedule: AlphaSchedule,
    /// Interval between DC-net rounds.
    pub dc_round_interval: SimTime,
    /// Interval between adaptive-diffusion rounds.
    pub ad_round_interval: SimTime,
    /// Number of DC-net rounds each group member participates in before
    /// going quiet (bounds the simulation; real deployments run rounds
    /// for as long as the group exists).
    pub max_dc_rounds: u64,
    /// How the initial virtual source is chosen after Phase 1 (ablation
    /// knob; the paper's design is [`ElectionStrategy::HashBased`]).
    pub election: ElectionStrategy,
}

impl Default for FlexConfig {
    fn default() -> Self {
        Self {
            k: 5,
            d: 4,
            slot_len: 300,
            schedule: AlphaSchedule::default(),
            dc_round_interval: 500 * MILLISECOND,
            ad_round_interval: 1_000 * MILLISECOND,
            max_dc_rounds: 4,
            election: ElectionStrategy::default(),
        }
    }
}

impl fmt::Display for FlexConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flexible(k={}, d={}, slot={}B, schedule={})",
            self.k, self.d, self.slot_len, self.schedule
        )
    }
}

/// Errors raised when validating a [`FlexConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `k` must be at least 2 (the paper recommends 4–10).
    GroupSizeTooSmall {
        /// Offending `k`.
        k: usize,
    },
    /// The DC slot must be able to carry at least one payload byte.
    SlotTooSmall {
        /// Offending slot size.
        slot_len: usize,
    },
    /// At least one DC round is needed to transmit anything.
    NoDcRounds,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::GroupSizeTooSmall { k } => {
                write!(
                    f,
                    "group size k = {k} is too small; the DC-net needs at least 2 members"
                )
            }
            ConfigError::SlotTooSmall { slot_len } => {
                write!(f, "slot of {slot_len} bytes cannot carry any payload")
            }
            ConfigError::NoDcRounds => write!(f, "at least one DC-net round is required"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl FlexConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.k < 2 {
            return Err(ConfigError::GroupSizeTooSmall { k: self.k });
        }
        if fnp_dcnet::slot::capacity(self.slot_len) == 0 {
            return Err(ConfigError::SlotTooSmall {
                slot_len: self.slot_len,
            });
        }
        if self.max_dc_rounds == 0 {
            return Err(ConfigError::NoDcRounds);
        }
        Ok(())
    }

    /// Returns a copy with a different group size (builder-style helper for
    /// parameter sweeps).
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Returns a copy with a different diffusion depth.
    pub fn with_d(mut self, d: u32) -> Self {
        self.d = d;
        self
    }

    /// Returns a copy with a different slot size.
    pub fn with_slot_len(mut self, slot_len: usize) -> Self {
        self.slot_len = slot_len;
        self
    }

    /// Returns a copy with a different virtual-source election strategy.
    pub fn with_election(mut self, election: ElectionStrategy) -> Self {
        self.election = election;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_the_paper_range() {
        let config = FlexConfig::default();
        assert!(config.validate().is_ok());
        assert!(
            (4..=10).contains(&config.k),
            "paper suggests k between 4 and 10"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert_eq!(
            FlexConfig::default().with_k(1).validate(),
            Err(ConfigError::GroupSizeTooSmall { k: 1 })
        );
        assert_eq!(
            FlexConfig::default().with_slot_len(4).validate(),
            Err(ConfigError::SlotTooSmall { slot_len: 4 })
        );
        let config = FlexConfig {
            max_dc_rounds: 0,
            ..FlexConfig::default()
        };
        assert_eq!(config.validate(), Err(ConfigError::NoDcRounds));
    }

    #[test]
    fn builder_helpers_replace_fields() {
        let config = FlexConfig::default().with_k(8).with_d(6).with_slot_len(512);
        assert_eq!(config.k, 8);
        assert_eq!(config.d, 6);
        assert_eq!(config.slot_len, 512);
        assert_eq!(config.election, ElectionStrategy::HashBased);
        let ablated = config.with_election(ElectionStrategy::OriginatorAsSource);
        assert_eq!(ablated.election, ElectionStrategy::OriginatorAsSource);
    }

    #[test]
    fn election_strategies_have_readable_names() {
        assert_eq!(ElectionStrategy::HashBased.to_string(), "hash-based");
        assert_eq!(
            ElectionStrategy::OriginatorAsSource.to_string(),
            "originator-as-source"
        );
    }

    #[test]
    fn display_mentions_both_knobs() {
        let text = FlexConfig::default().to_string();
        assert!(text.contains("k=5"));
        assert!(text.contains("d=4"));
    }

    #[test]
    fn error_display() {
        assert!(ConfigError::GroupSizeTooSmall { k: 1 }
            .to_string()
            .contains("k = 1"));
        assert!(ConfigError::SlotTooSmall { slot_len: 2 }
            .to_string()
            .contains("2"));
        assert!(!ConfigError::NoDcRounds.to_string().is_empty());
    }
}
