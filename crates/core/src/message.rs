//! Messages of the flexible three-phase broadcast.
//!
//! Each message type belongs to exactly one phase, and the kind labels keep
//! that attribution visible in the experiment output: the per-phase message
//! and byte breakdown of experiments E5 and E6 is simply the simulator's
//! per-kind counters.

use fnp_netsim::Payload;

/// Fixed framing overhead added to payload-carrying messages when reporting
/// wire sizes (headers, transaction id, signatures).
const HEADER_BYTES: usize = 40;
/// Reported size of the small control messages of phase 2.
const CONTROL_BYTES: usize = 48;

/// A message of the flexible broadcast protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlexMessage {
    /// Phase 1: a keyed DC-net contribution for one round, sent to every
    /// other group member.
    DcContribution {
        /// DC-net round number (group-local).
        round: u64,
        /// Group-internal index of the contributing member.
        member_index: usize,
        /// The padded contribution (exactly the group's slot length).
        data: Vec<u8>,
    },
    /// Phase 2: infects a node with the transaction (adaptive diffusion).
    AdInfect {
        /// Diffusion round in which the infection happened.
        round: u32,
        /// The transaction payload.
        payload: Vec<u8>,
    },
    /// Phase 2: a spread wave instructing the infected subtree to grow.
    AdSpread {
        /// Diffusion round of the wave.
        round: u32,
    },
    /// Phase 2: transfers the virtual-source token.
    AdToken {
        /// Even timestep of the diffusion protocol.
        t: u32,
        /// Hop distance of the new virtual source from the initial one.
        h: u32,
        /// Diffusion rounds executed so far.
        round: u32,
    },
    /// Transition 2 → 3: the final virtual source's "last spread" request,
    /// which also instructs receivers to switch to flood-and-prune.
    FinalSpread {
        /// The transaction payload (so nodes that missed an infection can
        /// still deliver and flood it).
        payload: Vec<u8>,
    },
    /// Phase 3: ordinary flood-and-prune relay of the transaction.
    Flood {
        /// The transaction payload.
        payload: Vec<u8>,
    },
}

impl FlexMessage {
    /// The protocol phase this message belongs to (1, 2 or 3; the final
    /// spread request counts as phase 2 since the last virtual source sends
    /// it as its concluding diffusion action).
    pub fn phase(&self) -> u8 {
        match self {
            FlexMessage::DcContribution { .. } => 1,
            FlexMessage::AdInfect { .. }
            | FlexMessage::AdSpread { .. }
            | FlexMessage::AdToken { .. }
            | FlexMessage::FinalSpread { .. } => 2,
            FlexMessage::Flood { .. } => 3,
        }
    }
}

impl Payload for FlexMessage {
    fn kind(&self) -> &'static str {
        match self {
            FlexMessage::DcContribution { .. } => "flex-dc",
            FlexMessage::AdInfect { .. } => "flex-ad-infect",
            FlexMessage::AdSpread { .. } => "flex-ad-spread",
            FlexMessage::AdToken { .. } => "flex-ad-token",
            FlexMessage::FinalSpread { .. } => "flex-final",
            FlexMessage::Flood { .. } => "flex-flood",
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            FlexMessage::DcContribution { data, .. } => data.len() + HEADER_BYTES,
            FlexMessage::AdInfect { payload, .. } => payload.len() + HEADER_BYTES,
            FlexMessage::AdSpread { .. } => CONTROL_BYTES,
            FlexMessage::AdToken { .. } => CONTROL_BYTES,
            FlexMessage::FinalSpread { payload } => payload.len() + HEADER_BYTES,
            FlexMessage::Flood { payload } => payload.len() + HEADER_BYTES,
        }
    }
}

/// Message kinds belonging to each phase, used by reports to aggregate the
/// per-phase breakdown.
pub const PHASE1_KINDS: &[&str] = &["flex-dc"];
/// Phase-2 message kinds.
pub const PHASE2_KINDS: &[&str] = &[
    "flex-ad-infect",
    "flex-ad-spread",
    "flex-ad-token",
    "flex-final",
];
/// Phase-3 message kinds.
pub const PHASE3_KINDS: &[&str] = &["flex-flood"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_phases_are_consistent() {
        let samples = [
            FlexMessage::DcContribution {
                round: 0,
                member_index: 1,
                data: vec![0; 10],
            },
            FlexMessage::AdInfect {
                round: 1,
                payload: vec![0; 10],
            },
            FlexMessage::AdSpread { round: 1 },
            FlexMessage::AdToken {
                t: 2,
                h: 1,
                round: 1,
            },
            FlexMessage::FinalSpread {
                payload: vec![0; 10],
            },
            FlexMessage::Flood {
                payload: vec![0; 10],
            },
        ];
        for message in &samples {
            let kind = message.kind();
            let phase = message.phase();
            let in_phase_list = match phase {
                1 => PHASE1_KINDS.contains(&kind),
                2 => PHASE2_KINDS.contains(&kind),
                3 => PHASE3_KINDS.contains(&kind),
                _ => false,
            };
            assert!(in_phase_list, "{kind} not listed for phase {phase}");
        }
    }

    #[test]
    fn payload_carrying_messages_report_payload_plus_header() {
        let message = FlexMessage::Flood {
            payload: vec![0; 200],
        };
        assert_eq!(message.size_bytes(), 240);
        let message = FlexMessage::DcContribution {
            round: 0,
            member_index: 0,
            data: vec![0; 300],
        };
        assert_eq!(message.size_bytes(), 340);
    }

    #[test]
    fn control_messages_are_small() {
        assert!(FlexMessage::AdSpread { round: 1 }.size_bytes() < 100);
        assert!(
            FlexMessage::AdToken {
                t: 2,
                h: 1,
                round: 0
            }
            .size_bytes()
                < 100
        );
    }

    #[test]
    fn every_phase_is_covered_by_kind_lists() {
        assert_eq!(
            PHASE1_KINDS.len() + PHASE2_KINDS.len() + PHASE3_KINDS.len(),
            6
        );
    }
}
