//! Per-worker cache of derived DC-net group key material.
//!
//! Setting up one flexible broadcast derives a pairwise pad key — a DH
//! modular exponentiation followed by SHA-256/HKDF expansion — for every
//! ordered pair of members in every group. At `n/k` groups per trial and
//! `k·(k−1)` derivations per group that is the dominant setup cost, and it
//! is pure recomputation: key material depends only on the key seed and the
//! group composition, never on the trial's RNG stream. A [`GroupKeyCache`]
//! memoises the derived material keyed by the sorted member list, so
//! repeated trials over the same groups (same seed, e.g. the same overlay
//! re-broadcast under different adversary placements) skip the modular
//! exponentiations entirely.
//!
//! Two further properties are exploited:
//!
//! * **Symmetry** — [`pairwise_pad_key`] is symmetric in its endpoints, so
//!   even a cold-cache derivation does `k·(k−1)/2` exponentiations instead
//!   of the naive `k·(k−1)` (each pair is derived once and mirrored).
//! * **RNG-freeness** — because derivation consumes no randomness, building
//!   participants from cached keys is *byte-identical* to deriving them
//!   fresh; the arena-reuse determinism suite asserts this end to end.
//!
//! The cache lives in the per-worker [`TrialArena`](fnp_netsim::TrialArena)
//! extension slot (see [`crate::harness::run_flexible_broadcast_in`]); it is
//! invalidated wholesale when the key seed changes and capped at
//! [`MAX_CACHED_GROUPS`] entries so a sweep over huge overlays cannot
//! accumulate unbounded key material.

use crate::harness::node_key_pair;
use crate::node::GroupMembership;
use fnp_crypto::dh::{pairwise_pad_key, KeyPair, PublicKey};
use fnp_crypto::identity::Identity;
use fnp_dcnet::keyed::KeyedParticipant;
use fnp_groups::Group;
use fnp_netsim::NodeId;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Upper bound on distinct group compositions kept per cache.
///
/// Paper-scale overlays (n = 1000, k = 5) form 200 groups per trial, so the
/// bound is far above any hit-rate-relevant working set; it exists so a
/// million-node sweep (hundreds of thousands of groups, none of them ever
/// revisited) cannot pin gigabytes of key material in a worker arena. Once
/// full, further compositions are derived fresh and not inserted — still
/// with the symmetric half-cost derivation.
pub const MAX_CACHED_GROUPS: usize = 8192;

/// Everything derivable for one group composition: the shared member and
/// identity tables, and each member's pairwise pad keys.
#[derive(Debug)]
struct CachedGroup {
    members: Rc<[NodeId]>,
    identities: Rc<[Identity]>,
    /// `pad_keys[i]` holds `(peer, key)` for every peer of member `i`,
    /// sorted ascending by peer.
    pad_keys: Vec<Vec<(usize, [u8; 32])>>,
}

impl CachedGroup {
    /// Derives the material for `members` from scratch (one exponentiation
    /// per unordered pair, mirrored to both endpoints).
    fn derive(members: &[NodeId], key_seed: u64) -> Self {
        let key_pairs: Vec<KeyPair> = members
            .iter()
            .map(|node| node_key_pair(*node, key_seed))
            .collect();
        let public_keys: Vec<PublicKey> = key_pairs.iter().map(KeyPair::public_key).collect();
        let k = members.len();
        let mut pad_keys: Vec<Vec<(usize, [u8; 32])>> = (0..k)
            .map(|_| Vec::with_capacity(k.saturating_sub(1)))
            .collect();
        for i in 0..k {
            for j in (i + 1)..k {
                let key = pairwise_pad_key(&key_pairs[i], &public_keys[j]);
                debug_assert_eq!(
                    key,
                    pairwise_pad_key(&key_pairs[j], &public_keys[i]),
                    "pairwise pad keys must be symmetric"
                );
                pad_keys[i].push((j, key));
                pad_keys[j].push((i, key));
            }
        }
        Self {
            members: members.into(),
            identities: members
                .iter()
                .map(|node| Identity::from_node_index(node.index()))
                .collect(),
            pad_keys,
        }
    }

    /// Builds the per-member [`GroupMembership`]s from this material.
    fn memberships(&self) -> Vec<(NodeId, GroupMembership)> {
        let size = self.members.len();
        self.members
            .iter()
            .enumerate()
            .map(|(own_index, node)| {
                let participant = KeyedParticipant::from_pad_keys(
                    own_index,
                    size,
                    self.pad_keys[own_index].iter().copied(),
                )
                .expect("cached groups always have at least two members");
                (
                    *node,
                    GroupMembership {
                        members: Rc::clone(&self.members),
                        own_index,
                        identities: Rc::clone(&self.identities),
                        participant,
                    },
                )
            })
            .collect()
    }
}

/// Memoised DC-net key material for one key seed, keyed by group
/// composition. See the [module documentation](self) for the rationale.
#[derive(Debug)]
pub struct GroupKeyCache {
    key_seed: u64,
    groups: BTreeMap<Vec<NodeId>, CachedGroup>,
    limit: usize,
}

impl GroupKeyCache {
    /// Creates an empty cache for `key_seed`.
    #[must_use]
    pub fn new(key_seed: u64) -> Self {
        Self {
            key_seed,
            groups: BTreeMap::new(),
            limit: MAX_CACHED_GROUPS,
        }
    }

    /// Like [`GroupKeyCache::new`] but with a custom entry cap (tests).
    #[cfg(test)]
    fn with_limit(key_seed: u64, limit: usize) -> Self {
        Self {
            key_seed,
            groups: BTreeMap::new(),
            limit,
        }
    }

    /// The key seed this cache's material was derived under. A harness must
    /// discard the cache when its seed differs.
    #[must_use]
    pub fn key_seed(&self) -> u64 {
        self.key_seed
    }

    /// Number of group compositions currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the cache holds no group material yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Builds the [`GroupMembership`] handed to each member of `group`,
    /// deriving (and caching) the key material on first sight of this
    /// composition and reusing it afterwards.
    ///
    /// The result is byte-identical to an uncached derivation: the pad keys
    /// are pure functions of `(key_seed, members)`.
    #[must_use]
    pub fn memberships(&mut self, group: &Group) -> Vec<(NodeId, GroupMembership)> {
        let members = group.member_vec();
        if let Some(cached) = self.groups.get(&members) {
            return cached.memberships();
        }
        let derived = CachedGroup::derive(&members, self.key_seed);
        if self.groups.len() < self.limit {
            let memberships = derived.memberships();
            self.groups.insert(members, derived);
            memberships
        } else {
            derived.memberships()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnp_groups::form_groups;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_groups(n: usize, k: usize, seed: u64) -> Vec<Group> {
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        form_groups(&nodes, k, &mut rng).unwrap()
    }

    /// One member's phase-1 contribution; pads are deterministic, so equal
    /// contributions mean equal pad material.
    fn contribution(membership: &GroupMembership, round: u64) -> Vec<u8> {
        membership
            .participant
            .contribution(round, 64, Some(b"probe"))
            .unwrap()
    }

    #[test]
    fn cached_material_is_identical_to_fresh_derivation() {
        let groups = sample_groups(40, 5, 3);
        let mut cache = GroupKeyCache::new(11);
        let cold: Vec<_> = groups.iter().map(|g| cache.memberships(g)).collect();
        let warm: Vec<_> = groups.iter().map(|g| cache.memberships(g)).collect();
        let mut fresh_cache = GroupKeyCache::new(11);
        let fresh: Vec<_> = groups.iter().map(|g| fresh_cache.memberships(g)).collect();

        assert_eq!(cache.len(), groups.len());
        for ((cold, warm), fresh) in cold
            .into_iter()
            .flatten()
            .zip(warm.into_iter().flatten())
            .zip(fresh.into_iter().flatten())
        {
            assert_eq!(cold.0, warm.0);
            assert_eq!(cold.1.members, warm.1.members);
            assert_eq!(cold.1.own_index, warm.1.own_index);
            assert_eq!(cold.1.identities, warm.1.identities);
            for round in [0u64, 9] {
                let reference = contribution(&fresh.1, round);
                assert_eq!(contribution(&cold.1, round), reference);
                assert_eq!(contribution(&warm.1, round), reference);
            }
        }
    }

    #[test]
    fn members_and_identities_are_shared_not_copied() {
        let groups = sample_groups(10, 5, 1);
        let mut cache = GroupKeyCache::new(2);
        let memberships = cache.memberships(&groups[0]);
        let first = &memberships[0].1;
        for (_, membership) in &memberships[1..] {
            assert!(Rc::ptr_eq(&first.members, &membership.members));
            assert!(Rc::ptr_eq(&first.identities, &membership.identities));
        }
    }

    #[test]
    fn entry_cap_bounds_the_cache_without_changing_results() {
        let groups = sample_groups(40, 4, 7);
        assert!(groups.len() > 2);
        let mut capped = GroupKeyCache::with_limit(5, 2);
        let mut unlimited = GroupKeyCache::new(5);
        for group in &groups {
            let a = capped.memberships(group);
            let b = unlimited.memberships(group);
            for ((_, a), (_, b)) in a.into_iter().zip(b) {
                assert_eq!(contribution(&a, 1), contribution(&b, 1));
            }
        }
        assert_eq!(capped.len(), 2, "cap must bound the cache");
        assert_eq!(unlimited.len(), groups.len());
        assert!(!capped.is_empty());
        assert_eq!(capped.key_seed(), 5);
    }

    #[test]
    fn different_seeds_derive_different_material() {
        let groups = sample_groups(10, 5, 1);
        let mut a = GroupKeyCache::new(1);
        let mut b = GroupKeyCache::new(2);
        let first = a.memberships(&groups[0]);
        let second = b.memberships(&groups[0]);
        assert_ne!(
            contribution(&first[0].1, 0),
            contribution(&second[0].1, 0),
            "key seed must flow into the pad material"
        );
    }
}
