//! # fnp-core — the flexible privacy-preserving broadcast protocol
//!
//! This crate implements the primary contribution of *"A Flexible Network
//! Approach to Privacy of Blockchain Transactions"* (Mödinger, Kopp, Kargl,
//! Hauck — ICDCS 2018): a three-phase transaction broadcast with an
//! adjustable, quantifiable privacy floor.
//!
//! 1. **DC-net phase** (`fnp-dcnet`): the transaction is shared inside a
//!    group of `k` nodes using dining-cryptographers rounds, giving the
//!    originator cryptographic anonymity among the group's honest members —
//!    no matter how much of the network an adversary observes.
//! 2. **Adaptive diffusion phase** (`fnp-diffusion`): the group member whose
//!    hashed identity is closest to the hash of the transaction becomes the
//!    initial virtual source (a verifiable, message-free transition) and
//!    spreads the transaction for `d` rounds so that the infected subgraph
//!    is never centred on the group.
//! 3. **Flood-and-prune phase** (`fnp-gossip`): the final virtual source
//!    triggers an ordinary broadcast, guaranteeing delivery to every node.
//!
//! The crate is organised as:
//!
//! * [`config`] — the `k`/`d` knobs of the privacy–efficiency trade-off.
//! * [`message`] — the protocol messages with per-phase kind labels.
//! * [`node`] — the [`FlexNode`] per-node state machine.
//! * [`harness`] — group formation, key setup, one-call experiment runners
//!   and the [`ProtocolKind`] abstraction for baseline comparisons.
//! * [`keycache`] — the per-worker [`GroupKeyCache`] that memoises derived
//!   DC-net pad keys across trials (pooled in the `TrialArena` extension
//!   slot).
//!
//! # Example: an anonymous broadcast over a 200-node overlay
//!
//! ```
//! use fnp_core::{run_flexible_broadcast, FlexConfig};
//! use fnp_netsim::{topology, NodeId, SimConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let graph = topology::random_regular(200, 8, &mut rng)?;
//! let report = run_flexible_broadcast(
//!     graph,
//!     NodeId::new(42),
//!     b"alice pays bob 3 tokens".to_vec(),
//!     FlexConfig::default(),       // k = 5, d = 4
//!     SimConfig::default(),
//! )?;
//! assert_eq!(report.coverage(), 1.0);
//! println!(
//!     "phase messages: dc={} diffusion={} flood={}",
//!     report.phase1_messages, report.phase2_messages, report.phase3_messages,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod harness;
pub mod keycache;
pub mod message;
pub mod node;

pub use config::{ConfigError, ElectionStrategy, FlexConfig};
pub use harness::{
    flex_steady_prototypes_in, node_key_pair, run_flexible_broadcast, run_flexible_broadcast_in,
    run_protocol, run_protocol_in, FlexReport, HarnessError, ProtocolKind,
};
pub use keycache::GroupKeyCache;
pub use message::{FlexMessage, PHASE1_KINDS, PHASE2_KINDS, PHASE3_KINDS};
pub use node::{FlexNode, GroupMembership};
