//! Experiment harness: setting up and running whole broadcasts.
//!
//! The harness owns everything that happens *around* the per-node state
//! machines: forming the DC-net groups, deriving the pairwise keys,
//! instantiating one [`FlexNode`] per overlay node, kicking off the
//! broadcast and condensing the simulator metrics into a per-phase
//! [`FlexReport`]. It also provides [`ProtocolKind`], a small abstraction
//! that lets the comparison experiments (E1, E10) run all four
//! dissemination strategies — flood, Dandelion, adaptive diffusion and the
//! flexible protocol — through one call.

use crate::config::FlexConfig;
use crate::keycache::GroupKeyCache;
use crate::message::{PHASE1_KINDS, PHASE2_KINDS, PHASE3_KINDS};
use crate::node::{FlexNode, GroupMembership};
use fnp_crypto::dh::KeyPair;
use fnp_dcnet::RoundScratch;
use fnp_diffusion::{AdParams, AdaptiveDiffusionNode};
use fnp_gossip::{DandelionParams, StemLine};
use fnp_groups::{form_groups, FormationError, Group};
use fnp_netsim::{Graph, Metrics, NodeId, SimConfig, Simulator, TrialArena};
use fnp_proto::SimDriver;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Result of one flexible-protocol broadcast.
#[derive(Clone, Debug)]
pub struct FlexReport {
    /// Raw simulator metrics.
    pub metrics: Metrics,
    /// The members of the originator's DC-net group.
    pub origin_group: Vec<NodeId>,
    /// Messages sent in phase 1 (DC-net).
    pub phase1_messages: u64,
    /// Messages sent in phase 2 (adaptive diffusion, incl. the final spread).
    pub phase2_messages: u64,
    /// Messages sent in phase 3 (flood and prune).
    pub phase3_messages: u64,
    /// Bytes sent in phase 1.
    pub phase1_bytes: u64,
    /// Bytes sent in phase 2.
    pub phase2_bytes: u64,
    /// Bytes sent in phase 3.
    pub phase3_bytes: u64,
}

impl FlexReport {
    fn from_metrics(metrics: Metrics, origin_group: Vec<NodeId>) -> Self {
        let sum_messages = |kinds: &[&str]| kinds.iter().map(|k| metrics.messages_of_kind(k)).sum();
        let sum_bytes = |kinds: &[&str]| kinds.iter().map(|k| metrics.bytes_of_kind(k)).sum();
        Self {
            phase1_messages: sum_messages(PHASE1_KINDS),
            phase2_messages: sum_messages(PHASE2_KINDS),
            phase3_messages: sum_messages(PHASE3_KINDS),
            phase1_bytes: sum_bytes(PHASE1_KINDS),
            phase2_bytes: sum_bytes(PHASE2_KINDS),
            phase3_bytes: sum_bytes(PHASE3_KINDS),
            origin_group,
            metrics,
        }
    }

    /// Fraction of nodes that received the transaction.
    pub fn coverage(&self) -> f64 {
        self.metrics.coverage()
    }

    /// Total messages across all phases.
    pub fn total_messages(&self) -> u64 {
        self.metrics.messages_sent
    }
}

/// Errors raised while setting up a flexible broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// The protocol configuration is invalid.
    Config(crate::config::ConfigError),
    /// DC-net groups could not be formed over the overlay.
    Formation(FormationError),
    /// The requested origin node does not exist in the overlay.
    OriginOutOfRange {
        /// The requested origin.
        origin: NodeId,
        /// Number of overlay nodes.
        nodes: usize,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Config(inner) => write!(f, "{inner}"),
            HarnessError::Formation(inner) => write!(f, "{inner}"),
            HarnessError::OriginOutOfRange { origin, nodes } => {
                write!(f, "origin {origin} outside overlay of {nodes} nodes")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<crate::config::ConfigError> for HarnessError {
    fn from(value: crate::config::ConfigError) -> Self {
        HarnessError::Config(value)
    }
}

impl From<FormationError> for HarnessError {
    fn from(value: FormationError) -> Self {
        HarnessError::Formation(value)
    }
}

/// Derives the deterministic long-term key pair of an overlay node.
///
/// Real deployments would generate keys independently; deriving them from
/// the node index keeps experiments reproducible without changing any of
/// the protocol logic (the pads still cancel, the election still works).
pub fn node_key_pair(node: NodeId, key_seed: u64) -> KeyPair {
    KeyPair::from_secret(key_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (node.index() as u64 + 1))
}

/// Builds the [`GroupMembership`] handed to each member of `group`.
///
/// Delegates to the worker's [`GroupKeyCache`]: the first trial to see this
/// group composition pays the pairwise DH/HKDF derivations, later trials
/// (same key seed, same members) reuse the cached pad keys. The member list
/// and identity table are shared (reference-counted) between all `k`
/// memberships rather than deep-copied per member.
fn build_memberships(
    group: &Group,
    key_cache: &mut GroupKeyCache,
) -> Vec<(NodeId, GroupMembership)> {
    key_cache.memberships(group)
}

/// Per-worker state carried across trials in the arena's extension slot:
/// the group-key cache plus the DC-round buffer pool the trial's nodes
/// share.
#[derive(Debug)]
struct HarnessExtras {
    key_cache: GroupKeyCache,
    scratch: Rc<RefCell<RoundScratch>>,
}

/// Checks the worker's harness extras out of the arena extension slot.
///
/// A missing slot or a slot holding some other extension type falls back
/// to fresh state; a key cache derived under a different key seed is
/// replaced (stale pad keys must never leak between seeds) while the
/// scratch pool — plain zeroed buffers — survives any seed change.
/// Correctness never depends on what the slot contains.
fn take_extras(
    arena: &mut TrialArena,
    key_seed: u64,
) -> (GroupKeyCache, Rc<RefCell<RoundScratch>>) {
    match arena
        .take_extension()
        .and_then(|boxed| boxed.downcast::<HarnessExtras>().ok())
    {
        Some(extras) => {
            let HarnessExtras { key_cache, scratch } = *extras;
            let key_cache = if key_cache.key_seed() == key_seed {
                key_cache
            } else {
                GroupKeyCache::new(key_seed)
            };
            (key_cache, scratch)
        }
        None => (
            GroupKeyCache::new(key_seed),
            Rc::new(RefCell::new(RoundScratch::new())),
        ),
    }
}

/// Sets up and runs one flexible-protocol broadcast of `payload` from
/// `origin` over `graph`.
///
/// The overlay is partitioned into DC-net groups of size `config.k` to
/// `2·config.k − 1`; every node participates in exactly one group. The
/// broadcast is traced so that adversary estimators can replay it.
///
/// # Errors
///
/// Returns a [`HarnessError`] if the configuration is invalid, the origin
/// is out of range or groups cannot be formed (network smaller than `k`).
pub fn run_flexible_broadcast(
    graph: Graph,
    origin: NodeId,
    payload: Vec<u8>,
    config: FlexConfig,
    sim_config: SimConfig,
) -> Result<FlexReport, HarnessError> {
    run_flexible_broadcast_in(
        &mut TrialArena::new(),
        graph,
        origin,
        payload,
        config,
        sim_config,
    )
}

/// Like [`run_flexible_broadcast`], but reuses `arena`'s pooled simulator
/// storage (recycle the report's [`Metrics`] via
/// [`TrialArena::recycle_metrics`] once aggregated).
///
/// # Errors
///
/// Same failure modes as [`run_flexible_broadcast`].
pub fn run_flexible_broadcast_in(
    arena: &mut TrialArena,
    graph: Graph,
    origin: NodeId,
    payload: Vec<u8>,
    config: FlexConfig,
    sim_config: SimConfig,
) -> Result<FlexReport, HarnessError> {
    config.validate()?;
    let n = graph.node_count();
    if origin.index() >= n {
        return Err(HarnessError::OriginOutOfRange { origin, nodes: n });
    }

    let mut setup_rng = StdRng::seed_from_u64(sim_config.seed ^ 0xD1F7_BEEF);
    let all_nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let groups = form_groups(&all_nodes, config.k, &mut setup_rng)?;

    // Build one membership object per node, reusing any key material the
    // previous trial on this worker derived for the same groups.
    let (mut key_cache, scratch) = take_extras(arena, sim_config.seed);
    let mut memberships: Vec<Option<GroupMembership>> = (0..n).map(|_| None).collect();
    let mut origin_group = Vec::new();
    for group in &groups {
        if group.contains(origin) {
            origin_group = group.member_vec();
        }
        for (node, membership) in build_memberships(group, &mut key_cache) {
            memberships[node.index()] = Some(membership);
        }
    }
    arena.store_extension(Box::new(HarnessExtras {
        key_cache,
        scratch: Rc::clone(&scratch),
    }));

    let mut nodes: Vec<SimDriver<FlexNode>> = arena.take_nodes();
    nodes.extend(memberships.into_iter().map(|membership| {
        SimDriver::new(FlexNode::with_scratch(
            config,
            membership,
            Rc::clone(&scratch),
        ))
    }));

    let mut traced_config = sim_config;
    traced_config.record_trace = true;
    let mut sim = Simulator::new_in(arena, graph, nodes, traced_config);
    // `trigger` takes a `FnOnce`, so the payload can be moved in directly.
    sim.trigger(origin, |driver, ctx| {
        driver.drive(ctx, move |node, view, out| {
            node.start_broadcast(payload, view, out);
        });
    });
    sim.run();
    let (nodes, metrics) = sim.into_parts_in(arena);
    arena.store_nodes(nodes);
    Ok(FlexReport::from_metrics(metrics, origin_group))
}

/// Builds one configured [`FlexNode`] per overlay node — the prototypes a
/// steady-state session spawns per-transaction instances from.
///
/// The group formation, pairwise-key derivation and scratch pooling are
/// identical to [`run_flexible_broadcast_in`] (same `seed ^ 0xD1F7_BEEF`
/// setup RNG, same arena-pooled [`GroupKeyCache`]), so a steady-state trial
/// sees exactly the group landscape a single-broadcast trial at the same
/// seed would.
///
/// # Errors
///
/// Returns a [`HarnessError`] if the configuration is invalid or groups
/// cannot be formed (network smaller than `k`).
pub fn flex_steady_prototypes_in(
    arena: &mut TrialArena,
    n: usize,
    config: FlexConfig,
    seed: u64,
) -> Result<Vec<FlexNode>, HarnessError> {
    config.validate()?;
    let mut setup_rng = StdRng::seed_from_u64(seed ^ 0xD1F7_BEEF);
    let all_nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let groups = form_groups(&all_nodes, config.k, &mut setup_rng)?;

    let (mut key_cache, scratch) = take_extras(arena, seed);
    let mut memberships: Vec<Option<GroupMembership>> = (0..n).map(|_| None).collect();
    for group in &groups {
        for (node, membership) in build_memberships(group, &mut key_cache) {
            memberships[node.index()] = Some(membership);
        }
    }
    arena.store_extension(Box::new(HarnessExtras {
        key_cache,
        scratch: Rc::clone(&scratch),
    }));

    Ok(memberships
        .into_iter()
        .map(|membership| FlexNode::with_scratch(config, membership, Rc::clone(&scratch)))
        .collect())
}

/// The four dissemination strategies the experiments compare.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProtocolKind {
    /// Plain flood-and-prune (no privacy).
    Flood,
    /// Dandelion stem/fluff.
    Dandelion(DandelionParams),
    /// Adaptive diffusion run to full dissemination.
    AdaptiveDiffusion(AdParams),
    /// The paper's flexible three-phase protocol.
    Flexible(FlexConfig),
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::Flood => write!(f, "flood"),
            ProtocolKind::Dandelion(_) => write!(f, "dandelion"),
            ProtocolKind::AdaptiveDiffusion(_) => write!(f, "adaptive-diffusion"),
            ProtocolKind::Flexible(config) => write!(f, "{config}"),
        }
    }
}

/// Runs one broadcast of `kind` from `origin` over `graph` and returns the
/// simulator metrics (with tracing enabled, so adversary estimators can be
/// applied to the result).
///
/// # Errors
///
/// Only [`ProtocolKind::Flexible`] can fail (invalid config / group
/// formation); the baselines always succeed.
pub fn run_protocol(
    kind: ProtocolKind,
    graph: Graph,
    origin: NodeId,
    sim_config: SimConfig,
) -> Result<Metrics, HarnessError> {
    run_protocol_in(&mut TrialArena::new(), kind, graph, origin, sim_config)
}

/// Like [`run_protocol`], but reuses `arena`'s pooled simulator storage
/// (recycle the returned [`Metrics`] via [`TrialArena::recycle_metrics`]
/// once aggregated).
///
/// # Errors
///
/// Same failure modes as [`run_protocol`].
pub fn run_protocol_in(
    arena: &mut TrialArena,
    kind: ProtocolKind,
    graph: Graph,
    origin: NodeId,
    sim_config: SimConfig,
) -> Result<Metrics, HarnessError> {
    let mut traced = sim_config;
    traced.record_trace = true;
    match kind {
        ProtocolKind::Flood => Ok(fnp_gossip::run_flood_in(arena, graph, origin, 1, traced)),
        ProtocolKind::Dandelion(params) => {
            let mut rng = StdRng::seed_from_u64(traced.seed ^ 0xDA4D_E110_u64);
            let line = StemLine::random(graph.node_count(), &mut rng);
            Ok(
                fnp_gossip::run_dandelion_in(arena, graph, &line, origin, 1, params, traced)
                    .metrics,
            )
        }
        ProtocolKind::AdaptiveDiffusion(params) => {
            let node_count = graph.node_count();
            let mut nodes: Vec<SimDriver<AdaptiveDiffusionNode>> = arena.take_nodes();
            nodes.extend(
                (0..node_count).map(|_| SimDriver::new(AdaptiveDiffusionNode::new(params))),
            );
            let mut sim = Simulator::new_in(arena, graph, nodes, traced);
            sim.trigger(origin, |driver, ctx| {
                driver.drive(ctx, |node, view, out| node.start_broadcast(view, out));
            });
            sim.run();
            let (nodes, metrics) = sim.into_parts_in(arena);
            arena.store_nodes(nodes);
            Ok(metrics)
        }
        ProtocolKind::Flexible(config) => {
            let payload = b"flexible broadcast payload".to_vec();
            run_flexible_broadcast_in(arena, graph, origin, payload, config, traced)
                .map(|report| report.metrics)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnp_netsim::topology;

    fn overlay(n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        topology::random_regular(n, 8, &mut rng).unwrap()
    }

    #[test]
    fn flexible_broadcast_reaches_every_node() {
        let graph = overlay(200, 1);
        let report = run_flexible_broadcast(
            graph,
            NodeId::new(17),
            b"pay 3 tokens to bob".to_vec(),
            FlexConfig::default(),
            SimConfig {
                seed: 1,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            report.coverage(),
            1.0,
            "metrics: {:?}",
            report.metrics.counters()
        );
        // All three phases actually ran.
        assert!(report.phase1_messages > 0, "phase 1 silent");
        assert!(report.phase2_messages > 0, "phase 2 silent");
        assert!(report.phase3_messages > 0, "phase 3 silent");
        assert_eq!(report.metrics.counter("flex-elected-vs"), 1);
        assert!(report.origin_group.contains(&NodeId::new(17)));
        assert!(report.origin_group.len() >= FlexConfig::default().k);
    }

    #[test]
    fn dc_phase_cost_scales_quadratically_with_k() {
        let graph = overlay(120, 2);
        let run = |k: usize| {
            run_flexible_broadcast(
                graph.clone(),
                NodeId::new(0),
                b"tx".to_vec(),
                FlexConfig::default().with_k(k),
                SimConfig {
                    seed: 2,
                    ..SimConfig::default()
                },
            )
            .unwrap()
            .phase1_messages
        };
        let small = run(4);
        let large = run(8);
        // Phase-1 cost grows superlinearly in k (quadratic per round, and the
        // group absorbs more rounds); allow a generous band around 4×.
        assert!(large > 2 * small, "k=4: {small}, k=8: {large}");
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let graph = overlay(50, 3);
        let err = run_flexible_broadcast(
            graph.clone(),
            NodeId::new(0),
            b"tx".to_vec(),
            FlexConfig::default().with_k(1),
            SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, HarnessError::Config(_)));

        let err = run_flexible_broadcast(
            graph.clone(),
            NodeId::new(999),
            b"tx".to_vec(),
            FlexConfig::default(),
            SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, HarnessError::OriginOutOfRange { .. }));

        // Network smaller than k.
        let tiny = topology::complete(3).unwrap();
        let err = run_flexible_broadcast(
            tiny,
            NodeId::new(0),
            b"tx".to_vec(),
            FlexConfig::default().with_k(5),
            SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, HarnessError::Formation(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn all_protocol_kinds_deliver_everywhere() {
        let graph = overlay(150, 4);
        let kinds = [
            ProtocolKind::Flood,
            ProtocolKind::Dandelion(DandelionParams::default()),
            ProtocolKind::AdaptiveDiffusion(AdParams {
                max_rounds: 64,
                ..AdParams::default()
            }),
            ProtocolKind::Flexible(FlexConfig::default()),
        ];
        for kind in kinds {
            let metrics = run_protocol(
                kind,
                graph.clone(),
                NodeId::new(5),
                SimConfig {
                    seed: 4,
                    ..SimConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(metrics.coverage(), 1.0, "{kind} did not reach everyone");
            assert!(!metrics.trace.is_empty(), "{kind} should be traced");
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let graph = overlay(100, 5);
        let run = || {
            run_flexible_broadcast(
                graph.clone(),
                NodeId::new(3),
                b"tx".to_vec(),
                FlexConfig::default(),
                SimConfig {
                    seed: 77,
                    ..SimConfig::default()
                },
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_messages(), b.total_messages());
        assert_eq!(a.metrics.delivered_at, b.metrics.delivered_at);
        assert_eq!(a.origin_group, b.origin_group);
    }

    #[test]
    fn warm_key_cache_reproduces_cold_cache_broadcasts() {
        let graph = overlay(100, 6);
        let config = SimConfig {
            seed: 21,
            ..SimConfig::default()
        };
        let run = |arena: &mut TrialArena| {
            run_flexible_broadcast_in(
                arena,
                graph.clone(),
                NodeId::new(9),
                b"tx".to_vec(),
                FlexConfig::default(),
                config.clone(),
            )
            .unwrap()
        };

        let fresh = run(&mut TrialArena::new());
        let mut arena = TrialArena::new();
        let cold = run(&mut arena); // derives and populates the cache
        let warm = run(&mut arena); // must hit the cache for every group
        for report in [&cold, &warm] {
            assert_eq!(report.total_messages(), fresh.total_messages());
            assert_eq!(report.metrics.delivered_at, fresh.metrics.delivered_at);
            assert_eq!(report.origin_group, fresh.origin_group);
        }

        // The pooled extras must carry the key seed the cache was derived
        // under, and the scratch pool must have recycled round buffers.
        let extras = *arena
            .take_extension()
            .expect("broadcast pools its harness extras")
            .downcast::<HarnessExtras>()
            .expect("extension slot holds the harness extras");
        assert_eq!(extras.key_cache.key_seed(), 21);
        assert!(!extras.key_cache.is_empty());
        assert!(
            extras.scratch.borrow().pooled() > 0,
            "resolved DC rounds should have recycled their buffers"
        );
    }

    #[test]
    fn key_cache_is_discarded_when_the_seed_changes() {
        let graph = overlay(100, 6);
        let run = |arena: &mut TrialArena, seed: u64| {
            run_flexible_broadcast_in(
                arena,
                graph.clone(),
                NodeId::new(9),
                b"tx".to_vec(),
                FlexConfig::default(),
                SimConfig {
                    seed,
                    ..SimConfig::default()
                },
            )
            .unwrap()
        };
        let mut arena = TrialArena::new();
        run(&mut arena, 1); // populates a seed-1 cache
        let reseeded = run(&mut arena, 2); // must not reuse seed-1 material
        let fresh = run(&mut TrialArena::new(), 2);
        assert_eq!(reseeded.total_messages(), fresh.total_messages());
        assert_eq!(reseeded.metrics.delivered_at, fresh.metrics.delivered_at);
    }

    #[test]
    fn steady_flexible_broadcasts_overlap_and_cover() {
        use fnp_proto::steady::{run_steady_in, Arrival};
        let n = 60;
        let graph = overlay(n, 8);
        let mut arena = TrialArena::new();
        let prototypes =
            flex_steady_prototypes_in(&mut arena, n, FlexConfig::default(), 8).unwrap();
        // Two transactions injected half a second apart: the second arrives
        // while the first is still in its DC-net phase, so their rounds
        // genuinely overlap on the origin's group.
        let arrivals = [
            Arrival {
                at: 1,
                origin: NodeId::new(10),
            },
            Arrival {
                at: 500_000,
                origin: NodeId::new(10),
            },
            Arrival {
                at: 700_000,
                origin: NodeId::new(33),
            },
        ];
        let (metrics, report) = run_steady_in(
            &mut arena,
            graph,
            prototypes,
            &arrivals,
            &[NodeId::new(5)],
            3,
            SimConfig {
                seed: 8,
                ..SimConfig::default()
            },
        );
        for (tx, outcome) in report.per_tx.iter().enumerate() {
            assert_eq!(
                outcome.delivered_count, n,
                "tx {tx} did not reach the whole overlay"
            );
            assert!(outcome.first_miner_delivery.is_some(), "tx {tx}");
            assert!(outcome.completed_at.is_some(), "tx {tx} never drained");
        }
        assert!(report.peak_concurrent >= 2, "broadcasts should overlap");
        // Each transaction pays its own DC-net phase: at least two rounds'
        // worth of contributions crossed the wire.
        assert!(metrics.messages_of_kind("flex-dc") > 0);
    }

    #[test]
    fn node_key_pairs_are_deterministic_and_distinct() {
        let a = node_key_pair(NodeId::new(1), 7);
        let b = node_key_pair(NodeId::new(1), 7);
        let c = node_key_pair(NodeId::new(2), 7);
        assert_eq!(a.public_key(), b.public_key());
        assert_ne!(a.public_key(), c.public_key());
    }

    #[test]
    fn protocol_kind_display() {
        assert_eq!(ProtocolKind::Flood.to_string(), "flood");
        assert!(ProtocolKind::Flexible(FlexConfig::default())
            .to_string()
            .contains("k=5"));
    }
}
