//! The per-node state machine of the flexible three-phase broadcast.
//!
//! A [`FlexNode`] implements the protocol of §IV-B:
//!
//! 1. **DC-net phase.** All members of the node's DC-net group run periodic
//!    keyed dining-cryptographers rounds (one padded contribution per member
//!    per round, full mesh). The originator injects its transaction into a
//!    round; afterwards every group member knows the transaction but not who
//!    sent it. Collisions (two members injecting in the same round) are
//!    detected via the CRC framing and resolved by randomised back-off.
//! 2. **Adaptive diffusion for `d` rounds.** The group member whose hashed
//!    identity is closest to the hash of the transaction becomes the initial
//!    virtual source — a decision every member reaches independently from
//!    public data, so the transition costs no messages and is verifiable.
//!    The virtual source then runs adaptive diffusion: spread waves grow the
//!    infected subgraph while the token performs its randomised walk away
//!    from the group.
//! 3. **Flood-and-prune.** When the round counter carried with the token
//!    reaches `d`, the final virtual source issues a *final spread request*
//!    that propagates through the infected subgraph and switches every
//!    recipient to ordinary flood-and-prune, which guarantees delivery to
//!    all remaining nodes.

use crate::config::FlexConfig;
use crate::message::FlexMessage;
use fnp_crypto::identity::{elect_virtual_source_index, Identity};
use fnp_crypto::sha256::Sha256;
use fnp_dcnet::keyed::{combine_contributions_into, KeyedParticipant};
use fnp_dcnet::slot::SlotOutcome;
use fnp_dcnet::RoundScratch;
use fnp_netsim::NodeId;
use fnp_proto::{Input, Mailbox, NodeView, ProtocolCore, SteadyProtocol};
use rand::Rng;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Timer tag for DC-net round pacing.
const TIMER_DC_ROUND: u64 = 1;
/// Timer tag for adaptive-diffusion round pacing.
const TIMER_AD_ROUND: u64 = 2;

/// Phase-lane tag: the node has switched to flood-and-prune relaying
/// (phase 3). Stored in the simulator's hot phase lane, not in the node
/// struct, because nearly every handler consults it.
const PHASE_FLOODING: u8 = 1;

/// Static description of the DC-net group a node belongs to.
///
/// The member list and identity table are identical for every member of a
/// group, so they are reference-counted and shared between the `k`
/// memberships instead of deep-copied `k` times at setup. Cloning shares
/// the member/identity tables and copies the keyed participant, giving
/// each in-flight transaction of a steady-state session its own DC-net
/// engine at the same group position.
#[derive(Clone, Debug)]
pub struct GroupMembership {
    /// The group members' overlay node ids, sorted ascending (shared
    /// between all members of the group).
    pub members: Rc<[NodeId]>,
    /// This node's index within `members`.
    pub own_index: usize,
    /// The members' public identities (same order as `members`), used for
    /// the virtual-source election (shared between all members).
    pub identities: Rc<[Identity]>,
    /// The keyed DC-net participant holding the pairwise pad generators.
    pub participant: KeyedParticipant,
}

/// State of the phase-1 DC-net engine on one node.
#[derive(Debug, Default)]
struct DcState {
    /// Payload waiting to be injected into a round.
    pending_payload: Option<Vec<u8>>,
    /// Whether the pending payload should skip the next round (collision
    /// back-off).
    backoff: bool,
    /// Round number of the next round this node will start.
    next_round: u64,
    /// Rounds this node has participated in so far.
    rounds_started: u64,
    /// Contributions received per round, keyed by round → member index.
    /// A round's entry is removed (and its buffers recycled into the
    /// node's scratch pool) as soon as the round resolves, so this map
    /// only holds in-flight rounds.
    received: BTreeMap<u64, BTreeMap<usize, Vec<u8>>>,
    /// Rounds whose outcome has already been resolved.
    resolved: BTreeMap<u64, SlotOutcome>,
    /// Whether this node injected its payload into the given round.
    injected_in: Option<u64>,
}

/// Phase-2 infection state (cold; the hot companions — the payload-seen
/// flag, the flooding phase tag and the last processed spread round — live
/// in the driver's hot lanes, accessed through [`HotLanes::seen`](fnp_proto::HotLanes::seen),
/// [`HotLanes::phase`](fnp_proto::HotLanes::phase) and [`HotLanes::counter_lane`](fnp_proto::HotLanes::counter_lane)).
#[derive(Debug, Default, Clone)]
struct AdState {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    token: Option<AdToken>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct AdToken {
    t: u32,
    h: u32,
    round: u32,
    received_from: Option<NodeId>,
}

/// A node running the flexible three-phase broadcast protocol.
#[derive(Debug)]
pub struct FlexNode {
    config: FlexConfig,
    group: Option<GroupMembership>,
    dc: DcState,
    /// Pool the DC-round slot buffers (own contributions, combine
    /// accumulators) are drawn from. The harness shares one pool between
    /// all nodes of a trial and carries it across trials in the arena.
    scratch: Rc<RefCell<RoundScratch>>,
    /// The transaction payload once this node knows it. Presence is
    /// mirrored in the hot seen lane; handlers test [`HotLanes::seen`](fnp_proto::HotLanes::seen)
    /// instead of probing this option.
    payload: Option<Vec<u8>>,
    ad: AdState,
    /// True if this node originated the broadcast.
    is_origin: bool,
}

impl FlexNode {
    /// Creates a node. `group` is `None` for nodes that are not part of any
    /// DC-net group in this experiment (they still relay phases 2 and 3).
    pub fn new(config: FlexConfig, group: Option<GroupMembership>) -> Self {
        Self::with_scratch(config, group, Rc::new(RefCell::new(RoundScratch::new())))
    }

    /// Like [`FlexNode::new`], but drawing DC-round slot buffers from
    /// `scratch` — a pool the caller shares between all nodes of a trial
    /// (and, via the experiment harness, across trials on one worker).
    pub fn with_scratch(
        config: FlexConfig,
        group: Option<GroupMembership>,
        scratch: Rc<RefCell<RoundScratch>>,
    ) -> Self {
        Self {
            config,
            group,
            dc: DcState::default(),
            scratch,
            payload: None,
            ad: AdState::default(),
            is_origin: false,
        }
    }

    /// Whether this node has learned the transaction.
    pub fn has_payload(&self) -> bool {
        self.payload.is_some()
    }

    /// Whether this node originated the broadcast.
    pub fn is_origin(&self) -> bool {
        self.is_origin
    }

    /// Whether this node currently holds the phase-2 virtual-source token.
    pub fn holds_token(&self) -> bool {
        self.ad.token.is_some()
    }

    /// The node's group members (empty if it belongs to no group).
    pub fn group_members(&self) -> &[NodeId] {
        self.group
            .as_ref()
            .map(|group| &group.members[..])
            .unwrap_or(&[])
    }

    /// Queues `payload` for anonymous broadcast from this node.
    ///
    /// Under the simulator, call through [`fnp_netsim::Simulator::trigger`]
    /// and [`SimDriver::drive`](fnp_proto::SimDriver::drive). The payload is
    /// injected into the next DC-net round of the node's group; if the node
    /// belongs to no group it falls back to flood-and-prune directly (no
    /// anonymity, but delivery is preserved).
    pub fn start_broadcast(
        &mut self,
        payload: Vec<u8>,
        view: &mut impl NodeView,
        out: &mut Mailbox<FlexMessage>,
    ) {
        self.is_origin = true;
        view.set_seen();
        self.payload = Some(payload.clone());
        self.deliver(out);
        if self.group.is_some() {
            out.record("flex-origin-queued");
            self.dc.pending_payload = Some(payload);
        } else {
            // Degenerate fallback: no group, no anonymity — flood directly.
            out.record("flex-origin-no-group");
            self.start_flooding(view, out, None);
        }
    }

    fn deliver(&mut self, out: &mut Mailbox<FlexMessage>) {
        out.deliver();
    }

    /// Learns the payload (idempotent). The duplicate case is decided by
    /// the hot seen lane alone — no cold-state access.
    fn learn_payload(
        &mut self,
        payload: &[u8],
        view: &mut impl NodeView,
        out: &mut Mailbox<FlexMessage>,
    ) -> bool {
        if view.set_seen() {
            return false;
        }
        self.payload = Some(payload.to_vec());
        self.deliver(out);
        true
    }

    // ------------------------------------------------------------------
    // Phase 1: DC-net rounds
    // ------------------------------------------------------------------

    /// Starts the next DC-net round: computes this node's contribution and
    /// sends it to every other group member.
    fn run_dc_round(&mut self, view: &mut impl NodeView, out: &mut Mailbox<FlexMessage>) {
        let Some(group) = self.group.as_ref() else {
            return;
        };
        if self.dc.rounds_started >= self.config.max_dc_rounds {
            return;
        }
        let round = self.dc.next_round;
        self.dc.next_round += 1;
        self.dc.rounds_started += 1;

        // Decide whether to inject the pending payload this round.
        let inject = match (&self.dc.pending_payload, self.dc.backoff) {
            (Some(_), false) => true,
            (Some(_), true) => {
                // Skip one round, then become eligible again.
                self.dc.backoff = false;
                false
            }
            (None, _) => false,
        };
        let payload = if inject {
            self.dc.injected_in = Some(round);
            self.dc.pending_payload.clone()
        } else {
            None
        };

        // Build the contribution in a pooled buffer: the pads are XORed
        // straight into the encoded slot, with no per-pad allocation.
        let mut contribution = self.scratch.borrow_mut().checkout();
        group
            .participant
            .contribute_into(
                round,
                self.config.slot_len,
                payload.as_deref(),
                &mut contribution,
            )
            .expect("slot length validated by FlexConfig::validate");

        // Send to every other member, then record our own contribution
        // (moving the pooled buffer into the received map; it returns to
        // the pool when the round resolves).
        let own_index = group.own_index;
        for (index, member) in group.members.iter().enumerate() {
            if index == own_index {
                continue;
            }
            out.send(
                *member,
                FlexMessage::DcContribution {
                    round,
                    member_index: own_index,
                    data: contribution.clone(),
                },
            );
        }
        self.dc
            .received
            .entry(round)
            .or_default()
            .insert(own_index, contribution);
        out.record("flex-dc-rounds");

        // Schedule the next round while the budget lasts.
        if self.dc.rounds_started < self.config.max_dc_rounds {
            out.set_timer(self.config.dc_round_interval, TIMER_DC_ROUND);
        }
        self.try_resolve_round(round, view, out);
    }

    /// Stores a received contribution and resolves the round once complete.
    fn on_dc_contribution(
        &mut self,
        round: u64,
        member_index: usize,
        data: Vec<u8>,
        view: &mut impl NodeView,
        out: &mut Mailbox<FlexMessage>,
    ) {
        let Some(group) = self.group.as_ref() else {
            return;
        };
        if member_index >= group.members.len() || data.len() != self.config.slot_len {
            out.record("flex-dc-malformed");
            return;
        }
        self.dc
            .received
            .entry(round)
            .or_default()
            .insert(member_index, data);
        self.try_resolve_round(round, view, out);
    }

    /// Combines a round once all contributions are present.
    fn try_resolve_round(
        &mut self,
        round: u64,
        view: &mut impl NodeView,
        out: &mut Mailbox<FlexMessage>,
    ) {
        let Some(group) = self.group.as_ref() else {
            return;
        };
        if self.dc.resolved.contains_key(&round) {
            return;
        }
        match self.dc.received.get(&round) {
            Some(contributions) if contributions.len() >= group.members.len() => {}
            _ => return,
        }
        // The round is complete: combine the contributions in place (the
        // BTreeMap iterates members in ascending order, and XOR commutes,
        // so borrowing beats the former clone-and-collect byte for byte),
        // then recycle every buffer of the round into the shared pool.
        let contributions = self
            .dc
            .received
            .remove(&round)
            .expect("presence checked above");
        let mut scratch = self.scratch.borrow_mut();
        let mut combined = scratch.checkout();
        let outcome =
            combine_contributions_into(contributions.values().map(Vec::as_slice), &mut combined)
                .unwrap_or(SlotOutcome::Collision);
        scratch.recycle(combined);
        for contribution in contributions.into_values() {
            scratch.recycle(contribution);
        }
        drop(scratch);
        self.dc.resolved.insert(round, outcome.clone());

        match outcome {
            SlotOutcome::Silence => {
                out.record("flex-dc-silent-rounds");
            }
            SlotOutcome::Collision => {
                out.record("flex-dc-collisions");
                // If we injected into this round, back off for one round and
                // retry (the payload stays pending).
                if self.dc.injected_in == Some(round) && view.rng().gen_bool(0.5) {
                    self.dc.backoff = true;
                }
                self.dc.injected_in = None;
            }
            SlotOutcome::Message(message) => {
                out.record("flex-dc-delivered-rounds");
                // The round succeeded; if it was ours, the payload is on its way.
                if self.dc.injected_in == Some(round) {
                    if self.dc.pending_payload.as_deref() == Some(message.as_slice()) {
                        self.dc.pending_payload = None;
                    }
                    self.dc.injected_in = None;
                }
                self.learn_payload(&message, view, out);
                self.maybe_become_virtual_source(&message, view, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Transition 1 → 2: hash-based virtual-source election
    // ------------------------------------------------------------------

    /// Every group member evaluates the election; only the winner acts.
    fn maybe_become_virtual_source(
        &mut self,
        message: &[u8],
        view: &mut impl NodeView,
        out: &mut Mailbox<FlexMessage>,
    ) {
        let Some(group) = self.group.as_ref() else {
            return;
        };
        let is_winner = match self.config.election {
            crate::config::ElectionStrategy::HashBased => {
                let digest = Sha256::digest(message);
                let Some(elected) = elect_virtual_source_index(&group.identities, &digest) else {
                    return;
                };
                out.record("flex-elections");
                elected == group.own_index
            }
            // Ablation baseline: skip the election and keep the originator as
            // the virtual source (only the originator knows it qualifies).
            crate::config::ElectionStrategy::OriginatorAsSource => {
                out.record("flex-elections");
                self.is_origin
            }
        };
        if !is_winner {
            return;
        }
        out.record("flex-elected-vs");

        // The elected member becomes the initial virtual source. The other
        // group members already know the transaction (via the DC-net), so
        // they become its first diffusion children: spread waves and the
        // eventual final-spread request flow through them.
        let own_index = group.own_index;
        let children: Vec<NodeId> = group
            .members
            .iter()
            .enumerate()
            .filter(|(index, _)| *index != own_index)
            .map(|(_, node)| *node)
            .collect();
        self.ad.parent = None;
        self.ad.children = children;
        self.ad.token = Some(AdToken {
            t: 2,
            h: 1,
            round: 0,
            received_from: None,
        });
        view.mark_round_seen(0);

        // Immediately run the first diffusion expansion around the group,
        // then pace further rounds with the timer.
        self.grow_frontier(0, &[], view, out);
        self.forward_spread(0, &[], out);
        out.set_timer(self.config.ad_round_interval, TIMER_AD_ROUND);
    }

    // ------------------------------------------------------------------
    // Phase 2: adaptive diffusion
    // ------------------------------------------------------------------

    fn payload_clone(&self) -> Vec<u8> {
        self.payload.clone().unwrap_or_default()
    }

    /// Sends infections to neighbours that are neither parent nor children.
    fn grow_frontier(
        &mut self,
        round: u32,
        excluded: &[NodeId],
        view: &impl NodeView,
        out: &mut Mailbox<FlexMessage>,
    ) {
        if view.phase() == PHASE_FLOODING {
            return;
        }
        let payload = self.payload_clone();
        let parent = self.ad.parent;
        for target in view.neighbors() {
            let target = *target;
            if Some(target) == parent
                || self.ad.children.contains(&target)
                || excluded.contains(&target)
            {
                continue;
            }
            out.send(
                target,
                FlexMessage::AdInfect {
                    round,
                    payload: payload.clone(),
                },
            );
            self.ad.children.push(target);
        }
    }

    /// Forwards a spread wave to the diffusion children.
    fn forward_spread(&self, round: u32, excluded: &[NodeId], out: &mut Mailbox<FlexMessage>) {
        for &child in &self.ad.children {
            if !excluded.contains(&child) {
                out.send(child, FlexMessage::AdSpread { round });
            }
        }
    }

    /// One virtual-source round: keep-and-spread, pass, or — once the round
    /// counter reaches `d` — trigger the switch to phase 3.
    fn run_ad_round(&mut self, view: &mut impl NodeView, out: &mut Mailbox<FlexMessage>) {
        let Some(mut token) = self.ad.token.take() else {
            return;
        };
        if view.phase() == PHASE_FLOODING {
            return;
        }
        token.t += 2;
        token.round += 1;
        out.record("flex-ad-rounds");

        if token.round > self.config.d {
            // Transition 2 → 3: the final virtual source sends the last
            // spread request, which doubles as the switch-to-flood signal.
            out.record("flex-switch-to-flood");
            self.ad.token = Some(token);
            let payload = self.payload_clone();
            for child in self.ad.children.clone() {
                out.send(
                    child,
                    FlexMessage::FinalSpread {
                        payload: payload.clone(),
                    },
                );
            }
            self.start_flooding(view, out, None);
            return;
        }

        let keep = view
            .rng()
            .gen_bool(self.config.schedule.keep_probability(token.t, token.h));
        if keep {
            out.record("flex-ad-keep");
            let round = token.round;
            view.mark_round_seen(round);
            self.ad.token = Some(token);
            self.forward_spread(round, &[], out);
            self.grow_frontier(round, &[], view, out);
            out.set_timer(self.config.ad_round_interval, TIMER_AD_ROUND);
        } else {
            out.record("flex-ad-pass");
            let received_from = token.received_from;
            let candidates: Vec<NodeId> = view
                .neighbors()
                .iter()
                .copied()
                .filter(|n| Some(*n) != received_from)
                .collect();
            if candidates.is_empty() {
                let round = token.round;
                view.mark_round_seen(round);
                self.ad.token = Some(token);
                self.forward_spread(round, &[], out);
                self.grow_frontier(round, &[], view, out);
                out.set_timer(self.config.ad_round_interval, TIMER_AD_ROUND);
                return;
            }
            let next = candidates[view.rng().gen_range(0..candidates.len())];
            if !self.ad.children.contains(&next) && self.ad.parent != Some(next) {
                out.send(
                    next,
                    FlexMessage::AdInfect {
                        round: token.round,
                        payload: self.payload_clone(),
                    },
                );
                self.ad.children.push(next);
            }
            out.send(
                next,
                FlexMessage::AdToken {
                    t: token.t,
                    h: token.h + 1,
                    round: token.round,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: flood and prune
    // ------------------------------------------------------------------

    /// Switches this node to flood-and-prune and relays the transaction to
    /// its overlay neighbours (except `exclude`).
    fn start_flooding(
        &mut self,
        view: &mut impl NodeView,
        out: &mut Mailbox<FlexMessage>,
        exclude: Option<NodeId>,
    ) {
        if view.phase() == PHASE_FLOODING {
            return;
        }
        view.set_phase(PHASE_FLOODING);
        let payload = self.payload_clone();
        let excluded: Vec<NodeId> = exclude.into_iter().collect();
        out.broadcast(FlexMessage::Flood { payload }, &excluded);
    }
}

impl ProtocolCore for FlexNode {
    type Message = FlexMessage;

    fn poll<V: NodeView>(
        &mut self,
        input: Input<FlexMessage>,
        view: &mut V,
        out: &mut Mailbox<FlexMessage>,
    ) {
        match input {
            Input::Init => {
                // Group members pace their periodic DC-net rounds from the
                // start of the run; a small deterministic stagger is
                // unnecessary because round numbers are carried explicitly.
                if self.group.is_some() {
                    out.set_timer(self.config.dc_round_interval, TIMER_DC_ROUND);
                }
            }
            Input::Message { from, message } => self.on_flex_message(from, message, view, out),
            Input::TimerFired { tag } => match tag {
                TIMER_DC_ROUND => self.run_dc_round(view, out),
                TIMER_AD_ROUND => self.run_ad_round(view, out),
                _ => {}
            },
        }
    }
}

impl SteadyProtocol for FlexNode {
    /// A per-transaction instance shares the node's group tables and slot
    /// scratch pool and copies the keyed participant, so each in-flight
    /// transaction runs its own DC-net rounds at the same group position.
    fn per_tx_instance(&self) -> Self {
        FlexNode::with_scratch(self.config, self.group.clone(), Rc::clone(&self.scratch))
    }

    /// Injects the transaction id as the anonymous payload.
    fn start_tx(&mut self, tx: u64, view: &mut impl NodeView, out: &mut Mailbox<FlexMessage>) {
        self.start_broadcast(tx.to_le_bytes().to_vec(), view, out);
    }

    /// Under steady-state multiplexing, `Init` (which arms the periodic
    /// DC-net rounds) runs only on instances first contacted by a DC-net
    /// contribution: exactly the originator's group members, who must pace
    /// their own rounds for the round to resolve. Instances spawned by
    /// phase-2/3 traffic skip it — they only relay.
    fn wants_init(first: &FlexMessage) -> bool {
        matches!(first, FlexMessage::DcContribution { .. })
    }
}

impl FlexNode {
    fn on_flex_message(
        &mut self,
        from: NodeId,
        message: FlexMessage,
        view: &mut impl NodeView,
        out: &mut Mailbox<FlexMessage>,
    ) {
        match message {
            FlexMessage::DcContribution {
                round,
                member_index,
                data,
            } => {
                self.on_dc_contribution(round, member_index, data, view, out);
            }
            FlexMessage::AdInfect { round, payload } => {
                if self.learn_payload(&payload, view, out) {
                    self.ad.parent = Some(from);
                }
                // Note: an already-informed node ignores repeated infections.
                let _ = round;
            }
            FlexMessage::AdSpread { round } => {
                if !view.seen() {
                    // A spread instruction without the payload can only be
                    // acted upon once the payload arrives; drop it (the next
                    // wave will reach us again through our future parent).
                    out.record("flex-spread-before-payload");
                    return;
                }
                if view.phase() == PHASE_FLOODING {
                    return;
                }
                if view.round_seen(round) {
                    return;
                }
                view.mark_round_seen(round);
                self.forward_spread(round, &[from], out);
                self.grow_frontier(round, &[from], view, out);
            }
            FlexMessage::AdToken { t, h, round } => {
                // The token always follows an infection, so the payload is
                // normally known by now.
                if !view.seen() {
                    out.record("flex-token-before-payload");
                }
                self.ad.token = Some(AdToken {
                    t,
                    h,
                    round,
                    received_from: Some(from),
                });
                view.mark_round_seen(round);
                self.forward_spread(round, &[from], out);
                self.grow_frontier(round, &[from], view, out);
                out.set_timer(self.config.ad_round_interval, TIMER_AD_ROUND);
            }
            FlexMessage::FinalSpread { payload } => {
                self.learn_payload(&payload, view, out);
                if view.phase() == PHASE_FLOODING {
                    // Already switched: the signal has been handled (and the
                    // diffusion "children" relation may contain cycles, so
                    // forwarding again could circulate the request forever).
                    return;
                }
                // Forward the switch signal through the diffusion subtree,
                // then start flooding ourselves.
                let forwarded = payload.clone();
                for child in self.ad.children.clone() {
                    if child != from {
                        out.send(
                            child,
                            FlexMessage::FinalSpread {
                                payload: forwarded.clone(),
                            },
                        );
                    }
                }
                self.start_flooding(view, out, Some(from));
            }
            FlexMessage::Flood { payload } => {
                self.learn_payload(&payload, view, out);
                if view.phase() != PHASE_FLOODING {
                    self.start_flooding(view, out, Some(from));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_without_group_floods_directly() {
        use fnp_netsim::{topology, SimConfig, Simulator};
        let graph = topology::ring(10).unwrap();
        let nodes = (0..10)
            .map(|_| fnp_proto::SimDriver::new(FlexNode::new(FlexConfig::default(), None)))
            .collect();
        let mut sim = Simulator::new(graph, nodes, SimConfig::default());
        sim.trigger(NodeId::new(0), |driver, ctx| {
            driver.drive(ctx, |node, view, out| {
                node.start_broadcast(b"tx".to_vec(), view, out);
            });
        });
        let metrics = sim.run();
        assert_eq!(metrics.coverage(), 1.0);
        assert_eq!(metrics.counter("flex-origin-no-group"), 1);
        assert!(metrics.messages_of_kind("flex-flood") > 0);
        assert_eq!(metrics.messages_of_kind("flex-dc"), 0);
    }

    #[test]
    fn accessors_on_a_fresh_node() {
        let node = FlexNode::new(FlexConfig::default(), None);
        assert!(!node.has_payload());
        assert!(!node.is_origin());
        assert!(!node.holds_token());
        assert!(node.group_members().is_empty());
    }

    // End-to-end behaviour with groups is exercised by the harness tests in
    // `crate::harness` and the cross-crate integration tests.
}
