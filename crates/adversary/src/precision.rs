//! Precision / recall accounting for deanonymisation campaigns.
//!
//! The Dandelion analysis the paper builds on reports attacker quality as a
//! *precision–recall* trade-off rather than a single detection probability:
//! an estimator may abstain (no adversarial node ever saw the broadcast), it
//! may convict the wrong node, or it may convict correctly. Aggregating a
//! campaign of many broadcasts into
//!
//! * **precision** — among the broadcasts where the estimator named a
//!   suspect, how often was the suspect the true originator, and
//! * **recall** — among all broadcasts, how often was the true originator
//!   named,
//!
//! lets experiments distinguish "the attacker rarely guesses, but when it
//! does it is right" (high precision, low recall — Dandelion's stem phase
//! against few spies) from "the attacker always guesses and is usually
//! right" (flooding against the first-spy attack).

use crate::estimators::Estimate;
use fnp_netsim::NodeId;

/// One classified broadcast: the ground-truth originator, the estimator's
/// suspect (if it produced one) and whether the conviction was correct.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Classification {
    /// True originator of the broadcast.
    pub origin: NodeId,
    /// The estimator's single best guess, if any.
    pub suspect: Option<NodeId>,
}

impl Classification {
    /// Builds a classification from an estimate and the known origin.
    pub fn from_estimate(origin: NodeId, estimate: &Estimate) -> Self {
        Self {
            origin,
            suspect: estimate.best_guess,
        }
    }

    /// Whether the estimator convicted the true originator.
    pub fn is_true_positive(&self) -> bool {
        self.suspect == Some(self.origin)
    }

    /// Whether the estimator convicted somebody, rightly or wrongly.
    pub fn convicted(&self) -> bool {
        self.suspect.is_some()
    }
}

/// Aggregated precision/recall over a campaign of broadcasts.
#[derive(Clone, Debug, Default)]
pub struct ConfusionCounts {
    true_positives: usize,
    false_positives: usize,
    abstentions: usize,
}

impl ConfusionCounts {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classified broadcast.
    pub fn record(&mut self, classification: Classification) {
        if !classification.convicted() {
            self.abstentions += 1;
        } else if classification.is_true_positive() {
            self.true_positives += 1;
        } else {
            self.false_positives += 1;
        }
    }

    /// Convenience: classify an estimate against the known origin and record
    /// it.
    pub fn record_estimate(&mut self, origin: NodeId, estimate: &Estimate) {
        self.record(Classification::from_estimate(origin, estimate));
    }

    /// Broadcasts recorded so far.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.abstentions
    }

    /// Broadcasts where the estimator named a suspect.
    pub fn convictions(&self) -> usize {
        self.true_positives + self.false_positives
    }

    /// Correct convictions.
    pub fn true_positives(&self) -> usize {
        self.true_positives
    }

    /// Wrong convictions.
    pub fn false_positives(&self) -> usize {
        self.false_positives
    }

    /// Broadcasts where the estimator abstained.
    pub fn abstentions(&self) -> usize {
        self.abstentions
    }

    /// Precision: correct convictions over all convictions. Defined as 1.0
    /// when the estimator never convicted anyone (it made no mistakes).
    pub fn precision(&self) -> f64 {
        let convictions = self.convictions();
        if convictions == 0 {
            return 1.0;
        }
        self.true_positives as f64 / convictions as f64
    }

    /// Recall: correct convictions over all broadcasts. Defined as 0.0 when
    /// nothing has been recorded.
    pub fn recall(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.true_positives as f64 / total as f64
    }

    /// F1 score (harmonic mean of precision and recall); 0.0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn estimate_for(node: Option<usize>) -> Estimate {
        let mut scores = BTreeMap::new();
        if let Some(node) = node {
            scores.insert(NodeId::new(node), 1.0);
        }
        Estimate::from_scores(scores)
    }

    #[test]
    fn classification_distinguishes_the_three_outcomes() {
        let correct = Classification::from_estimate(NodeId::new(3), &estimate_for(Some(3)));
        let wrong = Classification::from_estimate(NodeId::new(3), &estimate_for(Some(4)));
        let abstained = Classification::from_estimate(NodeId::new(3), &estimate_for(None));
        assert!(correct.is_true_positive() && correct.convicted());
        assert!(!wrong.is_true_positive() && wrong.convicted());
        assert!(!abstained.is_true_positive() && !abstained.convicted());
    }

    #[test]
    fn precision_and_recall_are_computed_over_the_campaign() {
        let mut counts = ConfusionCounts::new();
        counts.record_estimate(NodeId::new(1), &estimate_for(Some(1))); // TP
        counts.record_estimate(NodeId::new(2), &estimate_for(Some(9))); // FP
        counts.record_estimate(NodeId::new(3), &estimate_for(None)); // abstain
        counts.record_estimate(NodeId::new(4), &estimate_for(Some(4))); // TP
        assert_eq!(counts.total(), 4);
        assert_eq!(counts.convictions(), 3);
        assert_eq!(counts.true_positives(), 2);
        assert_eq!(counts.false_positives(), 1);
        assert_eq!(counts.abstentions(), 1);
        assert!((counts.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((counts.recall() - 0.5).abs() < 1e-12);
        assert!(counts.f1() > 0.5 && counts.f1() < 0.67);
    }

    #[test]
    fn degenerate_cases_have_safe_defaults() {
        let empty = ConfusionCounts::new();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f1(), 0.0);

        let mut only_abstentions = ConfusionCounts::new();
        only_abstentions.record_estimate(NodeId::new(0), &estimate_for(None));
        assert_eq!(only_abstentions.precision(), 1.0);
        assert_eq!(only_abstentions.recall(), 0.0);
    }

    #[test]
    fn perfect_attacker_has_precision_and_recall_one() {
        let mut counts = ConfusionCounts::new();
        for i in 0..10 {
            counts.record_estimate(NodeId::new(i), &estimate_for(Some(i)));
        }
        assert_eq!(counts.precision(), 1.0);
        assert_eq!(counts.recall(), 1.0);
        assert_eq!(counts.f1(), 1.0);
    }
}
