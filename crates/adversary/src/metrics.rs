//! Privacy metrics aggregated over many attacked broadcasts.
//!
//! A single broadcast either is or is not deanonymised; the quantities the
//! paper argues about — probability of detection, expected anonymity-set
//! size, how these change with the adversary fraction φ — are averages over
//! many repetitions. [`PrivacyExperiment`] accumulates per-run results and
//! produces the aggregate rows that the experiment binaries print.

use crate::estimators::Estimate;
use fnp_netsim::NodeId;
use std::fmt;

/// The outcome of attacking one broadcast.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackOutcome {
    /// The true originator of the broadcast.
    pub origin: NodeId,
    /// The adversary's estimate.
    pub estimate: Estimate,
}

impl AttackOutcome {
    /// True if the adversary's single best guess was correct.
    pub fn detected(&self) -> bool {
        self.estimate.convicts(self.origin)
    }

    /// Probability mass the adversary assigned to the true originator.
    pub fn probability_on_origin(&self) -> f64 {
        self.estimate.probability_of(self.origin)
    }
}

/// Aggregated privacy results over many attacked broadcasts.
#[derive(Clone, Debug, Default)]
pub struct PrivacyExperiment {
    outcomes: Vec<AttackOutcome>,
}

impl PrivacyExperiment {
    /// Creates an empty aggregation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of one attacked broadcast.
    pub fn record(&mut self, outcome: AttackOutcome) {
        self.outcomes.push(outcome);
    }

    /// Number of recorded broadcasts.
    pub fn runs(&self) -> usize {
        self.outcomes.len()
    }

    /// Fraction of broadcasts where the adversary's best guess was the true
    /// originator — the paper's "probability to detect the true origin".
    pub fn detection_probability(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.detected()).count() as f64 / self.outcomes.len() as f64
    }

    /// Average probability mass the adversary assigned to the true
    /// originator (a smoother measure than top-1 detection).
    pub fn mean_probability_on_origin(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(AttackOutcome::probability_on_origin)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Average effective anonymity-set size.
    pub fn mean_anonymity_set_size(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.estimate.anonymity_set_size() as f64)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Average posterior entropy in bits.
    pub fn mean_entropy_bits(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.estimate.entropy_bits())
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Produces the aggregate row for reports.
    pub fn summary(&self) -> PrivacySummary {
        PrivacySummary {
            runs: self.runs(),
            detection_probability: self.detection_probability(),
            mean_probability_on_origin: self.mean_probability_on_origin(),
            mean_anonymity_set_size: self.mean_anonymity_set_size(),
            mean_entropy_bits: self.mean_entropy_bits(),
        }
    }
}

/// One aggregate row of a privacy experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacySummary {
    /// Number of attacked broadcasts.
    pub runs: usize,
    /// Fraction of broadcasts deanonymised by the top-1 guess.
    pub detection_probability: f64,
    /// Mean posterior mass on the true originator.
    pub mean_probability_on_origin: f64,
    /// Mean effective anonymity-set size.
    pub mean_anonymity_set_size: f64,
    /// Mean posterior entropy (bits).
    pub mean_entropy_bits: f64,
}

impl fmt::Display for PrivacySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P[detect]={:.3} E[p(origin)]={:.3} |anonymity set|={:.1} H={:.2} bits (n={})",
            self.detection_probability,
            self.mean_probability_on_origin,
            self.mean_anonymity_set_size,
            self.mean_entropy_bits,
            self.runs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn point_estimate(node: usize) -> Estimate {
        let mut scores = BTreeMap::new();
        scores.insert(NodeId::new(node), 1.0);
        // Re-use the normalisation path through a trivial round trip.
        Estimate {
            posterior: scores,
            best_guess: Some(NodeId::new(node)),
        }
    }

    fn uniform_estimate(nodes: &[usize]) -> Estimate {
        let p = 1.0 / nodes.len() as f64;
        let posterior: BTreeMap<NodeId, f64> = nodes.iter().map(|&n| (NodeId::new(n), p)).collect();
        Estimate {
            best_guess: posterior.keys().next().copied(),
            posterior,
        }
    }

    #[test]
    fn empty_experiment_reports_zeroes() {
        let experiment = PrivacyExperiment::new();
        let summary = experiment.summary();
        assert_eq!(summary.runs, 0);
        assert_eq!(summary.detection_probability, 0.0);
        assert_eq!(summary.mean_anonymity_set_size, 0.0);
        assert_eq!(summary.mean_entropy_bits, 0.0);
        assert_eq!(summary.mean_probability_on_origin, 0.0);
    }

    #[test]
    fn detection_probability_counts_correct_guesses() {
        let mut experiment = PrivacyExperiment::new();
        experiment.record(AttackOutcome {
            origin: NodeId::new(1),
            estimate: point_estimate(1), // correct
        });
        experiment.record(AttackOutcome {
            origin: NodeId::new(2),
            estimate: point_estimate(5), // wrong
        });
        assert_eq!(experiment.runs(), 2);
        assert!((experiment.detection_probability() - 0.5).abs() < 1e-12);
        assert!((experiment.mean_probability_on_origin() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_posteriors_report_large_anonymity_sets() {
        let mut experiment = PrivacyExperiment::new();
        experiment.record(AttackOutcome {
            origin: NodeId::new(3),
            estimate: uniform_estimate(&[0, 1, 2, 3, 4, 5, 6, 7]),
        });
        let summary = experiment.summary();
        assert_eq!(summary.mean_anonymity_set_size, 8.0);
        assert!((summary.mean_entropy_bits - 3.0).abs() < 1e-9);
        assert!((summary.mean_probability_on_origin - 0.125).abs() < 1e-12);
    }

    #[test]
    fn outcome_accessors() {
        let outcome = AttackOutcome {
            origin: NodeId::new(1),
            estimate: point_estimate(1),
        };
        assert!(outcome.detected());
        assert_eq!(outcome.probability_on_origin(), 1.0);
    }

    #[test]
    fn summary_display_contains_key_figures() {
        let mut experiment = PrivacyExperiment::new();
        experiment.record(AttackOutcome {
            origin: NodeId::new(0),
            estimate: point_estimate(0),
        });
        let text = experiment.summary().to_string();
        assert!(text.contains("P[detect]=1.000"));
        assert!(text.contains("n=1"));
    }
}
