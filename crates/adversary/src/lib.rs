//! # fnp-adversary — attacker models and deanonymisation estimators
//!
//! The point of the flexible broadcast protocol is to survive an
//! honest-but-curious adversary that controls a sizeable fraction of the
//! overlay (§I, §IV-A of the paper). This crate provides everything the
//! experiments need to *measure* that:
//!
//! * [`observer`] — selecting the colluding node set (the botnet model of
//!   Biryukov et al.) and reducing the simulator's transmission trace to
//!   what those nodes could actually observe.
//! * [`estimators`] — the first-spy and Jordan-centre/rumour-centrality
//!   estimators that turn observations into a posterior over originators.
//! * [`metrics`] — aggregation of detection probability, anonymity-set
//!   size and posterior entropy over many attacked broadcasts (the rows of
//!   experiments E1, E2, E3 and E7).
//! * [`timing`] — the Biryukov-style maximum-likelihood timing estimator
//!   that correlates arrival times at many observation points.
//! * [`eavesdropper`] — passive link-level observers (the "intelligence
//!   agency" attacker of §I), up to a global passive adversary.
//! * [`insider`] — coalitions inside the Phase-1 DC-net group and the
//!   analytic ℓ-anonymity floor of §V-B.
//! * [`precision`] — precision/recall accounting over whole attack
//!   campaigns, the reporting style of the Dandelion analysis.
//!
//! # Example
//!
//! ```
//! use fnp_adversary::{first_spy, AdversarySet, AdversaryView};
//! use fnp_gossip::run_flood;
//! use fnp_netsim::{topology, NodeId, SimConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let graph = topology::random_regular(100, 8, &mut rng)?;
//! let origin = NodeId::new(0);
//!
//! let metrics = run_flood(
//!     graph,
//!     origin,
//!     1,
//!     SimConfig { record_trace: true, ..SimConfig::default() },
//! );
//!
//! // A botnet controlling 20 % of the network watches the broadcast.
//! let adversaries = AdversarySet::random_fraction(100, 0.2, &[origin], &mut rng);
//! let view = AdversaryView::from_metrics(&metrics, &adversaries);
//! let estimate = first_spy(&view);
//! println!("suspect: {:?}", estimate.best_guess);
//! # Ok::<(), fnp_netsim::GenerateTopologyError>(())
//! ```
//!
//! (The example depends on `fnp-gossip` only for illustration; the library
//! itself is independent of any particular dissemination protocol.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eavesdropper;
pub mod estimators;
pub mod insider;
pub mod metrics;
pub mod observer;
pub mod precision;
pub mod timing;

pub use eavesdropper::{first_sender, traffic_volume, LinkId, LinkObserver};
pub use estimators::{first_spy, jordan_center, weighted_first_relayers, Estimate};
pub use insider::{
    degradation_table, honest_member_count, insider_posterior, phase1_detection_probability,
};
pub use metrics::{AttackOutcome, PrivacyExperiment, PrivacySummary};
pub use observer::{AdversarySet, AdversaryView, Observation};
pub use precision::{Classification, ConfusionCounts};
pub use timing::{infer_per_hop_latency, timing_ml};
