//! Timing-based deanonymisation.
//!
//! The botnet attack the paper cites (Biryukov et al.) does not only look at
//! *who* first relayed a transaction to a malicious node — it correlates the
//! *arrival times* at many observation points. With a symmetric broadcast
//! the earliest arrivals cluster around the true origin, so a
//! maximum-likelihood fit of "how long would the message have needed from
//! candidate `c` to each observer" against the actually observed times
//! recovers the origin with high probability. This module implements that
//! estimator (and is the strongest of the attacks run against plain
//! flooding in experiment E2):
//!
//! For candidate `c` and observer `o` the *expected* arrival time is
//! `t_c + dist(c, o) · ℓ` where `dist` is the hop distance and `ℓ` the
//! assumed per-hop latency. The candidate's score is the inverse of the
//! mean squared residual between expected and observed times, minimised over
//! the unknown start time `t_c` (closed form: the optimal `t_c` is the mean
//! residual). Protocols that break the distance–delay relationship —
//! Dandelion's stem, adaptive diffusion, the flexible protocol's DC phase —
//! leave the estimator close to guessing.

use crate::estimators::Estimate;
use crate::observer::AdversaryView;
use fnp_netsim::{Graph, NodeId};
use std::collections::BTreeMap;

/// Maximum-likelihood timing estimator.
///
/// `per_hop_latency` is the adversary's model of the mean one-hop delay, in
/// the same unit as the observation timestamps. Candidates that cannot reach
/// every observer are excluded.
pub fn timing_ml(
    graph: &Graph,
    view: &AdversaryView,
    candidates: &[NodeId],
    per_hop_latency: f64,
) -> Estimate {
    let mut scores: BTreeMap<NodeId, f64> = BTreeMap::new();
    if view.observations.is_empty() || candidates.is_empty() || per_hop_latency <= 0.0 {
        return Estimate::from_scores(scores);
    }

    // Distances from every observer to all nodes (observers are usually the
    // smaller set).
    let observer_distances: Vec<(Vec<Option<usize>>, f64)> = view
        .observations
        .iter()
        .map(|obs| (graph.bfs_distances(obs.observer), obs.at as f64))
        .collect();

    for &candidate in candidates {
        let mut expected = Vec::with_capacity(observer_distances.len());
        let mut observed = Vec::with_capacity(observer_distances.len());
        let mut reachable = true;
        for (distances, at) in &observer_distances {
            match distances[candidate.index()] {
                Some(d) => {
                    expected.push(d as f64 * per_hop_latency);
                    observed.push(*at);
                }
                None => {
                    reachable = false;
                    break;
                }
            }
        }
        if !reachable || expected.is_empty() {
            continue;
        }
        // Optimal injection time for this candidate: mean of (observed − expected).
        let n = expected.len() as f64;
        let offset: f64 = observed
            .iter()
            .zip(expected.iter())
            .map(|(o, e)| o - e)
            .sum::<f64>()
            / n;
        let mse: f64 = observed
            .iter()
            .zip(expected.iter())
            .map(|(o, e)| {
                let residual = o - e - offset;
                residual * residual
            })
            .sum::<f64>()
            / n;
        scores.insert(candidate, 1.0 / (1.0 + mse));
    }

    // Sharpen: the timing fit separates candidates weakly on small graphs;
    // squaring mirrors the treatment in `jordan_center`.
    let sharpened: BTreeMap<NodeId, f64> = scores
        .into_iter()
        .map(|(node, score)| (node, score * score))
        .collect();
    Estimate::from_scores(sharpened)
}

/// Estimates the per-hop latency from the adversary's own observations: the
/// median inter-arrival gap between consecutive observations. Returns `None`
/// with fewer than two observations.
///
/// This is what a real attacker does when it does not know the deployment's
/// latency distribution; experiments can compare it against passing the
/// simulator's true mean to `timing_ml`.
pub fn infer_per_hop_latency(view: &AdversaryView) -> Option<f64> {
    if view.observations.len() < 2 {
        return None;
    }
    let mut times: Vec<f64> = view.observations.iter().map(|o| o.at as f64).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("timestamps are finite"));
    let mut gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("gaps are finite"));
    let positive: Vec<f64> = gaps.into_iter().filter(|g| *g > 0.0).collect();
    if positive.is_empty() {
        return Some(1.0);
    }
    Some(positive[positive.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::Observation;
    use fnp_netsim::topology;

    fn obs(observer: usize, relayed_by: usize, at: u64) -> Observation {
        Observation {
            observer: NodeId::new(observer),
            relayed_by: NodeId::new(relayed_by),
            at,
            kind: "flood",
        }
    }

    /// A 9-node line; origin in the middle (node 4) with per-hop latency 10.
    fn line_view_from_center() -> (Graph, AdversaryView) {
        let graph = topology::line(9).unwrap();
        // Observers at 1, 3, 5, 8 with arrival times proportional to distance
        // from node 4.
        let view = AdversaryView {
            observations: vec![obs(1, 2, 30), obs(3, 4, 10), obs(5, 4, 10), obs(8, 7, 40)],
        };
        (graph, view)
    }

    #[test]
    fn perfect_timing_data_identifies_the_center_origin() {
        let (graph, view) = line_view_from_center();
        let candidates: Vec<NodeId> = graph.nodes().collect();
        let estimate = timing_ml(&graph, &view, &candidates, 10.0);
        assert_eq!(estimate.best_guess, Some(NodeId::new(4)));
    }

    #[test]
    fn timing_with_a_wrong_latency_model_still_ranks_the_origin_highly() {
        let (graph, view) = line_view_from_center();
        let candidates: Vec<NodeId> = graph.nodes().collect();
        let estimate = timing_ml(&graph, &view, &candidates, 7.0);
        let origin_probability = estimate.probability_of(NodeId::new(4));
        let max = estimate.posterior.values().copied().fold(0.0f64, f64::max);
        assert!(
            origin_probability >= max * 0.5,
            "origin fell far behind: {estimate:?}"
        );
    }

    #[test]
    fn empty_inputs_give_empty_estimates() {
        let graph = topology::line(5).unwrap();
        let empty_view = AdversaryView::default();
        let candidates: Vec<NodeId> = graph.nodes().collect();
        assert_eq!(
            timing_ml(&graph, &empty_view, &candidates, 10.0).best_guess,
            None
        );
        let (_, view) = line_view_from_center();
        assert_eq!(timing_ml(&graph, &view, &[], 10.0).best_guess, None);
        assert_eq!(timing_ml(&graph, &view, &candidates, 0.0).best_guess, None);
    }

    #[test]
    fn unreachable_candidates_are_excluded() {
        // Two disconnected line segments: 0-1-2 and 3-4.
        let mut graph = Graph::new(5);
        graph.add_edge(NodeId::new(0), NodeId::new(1));
        graph.add_edge(NodeId::new(1), NodeId::new(2));
        graph.add_edge(NodeId::new(3), NodeId::new(4));
        let view = AdversaryView {
            observations: vec![obs(2, 1, 10)],
        };
        let candidates: Vec<NodeId> = graph.nodes().collect();
        let estimate = timing_ml(&graph, &view, &candidates, 10.0);
        assert_eq!(estimate.probability_of(NodeId::new(3)), 0.0);
        assert_eq!(estimate.probability_of(NodeId::new(4)), 0.0);
        assert!(estimate.probability_of(NodeId::new(0)) > 0.0);
    }

    #[test]
    fn per_hop_latency_inference_uses_the_median_gap() {
        let view = AdversaryView {
            observations: vec![obs(1, 0, 10), obs(2, 0, 20), obs(3, 0, 25), obs(4, 0, 100)],
        };
        // Gaps: 10, 5, 75 → sorted 5, 10, 75 → median 10.
        assert_eq!(infer_per_hop_latency(&view), Some(10.0));
    }

    #[test]
    fn per_hop_latency_inference_needs_two_observations() {
        assert_eq!(infer_per_hop_latency(&AdversaryView::default()), None);
        let single = AdversaryView {
            observations: vec![obs(1, 0, 10)],
        };
        assert_eq!(infer_per_hop_latency(&single), None);
        let simultaneous = AdversaryView {
            observations: vec![obs(1, 0, 10), obs(2, 0, 10)],
        };
        assert_eq!(infer_per_hop_latency(&simultaneous), Some(1.0));
    }
}
