//! Link-level eavesdroppers: the paper's "sophisticated attackers".
//!
//! §I distinguishes the cheap botnet attacker (colluding *nodes*, modelled in
//! [`crate::observer`]) from "sophisticated attackers controlling or
//! eavesdropping on large parts of the network (e.g., intelligence
//! agencies)". Such an attacker does not participate in the protocol at all:
//! it taps *links* and sees who sent what to whom and when, without ever
//! being a recipient itself.
//!
//! Against this attacker every topological mechanism collapses — the very
//! first transmission of a transaction leaves the originator on an observed
//! wire — which is exactly why the paper's protocol keeps the cryptographic
//! Phase 1: inside the DC-net group the eavesdropper sees `k·(k−1)` identical
//! looking, identically sized messages per round regardless of who (if
//! anyone) is sending, so its posterior over the group never improves beyond
//! the ℓ-anonymity floor (see [`crate::insider`]).
//!
//! [`LinkObserver`] models the tap: a set of undirected edges whose traffic
//! is visible. [`first_sender`] is the corresponding estimator — blame the
//! sender of the earliest message crossing any tapped link.

use crate::estimators::Estimate;
use crate::observer::AdversarySet;
use fnp_netsim::{Graph, Metrics, NodeId, SimTime, TraceEntry};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// An undirected link identified by its (smaller, larger) endpoint pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LinkId(NodeId, NodeId);

impl LinkId {
    /// Canonical (order-independent) link identifier for an edge.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a.index() <= b.index() {
            Self(a, b)
        } else {
            Self(b, a)
        }
    }

    /// The two endpoints in canonical order.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.0, self.1)
    }
}

/// A passive eavesdropper tapping a subset of the overlay's links.
#[derive(Clone, Debug, Default)]
pub struct LinkObserver {
    tapped: BTreeSet<LinkId>,
}

impl LinkObserver {
    /// An observer tapping no links at all.
    pub fn new() -> Self {
        Self::default()
    }

    /// Taps every link of the graph — the global passive adversary, the
    /// strongest observer the paper mentions.
    pub fn global(graph: &Graph) -> Self {
        let tapped = graph.edges().map(|(a, b)| LinkId::new(a, b)).collect();
        Self { tapped }
    }

    /// Taps a uniformly random `fraction` of the graph's links.
    pub fn random_fraction<R: Rng + ?Sized>(graph: &Graph, fraction: f64, rng: &mut R) -> Self {
        let mut edges: Vec<LinkId> = graph.edges().map(|(a, b)| LinkId::new(a, b)).collect();
        edges.shuffle(rng);
        let keep = ((fraction.clamp(0.0, 1.0)) * edges.len() as f64).round() as usize;
        Self {
            tapped: edges.into_iter().take(keep).collect(),
        }
    }

    /// Taps every link adjacent to the given set of compromised nodes — the
    /// "malicious ISP of these customers" model.
    pub fn around_nodes(graph: &Graph, nodes: &AdversarySet) -> Self {
        let tapped = graph
            .edges()
            .filter(|(a, b)| nodes.contains(*a) || nodes.contains(*b))
            .map(|(a, b)| LinkId::new(a, b))
            .collect();
        Self { tapped }
    }

    /// Adds a single tapped link.
    pub fn tap(&mut self, a: NodeId, b: NodeId) {
        self.tapped.insert(LinkId::new(a, b));
    }

    /// Number of tapped links.
    pub fn len(&self) -> usize {
        self.tapped.len()
    }

    /// Whether no link is tapped.
    pub fn is_empty(&self) -> bool {
        self.tapped.is_empty()
    }

    /// Whether the link between `a` and `b` is tapped.
    pub fn observes(&self, a: NodeId, b: NodeId) -> bool {
        self.tapped.contains(&LinkId::new(a, b))
    }

    /// Filters a simulation trace down to the messages crossing tapped links,
    /// in trace order.
    pub fn visible_traffic<'a>(
        &'a self,
        metrics: &'a Metrics,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        metrics
            .trace
            .iter()
            .filter(move |entry| self.observes(entry.from, entry.to))
    }

    /// The earliest message the eavesdropper saw, if any.
    pub fn first_visible<'a>(&'a self, metrics: &'a Metrics) -> Option<&'a TraceEntry> {
        self.visible_traffic(metrics)
            .min_by_key(|entry| (entry.at, entry.from, entry.to))
    }
}

/// The eavesdropper's first-sender estimator: blame the sender of the
/// earliest message crossing any tapped link.
///
/// Messages of the kinds listed in `exempt_kinds` are skipped — the flexible
/// protocol's DC-net traffic is unlinkable to the payload by construction, so
/// an honest evaluation must not let the estimator "win" simply by pointing
/// at the first DC-net share it happens to see. (Every member of the group
/// transmits in every DC round whether or not it has a payload.)
pub fn first_sender(observer: &LinkObserver, metrics: &Metrics, exempt_kinds: &[&str]) -> Estimate {
    let mut scores: BTreeMap<NodeId, f64> = BTreeMap::new();
    let first = observer
        .visible_traffic(metrics)
        .filter(|entry| !exempt_kinds.contains(&entry.kind))
        .min_by_key(|entry| (entry.at, entry.from, entry.to));
    if let Some(entry) = first {
        scores.insert(entry.from, 1.0);
    }
    Estimate::from_scores(scores)
}

/// Per-node traffic volume visible to the eavesdropper within a time window,
/// used by the traffic-analysis discussion of §III-B (cover traffic leaks
/// usage changes): bytes sent per node over tapped links in `[from, to)`.
pub fn traffic_volume(
    observer: &LinkObserver,
    metrics: &Metrics,
    from: SimTime,
    to: SimTime,
) -> BTreeMap<NodeId, u64> {
    let mut volume = BTreeMap::new();
    for entry in observer.visible_traffic(metrics) {
        if entry.at >= from && entry.at < to {
            *volume.entry(entry.from).or_insert(0) += entry.bytes as u64;
        }
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_graph(n: usize) -> Graph {
        fnp_netsim::topology::line(n).unwrap()
    }

    fn trace(entries: &[(u64, usize, usize, &'static str, usize)]) -> Metrics {
        let mut metrics = Metrics::new(16);
        metrics.trace = entries
            .iter()
            .map(|&(at, from, to, kind, bytes)| TraceEntry {
                at,
                from: NodeId::new(from),
                to: NodeId::new(to),
                kind,
                bytes,
            })
            .collect();
        metrics
    }

    #[test]
    fn link_ids_are_order_independent() {
        let a = LinkId::new(NodeId::new(3), NodeId::new(7));
        let b = LinkId::new(NodeId::new(7), NodeId::new(3));
        assert_eq!(a, b);
        assert_eq!(a.endpoints(), (NodeId::new(3), NodeId::new(7)));
    }

    #[test]
    fn global_observer_taps_every_edge() {
        let graph = line_graph(5);
        let observer = LinkObserver::global(&graph);
        assert_eq!(observer.len(), graph.edge_count());
        assert!(observer.observes(NodeId::new(0), NodeId::new(1)));
        assert!(!observer.observes(NodeId::new(0), NodeId::new(4)));
    }

    #[test]
    fn random_fraction_taps_the_requested_share() {
        let graph = line_graph(101); // 100 edges
        let mut rng = StdRng::seed_from_u64(1);
        let observer = LinkObserver::random_fraction(&graph, 0.3, &mut rng);
        assert_eq!(observer.len(), 30);
        assert!(LinkObserver::random_fraction(&graph, 0.0, &mut rng).is_empty());
    }

    #[test]
    fn around_nodes_taps_adjacent_links_only() {
        let graph = line_graph(5);
        let set = AdversarySet::from_nodes(5, [NodeId::new(2)]);
        let observer = LinkObserver::around_nodes(&graph, &set);
        assert_eq!(observer.len(), 2);
        assert!(observer.observes(NodeId::new(1), NodeId::new(2)));
        assert!(observer.observes(NodeId::new(2), NodeId::new(3)));
        assert!(!observer.observes(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn first_sender_blames_the_earliest_visible_sender() {
        let graph = line_graph(6);
        let observer = LinkObserver::global(&graph);
        let metrics = trace(&[
            (5, 2, 3, "flood", 100),
            (9, 3, 4, "flood", 100),
            (12, 4, 5, "flood", 100),
        ]);
        let estimate = first_sender(&observer, &metrics, &[]);
        assert_eq!(estimate.best_guess, Some(NodeId::new(2)));
        assert_eq!(estimate.probability_of(NodeId::new(2)), 1.0);
    }

    #[test]
    fn exempt_kinds_are_ignored() {
        let graph = line_graph(6);
        let observer = LinkObserver::global(&graph);
        let metrics = trace(&[
            (1, 0, 1, "dc-share", 64),
            (2, 1, 0, "dc-share", 64),
            (8, 3, 4, "flood", 100),
        ]);
        let estimate = first_sender(&observer, &metrics, &["dc-share"]);
        assert_eq!(estimate.best_guess, Some(NodeId::new(3)));
        let naive = first_sender(&observer, &metrics, &[]);
        assert_eq!(naive.best_guess, Some(NodeId::new(0)));
    }

    #[test]
    fn untapped_links_hide_traffic() {
        let mut observer = LinkObserver::new();
        observer.tap(NodeId::new(2), NodeId::new(3));
        let metrics = trace(&[(1, 0, 1, "flood", 100), (5, 2, 3, "flood", 100)]);
        assert_eq!(observer.visible_traffic(&metrics).count(), 1);
        let estimate = first_sender(&observer, &metrics, &[]);
        assert_eq!(estimate.best_guess, Some(NodeId::new(2)));
    }

    #[test]
    fn empty_observation_yields_an_empty_estimate() {
        let metrics = trace(&[]);
        let observer = LinkObserver::new();
        let estimate = first_sender(&observer, &metrics, &[]);
        assert_eq!(estimate.best_guess, None);
        assert!(observer.first_visible(&metrics).is_none());
    }

    #[test]
    fn traffic_volume_counts_bytes_per_sender_within_the_window() {
        let graph = line_graph(4);
        let observer = LinkObserver::global(&graph);
        let metrics = trace(&[
            (1, 0, 1, "flood", 100),
            (2, 0, 1, "flood", 50),
            (10, 1, 2, "flood", 70),
            (30, 2, 3, "flood", 70),
        ]);
        let volume = traffic_volume(&observer, &metrics, 0, 20);
        assert_eq!(volume[&NodeId::new(0)], 150);
        assert_eq!(volume[&NodeId::new(1)], 70);
        assert_eq!(volume.get(&NodeId::new(2)), None);
    }
}
