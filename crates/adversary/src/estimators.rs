//! Deanonymisation estimators.
//!
//! Given what its colluding nodes observed (see [`crate::observer`]), the
//! adversary guesses the originator of the broadcast. Two standard
//! estimators from the literature the paper builds on are provided:
//!
//! * **First spy** — blame the honest node that first relayed the
//!   transaction to any adversarial node. This is the cheap attack of
//!   Biryukov et al. that plain flooding falls to (Fig. 2, experiment E2)
//!   and the estimator the Dandelion analysis uses.
//! * **Rumour centrality / Jordan centre** — blame the honest node that
//!   minimises the maximum graph distance to the adversary's observation
//!   points, weighted by observation order. This models a stronger
//!   observer that exploits the *symmetry* of flood-and-prune: the true
//!   source sits near the centre of the infected ball (exactly the
//!   intuition of the paper's Fig. 2).
//!
//! Both return a full posterior (candidate → score) so that experiments can
//! report not only precision but anonymity-set sizes and entropy.

use crate::observer::AdversaryView;
use fnp_netsim::{Graph, NodeId};
use std::collections::BTreeMap;

/// A guess produced by an estimator: a normalised posterior over candidate
/// originators plus the single most-suspected node.
#[derive(Clone, Debug, PartialEq)]
pub struct Estimate {
    /// Normalised suspicion score per candidate node (sums to 1 unless the
    /// estimator had no information at all, in which case it is empty).
    pub posterior: BTreeMap<NodeId, f64>,
    /// The most suspected node (ties broken towards the smaller id).
    pub best_guess: Option<NodeId>,
}

impl Estimate {
    pub(crate) fn from_scores(scores: BTreeMap<NodeId, f64>) -> Self {
        let total: f64 = scores.values().copied().filter(|s| *s > 0.0).sum();
        if total <= 0.0 {
            return Self {
                posterior: BTreeMap::new(),
                best_guess: None,
            };
        }
        let posterior: BTreeMap<NodeId, f64> = scores
            .into_iter()
            .filter(|(_, score)| *score > 0.0)
            .map(|(node, score)| (node, score / total))
            .collect();
        let best_guess = posterior
            .iter()
            .max_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .expect("scores are finite")
                    .then(b.0.cmp(a.0))
            })
            .map(|(node, _)| *node);
        Self {
            posterior,
            best_guess,
        }
    }

    /// Probability the estimator assigns to `node` (0.0 if absent).
    pub fn probability_of(&self, node: NodeId) -> f64 {
        self.posterior.get(&node).copied().unwrap_or(0.0)
    }

    /// True if the estimator's single best guess equals `origin`.
    pub fn convicts(&self, origin: NodeId) -> bool {
        self.best_guess == Some(origin)
    }

    /// The effective anonymity-set size: the number of candidates carrying
    /// non-negligible probability mass (≥ 1 % of the maximum score).
    pub fn anonymity_set_size(&self) -> usize {
        let max = self.posterior.values().copied().fold(0.0f64, f64::max);
        if max <= 0.0 {
            return 0;
        }
        self.posterior
            .values()
            .filter(|score| **score >= max * 0.01)
            .count()
    }

    /// Shannon entropy (bits) of the posterior — `log2(n)` means the
    /// adversary learned nothing beyond "one of these n nodes".
    pub fn entropy_bits(&self) -> f64 {
        let weights: Vec<f64> = self.posterior.values().copied().collect();
        fnp_netsim::entropy_bits(&weights)
    }
}

/// The first-spy estimator: the honest node that first delivered the
/// transaction to any adversarial node is blamed with probability 1.
///
/// If no adversarial node ever observed the broadcast the estimate is
/// empty (the adversary learned nothing).
pub fn first_spy(view: &AdversaryView) -> Estimate {
    let mut scores = BTreeMap::new();
    if let Some(first) = view.first_observation() {
        scores.insert(first.relayed_by, 1.0);
    }
    Estimate::from_scores(scores)
}

/// A first-spy variant that spreads suspicion over every honest node that
/// was the *first relayer* seen by some adversarial observer, weighted by
/// how early that observation happened. Less brittle than pure first-spy on
/// protocols that randomise the initial relays.
pub fn weighted_first_relayers(view: &AdversaryView) -> Estimate {
    let mut scores: BTreeMap<NodeId, f64> = BTreeMap::new();
    let Some(first) = view.first_observation() else {
        return Estimate::from_scores(scores);
    };
    let earliest = first.at.max(1);
    for observation in &view.observations {
        // Earlier observations carry exponentially more weight.
        let delay = observation.at.saturating_sub(earliest) as f64 / earliest as f64;
        let weight = (-delay).exp();
        *scores.entry(observation.relayed_by).or_insert(0.0) += weight;
    }
    Estimate::from_scores(scores)
}

/// The Jordan-centre / rumour-centrality style estimator: every honest node
/// is scored by how well its BFS distances to the adversary's observers
/// match the observed arrival order, blaming nodes "in the centre" of the
/// observations.
///
/// Score: for candidate `c`, `score(c) = 1 / (1 + max_o dist(c, o) · w_o)`
/// where `o` ranges over observers, `dist` is the hop distance and `w_o`
/// down-weights later observations. The true source of a symmetric flood
/// minimises the maximum weighted distance (it is the Jordan centre of the
/// observation set), which is why this estimator defeats plain flooding but
/// is mostly blind against adaptive diffusion, whose infection ball is
/// centred on the virtual source instead.
pub fn jordan_center(graph: &Graph, view: &AdversaryView, candidates: &[NodeId]) -> Estimate {
    let mut scores: BTreeMap<NodeId, f64> = BTreeMap::new();
    if view.observations.is_empty() || candidates.is_empty() {
        return Estimate::from_scores(scores);
    }

    // Precompute BFS distances from every observer (cheaper than from every
    // candidate when observers are the smaller set).
    let earliest = view
        .first_observation()
        .expect("observations checked non-empty")
        .at
        .max(1);
    let mut observer_distances: Vec<(Vec<Option<usize>>, f64)> = Vec::new();
    for observation in &view.observations {
        let distances = graph.bfs_distances(observation.observer);
        let delay = observation.at.saturating_sub(earliest) as f64 / earliest as f64;
        let weight = (-delay).exp();
        observer_distances.push((distances, weight));
    }

    for &candidate in candidates {
        let mut worst_distance = 0.0f64;
        let mut reachable = true;
        for (distances, weight) in &observer_distances {
            match distances[candidate.index()] {
                Some(d) => worst_distance = worst_distance.max(d as f64 * weight),
                None => {
                    reachable = false;
                    break;
                }
            }
        }
        if reachable {
            scores.insert(candidate, 1.0 / (1.0 + worst_distance));
        }
    }

    // Sharpen the distribution: square the scores so that the centre stands
    // out (rumour centrality is strongly peaked for symmetric spreads).
    let sharpened: BTreeMap<NodeId, f64> = scores
        .into_iter()
        .map(|(node, score)| (node, score * score))
        .collect();
    Estimate::from_scores(sharpened)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{AdversarySet, Observation};
    use fnp_netsim::topology;

    fn view(observations: Vec<Observation>) -> AdversaryView {
        AdversaryView { observations }
    }

    fn obs(observer: usize, relayed_by: usize, at: u64) -> Observation {
        Observation {
            observer: NodeId::new(observer),
            relayed_by: NodeId::new(relayed_by),
            at,
            kind: "flood",
        }
    }

    #[test]
    fn empty_view_yields_empty_estimate() {
        let estimate = first_spy(&view(vec![]));
        assert_eq!(estimate.best_guess, None);
        assert_eq!(estimate.anonymity_set_size(), 0);
        assert_eq!(estimate.entropy_bits(), 0.0);
        assert!(!estimate.convicts(NodeId::new(0)));
        assert_eq!(estimate.probability_of(NodeId::new(0)), 0.0);
    }

    #[test]
    fn first_spy_blames_the_earliest_relayer() {
        let estimate = first_spy(&view(vec![obs(5, 1, 30), obs(6, 2, 10), obs(7, 3, 20)]));
        assert_eq!(estimate.best_guess, Some(NodeId::new(2)));
        assert_eq!(estimate.probability_of(NodeId::new(2)), 1.0);
        assert!(estimate.convicts(NodeId::new(2)));
        assert_eq!(estimate.anonymity_set_size(), 1);
        assert_eq!(estimate.entropy_bits(), 0.0);
    }

    #[test]
    fn weighted_first_relayers_spreads_mass() {
        let estimate =
            weighted_first_relayers(&view(vec![obs(5, 1, 100), obs(6, 2, 100), obs(7, 1, 200)]));
        // Nodes 1 and 2 both relayed early; node 1 also relayed late.
        assert!(estimate.probability_of(NodeId::new(1)) > estimate.probability_of(NodeId::new(2)));
        assert!(estimate.anonymity_set_size() >= 2);
        let total: f64 = estimate.posterior.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jordan_center_recovers_the_centre_of_a_star() {
        // Star graph: node 0 is the hub. Observers sit on three leaves and
        // all heard the message relayed by the hub at the same time — the
        // hub is the unambiguous Jordan centre.
        let graph = topology::star(6).unwrap();
        let candidates: Vec<NodeId> = (0..6).map(NodeId::new).collect();
        let v = view(vec![obs(1, 0, 10), obs(2, 0, 10), obs(3, 0, 10)]);
        let estimate = jordan_center(&graph, &v, &candidates);
        assert_eq!(estimate.best_guess, Some(NodeId::new(0)));
    }

    #[test]
    fn jordan_center_on_a_line_prefers_the_midpoint() {
        // Line 0-1-2-3-4 with observers at both ends: the midpoint (2) is
        // the centre.
        let graph = topology::line(5).unwrap();
        let candidates: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        let v = view(vec![obs(0, 1, 10), obs(4, 3, 10)]);
        let estimate = jordan_center(&graph, &v, &candidates);
        assert_eq!(estimate.best_guess, Some(NodeId::new(2)));
    }

    #[test]
    fn jordan_center_with_no_candidates_is_empty() {
        let graph = topology::line(3).unwrap();
        let estimate = jordan_center(&graph, &view(vec![obs(0, 1, 10)]), &[]);
        assert_eq!(estimate.best_guess, None);
    }

    #[test]
    fn unreachable_candidates_are_excluded() {
        // Disconnected graph: candidate 3 cannot be the source of anything
        // the observer at node 0 saw.
        let mut graph = Graph::new(4);
        graph.add_edge(NodeId::new(0), NodeId::new(1));
        graph.add_edge(NodeId::new(2), NodeId::new(3));
        let candidates: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let estimate = jordan_center(&graph, &view(vec![obs(0, 1, 10)]), &candidates);
        assert_eq!(estimate.probability_of(NodeId::new(3)), 0.0);
        assert!(estimate.probability_of(NodeId::new(1)) > 0.0);
    }

    #[test]
    fn posterior_is_normalised() {
        let graph = topology::ring(8).unwrap();
        let candidates: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        let v = view(vec![obs(1, 2, 10), obs(5, 4, 20)]);
        let estimate = jordan_center(&graph, &v, &candidates);
        let total: f64 = estimate.posterior.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(estimate.entropy_bits() > 0.0);
        assert!(estimate.anonymity_set_size() >= 1);
    }

    #[test]
    fn view_extraction_plus_estimation_pipeline() {
        // End-to-end: flood a graph, extract the adversary view and check the
        // first-spy guess is a neighbour of an adversarial node.
        use fnp_gossip_stub::run_small_flood;
        let (graph, metrics, origin) = run_small_flood();
        let adversaries = AdversarySet::random_fraction(
            graph.node_count(),
            0.3,
            &[origin],
            &mut rand::rngs::StdRng::seed_from_u64(1),
        );
        let view = AdversaryView::from_metrics(&metrics, &adversaries);
        let estimate = first_spy(&view);
        if let Some(guess) = estimate.best_guess {
            assert!(guess.index() < graph.node_count());
        }
    }

    /// A tiny local flooding implementation so this crate's tests do not
    /// depend on `fnp-gossip` (which would create a dependency cycle risk
    /// for no benefit — the estimators only need *a* trace).
    mod fnp_gossip_stub {
        use fnp_netsim::{
            topology, Context, Graph, Metrics, NodeId, Payload, ProtocolNode, SimConfig, Simulator,
        };
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        #[derive(Clone, Debug)]
        pub struct Tx;
        impl Payload for Tx {
            fn kind(&self) -> &'static str {
                "flood"
            }
        }

        #[derive(Default)]
        pub struct Node {
            seen: bool,
        }
        impl ProtocolNode for Node {
            type Message = Tx;
            fn on_message(&mut self, from: NodeId, msg: Tx, ctx: &mut Context<'_, Tx>) {
                if !std::mem::replace(&mut self.seen, true) {
                    ctx.mark_delivered();
                    ctx.send_to_neighbors_except(msg, &[from]);
                }
            }
        }

        pub fn run_small_flood() -> (Graph, Metrics, NodeId) {
            let mut rng = StdRng::seed_from_u64(7);
            let graph = topology::random_regular(60, 4, &mut rng).unwrap();
            let origin = NodeId::new(0);
            let nodes = (0..60).map(|_| Node::default()).collect();
            let mut sim = Simulator::new(
                graph.clone(),
                nodes,
                SimConfig {
                    record_trace: true,
                    ..SimConfig::default()
                },
            );
            sim.trigger(origin, |node, ctx| {
                node.seen = true;
                ctx.mark_delivered();
                ctx.send_to_neighbors_except(Tx, &[]);
            });
            sim.run();
            let (_, metrics) = sim.into_parts();
            (graph, metrics, origin)
        }
    }

    use rand::SeedableRng;
}
