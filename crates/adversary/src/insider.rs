//! The DC-net insider: colluding members inside the Phase-1 group.
//!
//! §V-B states the protocol's privacy floor: "After Phase 1, if a group has
//! ℓ ≤ k honest members, the protocol provides sender ℓ-anonymity". The
//! adversary considered there is not an outside observer but a coalition of
//! group members that pools everything it saw during the DC-net rounds. The
//! information-theoretic property of the dining-cryptographers construction
//! is that such a coalition learns *nothing* about which of the remaining
//! honest members transmitted — its posterior over them stays uniform — so
//! the best it can do is guess uniformly among the ℓ honest members.
//!
//! This module turns that argument into testable code: [`insider_posterior`]
//! produces the coalition's posterior (uniform over honest members, zero on
//! colluders — they know they did not send), and
//! [`phase1_detection_probability`] is the resulting probability of naming
//! the true originator, `1/ℓ`. The E7 experiment checks that the *empirical*
//! detection probability measured against the real DC-net implementation in
//! `fnp-dcnet` never exceeds this analytic bound (up to sampling noise).

use crate::estimators::Estimate;
use fnp_netsim::NodeId;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// The posterior of a coalition of `colluders` inside a Phase-1 group over
/// the originator of a message that the group emitted.
///
/// Colluding members are excluded (each knows it did not send); all honest
/// members are equally likely. If every member colludes the estimate is
/// empty — with no honest member left there is nobody to protect and the
/// paper's guarantee is vacuous.
pub fn insider_posterior(group: &[NodeId], colluders: &[NodeId]) -> Estimate {
    let colluding: BTreeSet<NodeId> = colluders.iter().copied().collect();
    let honest: Vec<NodeId> = group
        .iter()
        .copied()
        .filter(|member| !colluding.contains(member))
        .collect();
    let mut scores = BTreeMap::new();
    for member in honest {
        scores.insert(member, 1.0);
    }
    Estimate::from_scores(scores)
}

/// Number of honest members ℓ of a group given the coalition inside it.
pub fn honest_member_count(group: &[NodeId], colluders: &[NodeId]) -> usize {
    let colluding: BTreeSet<NodeId> = colluders.iter().copied().collect();
    group
        .iter()
        .filter(|member| !colluding.contains(member))
        .count()
}

/// The analytic Phase-1 detection probability `1/ℓ` from §V-B.
///
/// Returns 1.0 when no honest member remains (the degenerate case where the
/// "coalition" trivially knows the sender because it *is* the rest of the
/// group).
pub fn phase1_detection_probability(group: &[NodeId], colluders: &[NodeId]) -> f64 {
    let honest = honest_member_count(group, colluders);
    if honest == 0 {
        return 1.0;
    }
    1.0 / honest as f64
}

/// Anonymity degradation table for a group of size `k` as the number of
/// insider colluders grows from 0 to `k`: entry `c` is the detection
/// probability with `c` colluders, `1/(k−c)`.
///
/// This is the data behind the paper's choice of "k typically between four
/// and ten": the floor degrades gracefully, one member at a time, rather
/// than collapsing.
pub fn degradation_table(k: usize) -> Vec<f64> {
    (0..=k)
        .map(|colluders| {
            let honest = k - colluders;
            if honest == 0 {
                1.0
            } else {
                1.0 / honest as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn group(ids: &[usize]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn posterior_is_uniform_over_honest_members() {
        let members = group(&[1, 2, 3, 4, 5]);
        let colluders = group(&[2, 5]);
        let estimate = insider_posterior(&members, &colluders);
        assert_eq!(estimate.posterior.len(), 3);
        for honest in group(&[1, 3, 4]) {
            assert!((estimate.probability_of(honest) - 1.0 / 3.0).abs() < 1e-12);
        }
        assert_eq!(estimate.probability_of(NodeId::new(2)), 0.0);
        assert_eq!(estimate.anonymity_set_size(), 3);
    }

    #[test]
    fn no_colluders_means_k_anonymity() {
        let members = group(&[0, 1, 2, 3]);
        let estimate = insider_posterior(&members, &[]);
        assert_eq!(estimate.anonymity_set_size(), 4);
        assert!((phase1_detection_probability(&members, &[]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_colluders_is_the_vacuous_case() {
        let members = group(&[0, 1]);
        let estimate = insider_posterior(&members, &members);
        assert_eq!(estimate.best_guess, None);
        assert_eq!(phase1_detection_probability(&members, &members), 1.0);
        assert_eq!(honest_member_count(&members, &members), 0);
    }

    #[test]
    fn degradation_table_matches_the_analytic_floor() {
        let table = degradation_table(5);
        assert_eq!(table.len(), 6);
        assert!((table[0] - 0.2).abs() < 1e-12);
        assert!((table[1] - 0.25).abs() < 1e-12);
        assert!((table[4] - 1.0).abs() < 1e-12);
        assert_eq!(table[5], 1.0);
        // Monotonically non-decreasing.
        assert!(table.windows(2).all(|w| w[1] >= w[0]));
    }

    proptest! {
        #[test]
        fn detection_probability_is_one_over_honest_count(
            k in 2usize..16,
            colluder_count in 0usize..16
        ) {
            let members: Vec<NodeId> = (0..k).map(NodeId::new).collect();
            let colluders: Vec<NodeId> = (0..colluder_count.min(k)).map(NodeId::new).collect();
            let honest = k - colluders.len();
            let p = phase1_detection_probability(&members, &colluders);
            if honest == 0 {
                prop_assert_eq!(p, 1.0);
            } else {
                prop_assert!((p - 1.0 / honest as f64).abs() < 1e-12);
                let estimate = insider_posterior(&members, &colluders);
                prop_assert_eq!(estimate.anonymity_set_size(), honest);
                // The posterior never singles anyone out more than the bound.
                for probability in estimate.posterior.values() {
                    prop_assert!(*probability <= p + 1e-12);
                }
            }
        }
    }
}
