//! Adversarial observers: which nodes collude and what they see.
//!
//! The attacker the paper defends against (§I, §IV-A) is honest-but-curious
//! and controls a fraction of the network's nodes — "a larger number of
//! nodes, as they can be deployed by renting botnets" — which faithfully
//! run the protocol but log everything they receive. This module selects
//! the colluding set and filters the simulator's omniscient transmission
//! trace down to the *observations* those nodes could actually make: the
//! time each adversarial node first received the transaction and from whom.

use fnp_netsim::{Metrics, NodeId, SimTime, TraceEntry};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// The set of adversary-controlled (colluding, honest-but-curious) nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdversarySet {
    nodes: BTreeSet<NodeId>,
    network_size: usize,
}

impl AdversarySet {
    /// Selects a uniformly random fraction `fraction` of the `n` nodes as
    /// colluding observers (the botnet model). `protected` nodes — typically
    /// the originator whose privacy is being measured — are never selected.
    pub fn random_fraction<R: Rng + ?Sized>(
        n: usize,
        fraction: f64,
        protected: &[NodeId],
        rng: &mut R,
    ) -> Self {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut candidates: Vec<NodeId> = (0..n)
            .map(NodeId::new)
            .filter(|node| !protected.contains(node))
            .collect();
        candidates.shuffle(rng);
        let count = ((n as f64) * fraction).round() as usize;
        let count = count.min(candidates.len());
        Self {
            nodes: candidates.into_iter().take(count).collect(),
            network_size: n,
        }
    }

    /// Builds an adversary set from an explicit list of nodes.
    pub fn from_nodes(n: usize, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Self {
            nodes: nodes.into_iter().collect(),
            network_size: n,
        }
    }

    /// Number of colluding nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the adversary controls no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total network size the set was drawn from.
    pub fn network_size(&self) -> usize {
        self.network_size
    }

    /// Fraction of the network the adversary controls.
    pub fn fraction(&self) -> f64 {
        if self.network_size == 0 {
            return 0.0;
        }
        self.nodes.len() as f64 / self.network_size as f64
    }

    /// True if `node` is adversarial.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Iterator over the colluding nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// The honest nodes (complement of the adversary set).
    pub fn honest_nodes(&self) -> Vec<NodeId> {
        (0..self.network_size)
            .map(NodeId::new)
            .filter(|node| !self.nodes.contains(node))
            .collect()
    }
}

/// One observation made by an adversarial node: the first time it received
/// the broadcast and the honest neighbour that delivered it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Observation {
    /// The adversarial node that made the observation.
    pub observer: NodeId,
    /// The node that relayed the transaction to the observer.
    pub relayed_by: NodeId,
    /// Simulated time of the first receipt.
    pub at: SimTime,
    /// Message kind of the first receipt (e.g. `"flood"`, `"dandelion-stem"`).
    pub kind: &'static str,
}

/// Everything the colluding nodes learned from one broadcast.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdversaryView {
    /// First-receipt observations, one per adversarial node that was reached.
    pub observations: Vec<Observation>,
}

impl AdversaryView {
    /// Extracts the adversary's view from a simulator run.
    ///
    /// Only messages *received by* adversarial nodes are visible; the first
    /// receipt per observer is kept (later duplicates add no information for
    /// the first-spy and centrality estimators).
    pub fn from_metrics(metrics: &Metrics, adversaries: &AdversarySet) -> Self {
        let mut first: BTreeMap<NodeId, &TraceEntry> = BTreeMap::new();
        for entry in &metrics.trace {
            if adversaries.contains(entry.to) && !first.contains_key(&entry.to) {
                first.insert(entry.to, entry);
            }
        }
        let observations = first
            .into_values()
            .map(|entry| Observation {
                observer: entry.to,
                relayed_by: entry.from,
                at: entry.at,
                kind: entry.kind,
            })
            .collect();
        Self { observations }
    }

    /// The earliest observation (the "first spy"), if any adversarial node
    /// was reached at all.
    pub fn first_observation(&self) -> Option<&Observation> {
        self.observations
            .iter()
            .min_by_key(|obs| (obs.at, obs.observer))
    }

    /// Number of adversarial nodes that observed the broadcast.
    pub fn observer_count(&self) -> usize {
        self.observations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_fraction_selects_expected_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let set = AdversarySet::random_fraction(100, 0.2, &[], &mut rng);
        assert_eq!(set.len(), 20);
        assert_eq!(set.network_size(), 100);
        assert!((set.fraction() - 0.2).abs() < 1e-12);
        assert!(!set.is_empty());
    }

    #[test]
    fn protected_nodes_are_never_selected() {
        let mut rng = StdRng::seed_from_u64(2);
        let protected = [NodeId::new(0), NodeId::new(1)];
        for _ in 0..20 {
            let set = AdversarySet::random_fraction(10, 0.8, &protected, &mut rng);
            assert!(!set.contains(NodeId::new(0)));
            assert!(!set.contains(NodeId::new(1)));
            assert!(set.len() <= 8);
        }
    }

    #[test]
    fn fraction_is_clamped() {
        let mut rng = StdRng::seed_from_u64(3);
        let all = AdversarySet::random_fraction(10, 2.0, &[], &mut rng);
        assert_eq!(all.len(), 10);
        let none = AdversarySet::random_fraction(10, -0.5, &[], &mut rng);
        assert!(none.is_empty());
        assert_eq!(none.fraction(), 0.0);
    }

    #[test]
    fn honest_nodes_complement_the_set() {
        let set = AdversarySet::from_nodes(5, [NodeId::new(1), NodeId::new(3)]);
        assert_eq!(
            set.honest_nodes(),
            vec![NodeId::new(0), NodeId::new(2), NodeId::new(4)]
        );
        assert_eq!(set.nodes().count(), 2);
    }

    #[test]
    fn empty_network_edge_case() {
        let set = AdversarySet::from_nodes(0, []);
        assert_eq!(set.fraction(), 0.0);
        assert!(set.honest_nodes().is_empty());
    }

    #[test]
    fn view_keeps_only_first_receipt_per_observer() {
        let mut metrics = Metrics::new(4);
        metrics.trace = vec![
            TraceEntry {
                at: 10,
                from: NodeId::new(0),
                to: NodeId::new(2),
                kind: "flood",
                bytes: 1,
            },
            TraceEntry {
                at: 15,
                from: NodeId::new(1),
                to: NodeId::new(2),
                kind: "flood",
                bytes: 1,
            },
            TraceEntry {
                at: 12,
                from: NodeId::new(0),
                to: NodeId::new(3),
                kind: "flood",
                bytes: 1,
            },
            TraceEntry {
                at: 9,
                from: NodeId::new(0),
                to: NodeId::new(1),
                kind: "flood",
                bytes: 1,
            },
        ];
        let adversaries = AdversarySet::from_nodes(4, [NodeId::new(2), NodeId::new(3)]);
        let view = AdversaryView::from_metrics(&metrics, &adversaries);
        assert_eq!(view.observer_count(), 2);
        let first = view.first_observation().unwrap();
        assert_eq!(first.observer, NodeId::new(2));
        assert_eq!(first.at, 10);
        assert_eq!(first.relayed_by, NodeId::new(0));
    }

    #[test]
    fn view_of_unreached_adversary_is_empty() {
        let metrics = Metrics::new(3);
        let adversaries = AdversarySet::from_nodes(3, [NodeId::new(2)]);
        let view = AdversaryView::from_metrics(&metrics, &adversaries);
        assert_eq!(view.observer_count(), 0);
        assert!(view.first_observation().is_none());
    }
}
