//! The Dandelion baseline (Bojja Venkatakrishnan, Fanti, Viswanath).
//!
//! Dandelion is the topological-privacy baseline the paper contrasts its
//! design against (§III-A, Fig. 3). It disseminates a transaction in two
//! phases:
//!
//! * **Stem phase** — the transaction is relayed along a *line graph* (an
//!   approximation of a Hamiltonian path over all peers): each node forwards
//!   to exactly one successor. After a geometrically distributed number of
//!   hops (or a hop-count limit) the transaction "fluffs".
//! * **Fluff phase** — the node at the end of the stem starts an ordinary
//!   flood-and-prune broadcast.
//!
//! The anonymity comes from the stem: an adversary observing the fluff sees
//! the last stem node, not the originator, and along the stem every honest
//! predecessor is an equally plausible source. To limit topology-learning
//! attacks the line graph is re-randomised every epoch
//! ([`StemLine::rerandomize`]).

use fnp_netsim::{Graph, Metrics, NodeId, Payload, SimConfig, Simulator, TrialArena};
use fnp_proto::{Input, Mailbox, NodeView, ProtocolCore, SimDriver, SteadyProtocol};
use rand::seq::SliceRandom;
use rand::Rng;

/// Wire size reported for both stem and fluff transaction relays.
const TX_BYTES: usize = 256;

/// Messages exchanged by Dandelion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DandelionMessage {
    /// Stem-phase relay: forwarded to a single successor.
    Stem {
        /// Transaction identifier.
        tx_id: u64,
        /// Remaining stem hops before the mandatory fluff.
        remaining_hops: u32,
    },
    /// Fluff-phase relay: ordinary flood-and-prune.
    Fluff {
        /// Transaction identifier.
        tx_id: u64,
    },
}

impl Payload for DandelionMessage {
    fn kind(&self) -> &'static str {
        match self {
            DandelionMessage::Stem { .. } => "dandelion-stem",
            DandelionMessage::Fluff { .. } => "dandelion-fluff",
        }
    }

    fn size_bytes(&self) -> usize {
        TX_BYTES
    }
}

/// The global stem line: a random permutation of all nodes where each node
/// forwards stem transactions to its successor.
///
/// In the real protocol every node picks its stem successor from its own
/// outbound connections; the permutation model used here is the standard
/// analysis abstraction (an approximate Hamiltonian path over the overlay,
/// exactly as the paper describes it) and is re-randomised per epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StemLine {
    successor: Vec<NodeId>,
}

impl StemLine {
    /// Builds a random stem line over `n` nodes.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut order: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        order.shuffle(rng);
        let mut successor = vec![NodeId::new(0); n];
        for window in 0..n {
            let current = order[window];
            let next = order[(window + 1) % n];
            successor[current.index()] = next;
        }
        Self { successor }
    }

    /// Number of nodes covered by the line.
    pub fn len(&self) -> usize {
        self.successor.len()
    }

    /// True if the line covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.successor.is_empty()
    }

    /// The stem successor of `node`.
    pub fn successor(&self, node: NodeId) -> NodeId {
        self.successor[node.index()]
    }

    /// Re-randomises the line (start of a new epoch).
    pub fn rerandomize<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        *self = Self::random(self.successor.len(), rng);
    }

    /// Walks the stem from `origin` for `hops` steps and returns the node
    /// that would start the fluff phase.
    pub fn fluff_node(&self, origin: NodeId, hops: u32) -> NodeId {
        let mut current = origin;
        for _ in 0..hops {
            current = self.successor(current);
        }
        current
    }
}

/// Configuration of the Dandelion run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DandelionParams {
    /// Expected stem length: each stem hop continues with probability
    /// `stem_continue_probability`, otherwise the transaction fluffs.
    pub stem_continue_probability: f64,
    /// Hard upper bound on stem hops (prevents unbounded stems).
    pub max_stem_hops: u32,
}

impl Default for DandelionParams {
    fn default() -> Self {
        Self {
            stem_continue_probability: 0.9,
            max_stem_hops: 20,
        }
    }
}

/// A node executing Dandelion, as a sans-IO [`ProtocolCore`].
///
/// The hot per-event seen flag lives in the driver's
/// [`seen` lane](fnp_proto::HotLanes::seen); this struct keeps only the
/// cold fields (successor, origin/fluff markers) that are read at most
/// once per run.
#[derive(Clone, Debug)]
pub struct DandelionNode {
    params: DandelionParams,
    stem_successor: NodeId,
    origin: bool,
    /// True if this node was the one that switched the broadcast from stem
    /// to fluff (the paper's Fig. 3 node "S").
    fluffed_here: bool,
}

impl DandelionNode {
    /// Creates a node whose stem successor is `stem_successor`.
    pub fn new(params: DandelionParams, stem_successor: NodeId) -> Self {
        Self {
            params,
            stem_successor,
            origin: false,
            fluffed_here: false,
        }
    }

    /// Whether this node originated the broadcast.
    pub fn is_origin(&self) -> bool {
        self.origin
    }

    /// Whether this node started the fluff phase.
    pub fn fluffed_here(&self) -> bool {
        self.fluffed_here
    }

    /// Starts a Dandelion broadcast of `tx_id` from this node.
    pub fn start_broadcast(
        &mut self,
        tx_id: u64,
        view: &mut impl NodeView,
        out: &mut Mailbox<DandelionMessage>,
    ) {
        if view.set_seen() {
            return;
        }
        self.origin = true;
        out.deliver();
        out.record("dandelion-origin");
        self.relay_stem(tx_id, self.params.max_stem_hops, view, out);
    }

    /// Decides whether to continue the stem or fluff, and acts accordingly.
    fn relay_stem(
        &mut self,
        tx_id: u64,
        remaining_hops: u32,
        view: &mut impl NodeView,
        out: &mut Mailbox<DandelionMessage>,
    ) {
        let continue_stem =
            remaining_hops > 0 && view.rng().gen_bool(self.params.stem_continue_probability);
        if continue_stem {
            out.send(
                self.stem_successor,
                DandelionMessage::Stem {
                    tx_id,
                    remaining_hops: remaining_hops - 1,
                },
            );
        } else {
            self.fluffed_here = true;
            out.record("dandelion-fluff-start");
            out.broadcast(DandelionMessage::Fluff { tx_id }, &[]);
        }
    }
}

impl ProtocolCore for DandelionNode {
    type Message = DandelionMessage;

    fn poll<V: NodeView>(
        &mut self,
        input: Input<DandelionMessage>,
        view: &mut V,
        out: &mut Mailbox<DandelionMessage>,
    ) {
        let Input::Message { from, message } = input else {
            return;
        };
        match message {
            DandelionMessage::Stem {
                tx_id,
                remaining_hops,
            } => {
                if view.seen() {
                    // A stem relay that loops back onto a node that has
                    // already seen the transaction fluffs immediately, as in
                    // the reference implementation.
                    out.broadcast(DandelionMessage::Fluff { tx_id }, &[from]);
                    return;
                }
                view.set_seen();
                out.deliver();
                self.relay_stem(tx_id, remaining_hops, view, out);
            }
            DandelionMessage::Fluff { tx_id } => {
                if view.set_seen() {
                    return;
                }
                out.deliver();
                out.broadcast(DandelionMessage::Fluff { tx_id }, &[from]);
            }
        }
    }
}

impl SteadyProtocol for DandelionNode {
    /// A fresh per-transaction instance keeps the node's stem successor:
    /// the stem line is an epoch-level routing decision shared by every
    /// transaction relayed within the epoch.
    fn per_tx_instance(&self) -> Self {
        DandelionNode::new(self.params, self.stem_successor)
    }

    fn start_tx(&mut self, tx: u64, view: &mut impl NodeView, out: &mut Mailbox<DandelionMessage>) {
        self.start_broadcast(tx, view, out);
    }
}

/// Result of one Dandelion broadcast.
#[derive(Clone, Debug)]
pub struct DandelionReport {
    /// Simulator metrics.
    pub metrics: Metrics,
    /// The node that switched from stem to fluff.
    pub fluff_node: Option<NodeId>,
    /// Number of stem-phase relays.
    pub stem_messages: u64,
}

/// Runs one Dandelion broadcast of `tx_id` from `origin` over `graph`,
/// using `line` as the epoch's stem line.
pub fn run_dandelion(
    graph: Graph,
    line: &StemLine,
    origin: NodeId,
    tx_id: u64,
    params: DandelionParams,
    config: SimConfig,
) -> DandelionReport {
    run_dandelion_in(
        &mut TrialArena::new(),
        graph,
        line,
        origin,
        tx_id,
        params,
        config,
    )
}

/// Like [`run_dandelion`], but reuses `arena`'s pooled simulator storage
/// (recycle the report's [`Metrics`] via [`TrialArena::recycle_metrics`]
/// once aggregated).
pub fn run_dandelion_in(
    arena: &mut TrialArena,
    graph: Graph,
    line: &StemLine,
    origin: NodeId,
    tx_id: u64,
    params: DandelionParams,
    config: SimConfig,
) -> DandelionReport {
    assert_eq!(
        graph.node_count(),
        line.len(),
        "stem line must cover exactly the overlay nodes"
    );
    let mut nodes: Vec<SimDriver<DandelionNode>> = arena.take_nodes();
    nodes.extend((0..graph.node_count()).map(|index| {
        SimDriver::new(DandelionNode::new(
            params,
            line.successor(NodeId::new(index)),
        ))
    }));
    let mut sim = Simulator::new_in(arena, graph, nodes, config);
    sim.trigger(origin, |driver, ctx| {
        driver.drive(ctx, |node, view, out| {
            node.start_broadcast(tx_id, view, out)
        });
    });
    sim.run();
    let (nodes, metrics) = sim.into_parts_in(arena);
    let fluff_node = nodes
        .iter()
        .position(|node| node.fluffed_here())
        .map(NodeId::new);
    arena.store_nodes(nodes);
    let stem_messages = metrics.messages_of_kind("dandelion-stem");
    DandelionReport {
        metrics,
        fluff_node,
        stem_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnp_netsim::topology;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (Graph, StemLine) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = topology::random_regular(n, 8, &mut rng).unwrap();
        let line = StemLine::random(n, &mut rng);
        (graph, line)
    }

    #[test]
    fn steady_dandelion_broadcasts_overlap_and_cover() {
        use fnp_proto::steady::{run_steady_in, Arrival};
        let n = 40;
        let (graph, line) = setup(n, 9);
        let prototypes: Vec<DandelionNode> = (0..n)
            .map(|i| DandelionNode::new(DandelionParams::default(), line.successor(NodeId::new(i))))
            .collect();
        let arrivals = [
            Arrival {
                at: 1,
                origin: NodeId::new(2),
            },
            Arrival {
                at: 40,
                origin: NodeId::new(17),
            },
            Arrival {
                at: 90,
                origin: NodeId::new(2),
            },
        ];
        let (_, report) = run_steady_in(
            &mut TrialArena::new(),
            graph,
            prototypes,
            &arrivals,
            &[NodeId::new(30)],
            2,
            SimConfig {
                seed: 9,
                ..SimConfig::default()
            },
        );
        for (tx, outcome) in report.per_tx.iter().enumerate() {
            assert_eq!(outcome.delivered_count, n, "tx {tx} did not cover");
            assert!(outcome.completed_at.is_some(), "tx {tx} never drained");
        }
        assert!(
            report.peak_concurrent >= 2,
            "stems should overlap in flight"
        );
    }

    #[test]
    fn stem_line_is_a_permutation_cycle() {
        let mut rng = StdRng::seed_from_u64(1);
        let line = StemLine::random(50, &mut rng);
        assert_eq!(line.len(), 50);
        assert!(!line.is_empty());
        // Following successors visits every node exactly once before looping.
        let mut visited = std::collections::HashSet::new();
        let mut current = NodeId::new(0);
        for _ in 0..50 {
            assert!(visited.insert(current));
            current = line.successor(current);
        }
        assert_eq!(current, NodeId::new(0));
        assert_eq!(visited.len(), 50);
    }

    #[test]
    fn rerandomize_changes_the_line() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut line = StemLine::random(100, &mut rng);
        let before = line.clone();
        line.rerandomize(&mut rng);
        assert_ne!(before, line);
        assert_eq!(line.len(), 100);
    }

    #[test]
    fn fluff_node_walks_the_line() {
        let mut rng = StdRng::seed_from_u64(3);
        let line = StemLine::random(10, &mut rng);
        let origin = NodeId::new(4);
        assert_eq!(line.fluff_node(origin, 0), origin);
        assert_eq!(line.fluff_node(origin, 1), line.successor(origin));
        assert_eq!(
            line.fluff_node(origin, 2),
            line.successor(line.successor(origin))
        );
    }

    #[test]
    fn dandelion_reaches_every_node() {
        let (graph, line) = setup(300, 4);
        let report = run_dandelion(
            graph,
            &line,
            NodeId::new(17),
            1,
            DandelionParams::default(),
            SimConfig {
                seed: 4,
                ..SimConfig::default()
            },
        );
        assert_eq!(report.metrics.coverage(), 1.0);
        assert!(report.fluff_node.is_some());
    }

    #[test]
    fn stem_phase_produces_a_line_of_relays() {
        let (graph, line) = setup(200, 5);
        let report = run_dandelion(
            graph,
            &line,
            NodeId::new(0),
            1,
            DandelionParams {
                stem_continue_probability: 1.0,
                max_stem_hops: 10,
            },
            SimConfig {
                seed: 5,
                ..SimConfig::default()
            },
        );
        // With continue probability 1.0 the stem runs its full hop budget
        // (unless it loops back onto itself, which 10 hops over 200 nodes
        // will not).
        assert_eq!(report.stem_messages, 10);
        assert_eq!(report.metrics.coverage(), 1.0);
    }

    #[test]
    fn zero_stem_probability_degenerates_to_flooding() {
        let (graph, line) = setup(100, 6);
        let report = run_dandelion(
            graph,
            &line,
            NodeId::new(9),
            1,
            DandelionParams {
                stem_continue_probability: 0.0,
                max_stem_hops: 10,
            },
            SimConfig {
                seed: 6,
                ..SimConfig::default()
            },
        );
        assert_eq!(report.stem_messages, 0);
        assert_eq!(report.fluff_node, Some(NodeId::new(9)));
        assert_eq!(report.metrics.coverage(), 1.0);
    }

    #[test]
    fn fluff_node_is_usually_not_the_origin() {
        let (graph, line) = setup(200, 7);
        let mut not_origin = 0;
        for seed in 0..10u64 {
            let report = run_dandelion(
                graph.clone(),
                &line,
                NodeId::new(3),
                seed,
                DandelionParams::default(),
                SimConfig {
                    seed,
                    ..SimConfig::default()
                },
            );
            if report.fluff_node != Some(NodeId::new(3)) {
                not_origin += 1;
            }
        }
        // With continue probability 0.9 the stem almost always leaves the
        // origin before fluffing.
        assert!(not_origin >= 7, "only {not_origin}/10 runs left the origin");
    }

    #[test]
    fn mismatched_line_size_panics() {
        let (graph, _) = setup(50, 8);
        let mut rng = StdRng::seed_from_u64(8);
        let wrong_line = StemLine::random(10, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_dandelion(
                graph,
                &wrong_line,
                NodeId::new(0),
                1,
                DandelionParams::default(),
                SimConfig::default(),
            )
        }));
        assert!(result.is_err());
    }

    #[test]
    fn message_kinds_are_labelled() {
        assert_eq!(
            DandelionMessage::Stem {
                tx_id: 1,
                remaining_hops: 2
            }
            .kind(),
            "dandelion-stem"
        );
        assert_eq!(
            DandelionMessage::Fluff { tx_id: 1 }.kind(),
            "dandelion-fluff"
        );
        assert_eq!(DandelionMessage::Fluff { tx_id: 1 }.size_bytes(), 256);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_dandelion_always_delivers(
            n in 20usize..120,
            origin in 0usize..120,
            seed in any::<u64>(),
            continue_probability in 0.0f64..1.0,
        ) {
            let n = if n % 2 == 1 { n + 1 } else { n };
            let (graph, line) = {
                let mut rng = StdRng::seed_from_u64(seed);
                let graph = topology::random_regular(n, 6, &mut rng).unwrap();
                let line = StemLine::random(n, &mut rng);
                (graph, line)
            };
            let report = run_dandelion(
                graph,
                &line,
                NodeId::new(origin % n),
                1,
                DandelionParams { stem_continue_probability: continue_probability, max_stem_hops: 15 },
                SimConfig { seed, ..SimConfig::default() },
            );
            prop_assert_eq!(report.metrics.coverage(), 1.0);
        }
    }
}
