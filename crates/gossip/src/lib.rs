//! # fnp-gossip — flood-and-prune and Dandelion dissemination
//!
//! Two of the dissemination strategies the paper builds on and compares
//! against:
//!
//! * [`flood`] — plain flood-and-prune broadcast: the Bitcoin baseline, the
//!   paper's phase 3, and the mechanism whose propagation symmetry makes
//!   originators easy to deanonymise (Fig. 2, experiment E2).
//! * [`dandelion`] — the Dandelion stem/fluff baseline (§III-A, Fig. 3,
//!   experiment E3): a line-graph stem phase followed by an ordinary fluff
//!   broadcast, with per-epoch re-randomisation of the stem line.
//!
//! Both are implemented as sans-IO [`fnp_proto::ProtocolCore`] state
//! machines (driven in the simulator through [`fnp_proto::SimDriver`])
//! plus one-call runners used by the experiment harness.
//!
//! # Example
//!
//! ```
//! use fnp_gossip::{run_flood, run_dandelion, DandelionParams, StemLine};
//! use fnp_netsim::{topology, NodeId, SimConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let graph = topology::random_regular(100, 8, &mut rng)?;
//!
//! let flood = run_flood(graph.clone(), NodeId::new(0), 1, SimConfig::default());
//! assert_eq!(flood.coverage(), 1.0);
//!
//! let line = StemLine::random(100, &mut rng);
//! let dandelion = run_dandelion(
//!     graph, &line, NodeId::new(0), 1, DandelionParams::default(), SimConfig::default(),
//! );
//! assert_eq!(dandelion.metrics.coverage(), 1.0);
//! # Ok::<(), fnp_netsim::GenerateTopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dandelion;
pub mod flood;

pub use dandelion::{
    run_dandelion, run_dandelion_in, DandelionMessage, DandelionNode, DandelionParams,
    DandelionReport, StemLine,
};
pub use flood::{run_flood, run_flood_in, FloodMessage, FloodNode};

#[cfg(test)]
mod tests {
    use super::*;
    use fnp_netsim::{topology, NodeId, SimConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Dandelion pays a latency and (slight) message premium over flooding
    /// but both deliver everywhere — the efficiency end of the paper's
    /// privacy–performance landscape (experiment E1/E10).
    #[test]
    fn dandelion_and_flood_both_deliver_but_dandelion_is_slower() {
        let mut rng = StdRng::seed_from_u64(10);
        let graph = topology::random_regular(300, 8, &mut rng).unwrap();
        let line = StemLine::random(300, &mut rng);

        let flood = run_flood(
            graph.clone(),
            NodeId::new(0),
            1,
            SimConfig {
                seed: 1,
                ..SimConfig::default()
            },
        );
        let dandelion = run_dandelion(
            graph,
            &line,
            NodeId::new(0),
            1,
            DandelionParams::default(),
            SimConfig {
                seed: 1,
                ..SimConfig::default()
            },
        );

        assert_eq!(flood.coverage(), 1.0);
        assert_eq!(dandelion.metrics.coverage(), 1.0);

        let flood_full = flood.time_to_coverage(1.0).unwrap();
        let dandelion_full = dandelion.metrics.time_to_coverage(1.0).unwrap();
        // The stem phase strictly delays full coverage.
        assert!(dandelion_full > flood_full);
    }
}
