//! Flood-and-prune broadcast.
//!
//! This is the baseline dissemination mechanism of Bitcoin-like networks
//! and phase 3 of the flexible broadcast protocol: on first receipt of a
//! transaction a node forwards it to every neighbour except the one it came
//! from; repeated receipts are pruned (ignored). It reaches every node of a
//! connected overlay with roughly `2·|E| − (n − 1)` transmissions and the
//! lowest possible latency, but its propagation symmetry is exactly what
//! the deanonymisation attacks of Biryukov et al. exploit (the paper's
//! Fig. 2 and experiment E2).

use fnp_netsim::{Graph, Metrics, NodeId, Payload, SimConfig, Simulator, TrialArena};
use fnp_proto::{Input, Mailbox, NodeView, ProtocolCore, SimDriver, SteadyProtocol};

/// Wire size reported for a flooded transaction.
const TX_BYTES: usize = 256;

/// The flooded message: a transaction identifier.
///
/// Simulations broadcast one transaction at a time, so the identifier is
/// only used to keep the message self-describing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FloodMessage {
    /// Identifier of the transaction being broadcast.
    pub tx_id: u64,
}

impl Payload for FloodMessage {
    fn kind(&self) -> &'static str {
        "flood"
    }

    fn size_bytes(&self) -> usize {
        TX_BYTES
    }
}

/// A node executing flood-and-prune, as a sans-IO [`ProtocolCore`].
///
/// The per-event "have I relayed this already?" flag lives in the driver's
/// hot [`seen` lane](fnp_proto::HotLanes::seen) (struct-of-arrays storage
/// under the simulator), not in this struct — the struct only keeps the
/// cold origin marker.
#[derive(Clone, Debug, Default)]
pub struct FloodNode {
    origin: bool,
}

impl FloodNode {
    /// Creates an idle node.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this node originated the broadcast.
    pub fn is_origin(&self) -> bool {
        self.origin
    }

    /// Starts a broadcast of transaction `tx_id` from this node. Under the
    /// simulator, call via [`Simulator::trigger`] +
    /// [`SimDriver::drive`] on the origin.
    pub fn start_broadcast(
        &mut self,
        tx_id: u64,
        view: &mut impl NodeView,
        out: &mut Mailbox<FloodMessage>,
    ) {
        if view.set_seen() {
            return;
        }
        self.origin = true;
        out.deliver();
        out.broadcast(FloodMessage { tx_id }, &[]);
    }
}

impl ProtocolCore for FloodNode {
    type Message = FloodMessage;

    fn poll<V: NodeView>(
        &mut self,
        input: Input<FloodMessage>,
        view: &mut V,
        out: &mut Mailbox<FloodMessage>,
    ) {
        let Input::Message { from, message } = input else {
            return;
        };
        if view.set_seen() {
            // Prune: we have already relayed this transaction.
            return;
        }
        out.deliver();
        out.broadcast(message, &[from]);
    }
}

impl SteadyProtocol for FloodNode {
    fn per_tx_instance(&self) -> Self {
        FloodNode::new()
    }

    fn start_tx(&mut self, tx: u64, view: &mut impl NodeView, out: &mut Mailbox<FloodMessage>) {
        self.start_broadcast(tx, view, out);
    }
}

/// Runs one flood-and-prune broadcast of `tx_id` from `origin` over `graph`
/// and returns the collected metrics.
pub fn run_flood(graph: Graph, origin: NodeId, tx_id: u64, config: SimConfig) -> Metrics {
    run_flood_in(&mut TrialArena::new(), graph, origin, tx_id, config)
}

/// Like [`run_flood`], but reuses `arena`'s pooled simulator storage and
/// returns it there afterwards (recycle the returned [`Metrics`] via
/// [`TrialArena::recycle_metrics`] once aggregated).
pub fn run_flood_in(
    arena: &mut TrialArena,
    graph: Graph,
    origin: NodeId,
    tx_id: u64,
    config: SimConfig,
) -> Metrics {
    let mut nodes: Vec<SimDriver<FloodNode>> = arena.take_nodes();
    nodes.extend((0..graph.node_count()).map(|_| SimDriver::new(FloodNode::new())));
    let mut sim = Simulator::new_in(arena, graph, nodes, config);
    sim.trigger(origin, |driver, ctx| {
        driver.drive(ctx, |node, view, out| {
            node.start_broadcast(tx_id, view, out)
        });
    });
    sim.run();
    let (nodes, metrics) = sim.into_parts_in(arena);
    arena.store_nodes(nodes);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnp_netsim::topology;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flood_reaches_every_node() {
        let mut rng = StdRng::seed_from_u64(1);
        let graph = topology::random_regular(200, 8, &mut rng).unwrap();
        let edges = graph.edge_count() as u64;
        let metrics = run_flood(graph, NodeId::new(0), 7, SimConfig::default());
        assert_eq!(metrics.coverage(), 1.0);
        // Every node forwards once to all-but-one neighbour: the total is
        // bounded by 2|E| and must be at least n − 1.
        assert!(metrics.messages_sent <= 2 * edges);
        assert!(metrics.messages_sent >= 199);
    }

    #[test]
    fn message_count_close_to_two_e_minus_n() {
        // On an 8-regular graph of 1 000 nodes the paper's baseline costs
        // ≈7 000 messages; the analytic value is 2|E| − (n − 1) = 7 001.
        let mut rng = StdRng::seed_from_u64(2);
        let graph = topology::random_regular(1000, 8, &mut rng).unwrap();
        let expected = 2 * graph.edge_count() as u64 - 999;
        let metrics = run_flood(graph, NodeId::new(3), 1, SimConfig::default());
        assert_eq!(metrics.coverage(), 1.0);
        let diff = metrics.messages_sent.abs_diff(expected);
        // Concurrent cross-edges can add a handful of duplicate sends.
        assert!(
            diff <= expected / 10,
            "sent {} expected ≈{}",
            metrics.messages_sent,
            expected
        );
    }

    #[test]
    fn only_flood_kind_messages_are_sent() {
        let graph = topology::ring(10).unwrap();
        let metrics = run_flood(graph, NodeId::new(0), 1, SimConfig::default());
        assert_eq!(metrics.messages_by_kind().len(), 1);
        assert!(metrics.messages_of_kind("flood") > 0);
        assert_eq!(metrics.bytes_sent, metrics.messages_sent * 256);
    }

    #[test]
    fn origin_is_marked() {
        let graph = topology::line(3).unwrap();
        let nodes = (0..3).map(|_| SimDriver::new(FloodNode::new())).collect();
        let mut sim = Simulator::new(graph, nodes, SimConfig::default());
        sim.trigger(NodeId::new(1), |driver, ctx| {
            driver.drive(ctx, |node, view, out| node.start_broadcast(9, view, out));
        });
        sim.run();
        assert!(sim.node(NodeId::new(1)).is_origin());
        assert!(!sim.node(NodeId::new(0)).is_origin());
        // The seen flag lives in the simulator's hot lanes.
        assert!(sim.hot().seen(NodeId::new(0)));
        assert_eq!(sim.hot().seen_count(), 3);
    }

    #[test]
    fn arena_reuse_is_invisible_in_the_metrics() {
        let overlay = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            topology::random_regular(50, 4, &mut rng).unwrap()
        };
        let config = |seed| SimConfig {
            seed,
            record_trace: true,
            ..SimConfig::default()
        };
        // Trials A then B through one reused arena…
        let mut arena = TrialArena::new();
        let a_reused = run_flood_in(&mut arena, overlay(1), NodeId::new(0), 1, config(1));
        arena.recycle_metrics(a_reused);
        let b_reused = run_flood_in(&mut arena, overlay(2), NodeId::new(3), 2, config(2));
        // …must match trial B through a fresh arena, byte for byte.
        let b_fresh = run_flood(overlay(2), NodeId::new(3), 2, config(2));
        assert_eq!(format!("{b_reused:?}"), format!("{b_fresh:?}"));
    }

    #[test]
    fn double_start_is_idempotent() {
        let graph = topology::line(2).unwrap();
        let nodes = (0..2).map(|_| SimDriver::new(FloodNode::new())).collect();
        let mut sim = Simulator::new(graph, nodes, SimConfig::default());
        sim.trigger(NodeId::new(0), |driver, ctx| {
            driver.drive(ctx, |node, view, out| {
                node.start_broadcast(1, view, out);
                node.start_broadcast(1, view, out);
            });
        });
        let metrics = sim.run();
        // Node 0 sends once to node 1; node 1 has no other neighbour to
        // forward to, so exactly one message crosses the wire.
        assert_eq!(metrics.messages_of_kind("flood"), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_flood_covers_any_connected_topology(
            n in 3usize..60,
            origin in 0usize..60,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = topology::erdos_renyi(n, 0.3, &mut rng)
                .or_else(|_| topology::ring(n))
                .unwrap();
            let metrics = run_flood(
                graph,
                NodeId::new(origin % n),
                42,
                SimConfig { seed, ..SimConfig::default() },
            );
            prop_assert_eq!(metrics.coverage(), 1.0);
        }
    }
}
