//! # fnp-crypto — cryptographic substrate for the flexible privacy broadcast
//!
//! This crate implements, from scratch and without external cryptographic
//! dependencies, every primitive required by the reproduction of
//! *"A Flexible Network Approach to Privacy of Blockchain Transactions"*
//! (Mödinger, Kopp, Kargl, Hauck — ICDCS 2018):
//!
//! * [`sha256`] — the hash used to fingerprint node identities and
//!   transactions, and to perform the verifiable virtual-source election at
//!   the phase 1 → phase 2 transition.
//! * [`hmac`] / [`hkdf`] — key derivation for the pairwise DC-net channels.
//! * [`chacha20`] — the stream cipher realising pairwise encrypted channels
//!   and the pseudorandom pads of the dining-cryptographers rounds.
//! * [`mod@crc32`] — the collision-detection checksum the paper attaches to
//!   DC-net slots (Fig. 4) and length announcements (§V-A).
//! * [`dh`] — finite-field Diffie–Hellman key agreement establishing the
//!   pairwise secrets (simulation-strength parameters; see the module docs).
//! * [`identity`] — node identities, the XOR hash-distance metric and the
//!   deterministic virtual-source election.
//! * [`prg`] — XOR share splitting (Fig. 4 step 1) and deterministic
//!   pad schedules for the pad-based DC-net variant.
//! * [`hex`] — encoding helpers for fingerprints and test vectors.
//!
//! All primitives are validated against official test vectors (FIPS 180-4,
//! RFC 4231, RFC 5869, RFC 8439, CRC-32/ISO-HDLC) in their unit tests.
//!
//! # Quick example: establishing a DC-net pad between two nodes
//!
//! ```
//! use fnp_crypto::{dh::KeyPair, dh::pairwise_pad_key, prg::PadGenerator};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let alice = KeyPair::generate(&mut rng);
//! let bob = KeyPair::generate(&mut rng);
//!
//! // Both sides derive the same symmetric key and therefore the same pads.
//! let key_a = pairwise_pad_key(&alice, &bob.public_key());
//! let key_b = pairwise_pad_key(&bob, &alice.public_key());
//! assert_eq!(key_a, key_b);
//!
//! let round = 3;
//! let pad_a = PadGenerator::new(key_a).pad(round, 64);
//! let pad_b = PadGenerator::new(key_b).pad(round, 64);
//! assert_eq!(pad_a, pad_b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Keystream generation and digest packing cast between integer widths on
// hot paths; every remaining cast site must either be provably lossless or
// carry an explicit allow with the reason.
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::cast_sign_loss)]

pub mod chacha20;
pub mod crc32;
pub mod dh;
pub mod hex;
pub mod hkdf;
pub mod hmac;
pub mod identity;
pub mod prg;
pub mod sha256;

pub use chacha20::ChaCha20;
pub use crc32::{crc32, Crc32};
pub use dh::{pairwise_pad_key, KeyPair, PublicKey};
pub use hkdf::{hkdf_sha256, Hkdf};
pub use hmac::{hmac_sha256, HmacSha256};
pub use identity::{elect_virtual_source, elect_virtual_source_index, hash_distance, Identity};
pub use prg::{combine_shares, random_shares, xor, xor_into, PadGenerator};
pub use sha256::Sha256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Sha256>();
        assert_send_sync::<ChaCha20>();
        assert_send_sync::<Crc32>();
        assert_send_sync::<KeyPair>();
        assert_send_sync::<PublicKey>();
        assert_send_sync::<Identity>();
        assert_send_sync::<PadGenerator>();
        assert_send_sync::<Hkdf>();
        assert_send_sync::<HmacSha256>();
    }

    #[test]
    fn end_to_end_pad_cancellation() {
        // Three nodes, pairwise keys, one sender: the XOR of everything each
        // node transmits equals the sender's message — the core DC-net
        // property the higher layers rely on.
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(99);
        let keys: Vec<KeyPair> = (0..3).map(|_| KeyPair::generate(&mut rng)).collect();
        let message = b"pay 5 tokens to carol".to_vec();
        let slot = message.len();
        let round = 1;

        let mut transmissions = Vec::new();
        for i in 0..3 {
            let mut contribution = vec![0u8; slot];
            if i == 0 {
                contribution.copy_from_slice(&message);
            }
            for j in 0..3 {
                if i == j {
                    continue;
                }
                let key = pairwise_pad_key(&keys[i], &keys[j].public_key());
                let pad = PadGenerator::new(key).pad(round, slot);
                xor_into(&mut contribution, &pad);
            }
            transmissions.push(contribution);
        }

        let recovered = combine_shares(transmissions.iter().map(|t| t.as_slice()));
        assert_eq!(recovered, message);
    }
}
