//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! HMAC keys the SHA-256 compression behind the pairwise pad derivation of
//! the DC-net phase: two group members who have agreed on a shared secret
//! (see [`crate::dh`]) expand it into per-round pads with
//! [`crate::hkdf`], which is built on this module.
//!
//! # Examples
//!
//! ```
//! use fnp_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
//! assert_eq!(
//!     fnp_crypto::hex::encode(&tag),
//!     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
//! );
//! ```

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Incremental HMAC-SHA-256 computation.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Key XORed with `OPAD`, retained for the outer hash at finalisation.
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a new MAC instance keyed with `key`.
    ///
    /// Keys longer than the SHA-256 block size are hashed first, as mandated
    /// by RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha256::digest(key);
            block_key[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut inner_key = [0u8; BLOCK_LEN];
        let mut outer_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            inner_key[i] = block_key[i] ^ IPAD;
            outer_key[i] = block_key[i] ^ OPAD;
        }

        let mut inner = Sha256::new();
        inner.update(&inner_key);
        Self { inner, outer_key }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the computation and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Constant-time comparison of two byte strings.
///
/// Returns `true` iff the inputs have equal length and equal contents. The
/// comparison does not short-circuit on the first mismatching byte, so the
/// running time leaks only the length of the inputs.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test vectors for HMAC-SHA-256.

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_short_key() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_repeated_bytes() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex::encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let key = b"pairwise-secret";
        let message = b"round 42 pad derivation input";
        let expected = hmac_sha256(key, message);

        let mut mac = HmacSha256::new(key);
        for chunk in message.chunks(5) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), expected);
    }

    #[test]
    fn different_keys_give_different_tags() {
        assert_ne!(hmac_sha256(b"key-a", b"msg"), hmac_sha256(b"key-b", b"msg"));
    }

    #[test]
    fn constant_time_eq_basic() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"abcd"));
        assert!(constant_time_eq(b"", b""));
    }
}
