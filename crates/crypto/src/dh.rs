//! Diffie–Hellman key agreement over a prime-order multiplicative group.
//!
//! The paper's DC-net phase presumes that "all nodes need to share pairwise
//! encrypted channels". In the simulator we establish those channels with a
//! textbook finite-field Diffie–Hellman exchange: each node publishes a
//! public key `g^x mod p`, and any pair derives the shared secret
//! `g^{xy} mod p`, which is then fed through [`crate::hkdf`] to obtain
//! symmetric keys for [`crate::chacha20`].
//!
//! The group is the multiplicative group modulo a verified 62-bit safe
//! prime. **This parameter size is a deliberate simulation substitution**
//! (documented in `DESIGN.md`): the protocol logic — who shares a pad with
//! whom, and that pads cancel — is completely independent of the group
//! size, and 62-bit arithmetic keeps multi-thousand-node simulations cheap.
//! Do not reuse this module for real deployments.
//!
//! # Examples
//!
//! ```
//! use fnp_crypto::dh::KeyPair;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let alice = KeyPair::generate(&mut rng);
//! let bob = KeyPair::generate(&mut rng);
//! assert_eq!(
//!     alice.shared_secret(&bob.public_key()),
//!     bob.shared_secret(&alice.public_key()),
//! );
//! ```

use rand::Rng;
use std::fmt;

/// The group modulus: a safe prime (`p = 2q + 1` with `q` prime) that fits
/// in 62 bits so that products fit in `u128`.
///
/// `p = 2^62 - 10565`; both `p` and `q = (p - 1) / 2` pass a deterministic
/// Miller–Rabin test over the full 64-bit witness set (checked by the unit
/// tests below).
pub const MODULUS: u64 = 4_611_686_018_427_377_339; // 2^62 - 10565

/// A generator of the prime-order subgroup of size `(MODULUS - 1) / 2`.
pub const GENERATOR: u64 = 5;

/// A Diffie–Hellman public key (`g^x mod p`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub u64);

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({:#018x})", self.0)
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// A Diffie–Hellman key pair.
///
/// The secret exponent is kept private; `Debug` redacts it.
#[derive(Clone)]
pub struct KeyPair {
    secret: u64,
    public: PublicKey,
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KeyPair")
            .field("secret", &"<redacted>")
            .field("public", &self.public)
            .finish()
    }
}

/// Modular multiplication via 128-bit intermediates.
#[inline]
#[allow(clippy::cast_possible_truncation)] // the % reduces below the u64 modulus
fn mul_mod(a: u64, b: u64, modulus: u64) -> u64 {
    ((a as u128 * b as u128) % modulus as u128) as u64
}

/// Modular exponentiation by repeated squaring.
pub fn pow_mod(mut base: u64, mut exponent: u64, modulus: u64) -> u64 {
    if modulus == 1 {
        return 0;
    }
    let mut result = 1u64;
    base %= modulus;
    while exponent > 0 {
        if exponent & 1 == 1 {
            result = mul_mod(result, base, modulus);
        }
        base = mul_mod(base, base, modulus);
        exponent >>= 1;
    }
    result
}

/// Deterministic Miller–Rabin primality test, exact for all `u64` inputs
/// when run with the standard 12-base witness set.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n % p == 0 {
            return false;
        }
    }
    // Write n - 1 = d * 2^r with d odd.
    let mut d = n - 1;
    let mut r = 0u32;
    while d % 2 == 0 {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

impl KeyPair {
    /// Generates a fresh key pair using `rng`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Secret exponents in [2, q) where q = (p - 1) / 2.
        let q = (MODULUS - 1) / 2;
        let secret = rng.gen_range(2..q);
        Self::from_secret(secret)
    }

    /// Builds a key pair from an explicit secret exponent.
    ///
    /// Exposed so that simulations can derive node keys deterministically
    /// from node identifiers; panics are avoided by reducing degenerate
    /// exponents into the valid range.
    pub fn from_secret(secret: u64) -> Self {
        let q = (MODULUS - 1) / 2;
        let secret = 2 + (secret % (q - 2));
        let public = PublicKey(pow_mod(GENERATOR, secret, MODULUS));
        Self { secret, public }
    }

    /// Returns the public half of the key pair.
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// Computes the shared secret with a peer's public key, returned as a
    /// 32-byte value suitable as HKDF input keying material.
    ///
    /// The raw group element is domain-separated and hashed so that the
    /// output is uniformly distributed regardless of group structure.
    pub fn shared_secret(&self, peer: &PublicKey) -> [u8; 32] {
        let element = pow_mod(peer.0, self.secret, MODULUS);
        crate::sha256::Sha256::digest_chunks([
            b"fnp/dh/shared-secret/v1".as_slice(),
            &element.to_le_bytes(),
        ])
    }
}

/// Derives the symmetric pad key both endpoints of a pair agree on.
///
/// The key is symmetric in the two public keys (sorted before hashing), so
/// both sides derive the identical key regardless of who initiates.
pub fn pairwise_pad_key(own: &KeyPair, peer: &PublicKey) -> [u8; 32] {
    let shared = own.shared_secret(peer);
    let (lo, hi) = if own.public_key().0 <= peer.0 {
        (own.public_key().0, peer.0)
    } else {
        (peer.0, own.public_key().0)
    };
    let hkdf = crate::hkdf::Hkdf::extract(Some(b"fnp/dcnet/pad-key"), &shared);
    let mut info = Vec::with_capacity(16);
    info.extend_from_slice(&lo.to_le_bytes());
    info.extend_from_slice(&hi.to_le_bytes());
    hkdf.derive_key::<32>(&info)
        .expect("32-byte output is within HKDF limits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn modulus_is_a_safe_prime() {
        assert!(is_prime(MODULUS), "p must be prime");
        assert!(is_prime((MODULUS - 1) / 2), "q = (p-1)/2 must be prime");
    }

    #[test]
    fn generator_has_large_order() {
        // g must not be of order 1 or 2: g^2 != 1.
        assert_ne!(pow_mod(GENERATOR, 2, MODULUS), 1);
        // And its order divides p - 1, so g^(p-1) == 1 (Fermat).
        assert_eq!(pow_mod(GENERATOR, MODULUS - 1, MODULUS), 1);
    }

    #[test]
    fn pow_mod_edge_cases() {
        assert_eq!(pow_mod(2, 10, u64::MAX), 1024);
        assert_eq!(pow_mod(0, 0, 7), 1);
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(5, 1, 7), 5);
        assert_eq!(pow_mod(123, 456, 1), 0);
    }

    #[test]
    fn is_prime_small_values() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 7919];
        let composites = [0u64, 1, 4, 6, 9, 15, 91, 7917];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn is_prime_large_values() {
        assert!(is_prime(2_305_843_009_213_693_951)); // 2^61 - 1 (Mersenne)
        assert!(!is_prime(2_305_843_009_213_693_953));
        assert!(is_prime(18_446_744_073_709_551_557)); // largest 64-bit prime
    }

    #[test]
    fn key_agreement_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let a = KeyPair::generate(&mut rng);
            let b = KeyPair::generate(&mut rng);
            assert_eq!(
                a.shared_secret(&b.public_key()),
                b.shared_secret(&a.public_key())
            );
        }
    }

    #[test]
    fn distinct_pairs_share_distinct_secrets() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        let c = KeyPair::generate(&mut rng);
        assert_ne!(
            a.shared_secret(&b.public_key()),
            a.shared_secret(&c.public_key())
        );
    }

    #[test]
    fn pairwise_pad_key_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_eq!(
            pairwise_pad_key(&a, &b.public_key()),
            pairwise_pad_key(&b, &a.public_key())
        );
    }

    #[test]
    fn deterministic_keypair_from_secret() {
        let a = KeyPair::from_secret(424242);
        let b = KeyPair::from_secret(424242);
        assert_eq!(a.public_key(), b.public_key());
    }

    #[test]
    fn debug_redacts_secret() {
        let kp = KeyPair::from_secret(99);
        let debug = format!("{kp:?}");
        assert!(debug.contains("redacted"));
        assert!(!debug.contains("99,"));
    }

    #[test]
    fn public_key_display_is_hex() {
        let kp = KeyPair::from_secret(3);
        assert!(format!("{}", kp.public_key()).starts_with("0x"));
    }
}
