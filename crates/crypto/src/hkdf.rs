//! HKDF (RFC 5869), the HMAC-based extract-and-expand key derivation
//! function, instantiated with HMAC-SHA-256.
//!
//! In the DC-net phase each pair of group members derives per-round pad
//! keys and per-round nonces from their shared Diffie–Hellman secret; HKDF
//! performs that derivation with explicit domain separation via the `info`
//! parameter (e.g. `"fnp/dcnet/pad" || round`).
//!
//! # Examples
//!
//! ```
//! use fnp_crypto::hkdf::Hkdf;
//!
//! let shared_secret = [7u8; 32];
//! let hkdf = Hkdf::extract(Some(b"fnp-salt"), &shared_secret);
//! let mut pad_key = [0u8; 32];
//! hkdf.expand(b"fnp/dcnet/pad/round-0", &mut pad_key).unwrap();
//! ```

use crate::hmac::{hmac_sha256, HmacSha256};
use crate::sha256::DIGEST_LEN;
use std::fmt;

/// Maximum output length HKDF-SHA-256 can produce: `255 * HashLen`.
pub const MAX_OUTPUT_LEN: usize = 255 * DIGEST_LEN;

/// Error returned when the requested HKDF output is longer than allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLengthError {
    /// The requested output length.
    pub requested: usize,
}

impl fmt::Display for InvalidLengthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested hkdf output of {} bytes exceeds the maximum of {} bytes",
            self.requested, MAX_OUTPUT_LEN
        )
    }
}

impl std::error::Error for InvalidLengthError {}

/// An HKDF instance holding an extracted pseudorandom key.
#[derive(Clone)]
pub struct Hkdf {
    prk: [u8; DIGEST_LEN],
}

impl fmt::Debug for Hkdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        f.debug_struct("Hkdf").field("prk", &"<redacted>").finish()
    }
}

impl Hkdf {
    /// HKDF-Extract: derives a pseudorandom key from input keying material.
    ///
    /// A missing salt is treated as a string of `HashLen` zero bytes, per
    /// RFC 5869.
    pub fn extract(salt: Option<&[u8]>, ikm: &[u8]) -> Self {
        let zero_salt = [0u8; DIGEST_LEN];
        let salt = salt.unwrap_or(&zero_salt);
        let prk = hmac_sha256(salt, ikm);
        Self { prk }
    }

    /// Constructs an HKDF instance directly from a pseudorandom key, skipping
    /// the extract step (RFC 5869 §3.3).
    pub fn from_prk(prk: [u8; DIGEST_LEN]) -> Self {
        Self { prk }
    }

    /// HKDF-Expand: fills `okm` with output keying material bound to `info`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLengthError`] if `okm.len() > 255 * 32`.
    pub fn expand(&self, info: &[u8], okm: &mut [u8]) -> Result<(), InvalidLengthError> {
        if okm.len() > MAX_OUTPUT_LEN {
            return Err(InvalidLengthError {
                requested: okm.len(),
            });
        }
        let mut previous: Option<[u8; DIGEST_LEN]> = None;
        let mut written = 0usize;
        let mut counter = 1u8;
        while written < okm.len() {
            let mut mac = HmacSha256::new(&self.prk);
            if let Some(prev) = previous {
                mac.update(&prev);
            }
            mac.update(info);
            mac.update(&[counter]);
            let block = mac.finalize();
            let take = (okm.len() - written).min(DIGEST_LEN);
            okm[written..written + take].copy_from_slice(&block[..take]);
            written += take;
            previous = Some(block);
            counter = counter.wrapping_add(1);
        }
        Ok(())
    }

    /// Convenience helper returning a fixed-size derived key.
    pub fn derive_key<const N: usize>(&self, info: &[u8]) -> Result<[u8; N], InvalidLengthError> {
        let mut out = [0u8; N];
        self.expand(info, &mut out)?;
        Ok(out)
    }
}

/// One-shot HKDF: extract with `salt` and `ikm`, then expand `len` bytes
/// bound to `info`.
///
/// # Errors
///
/// Returns [`InvalidLengthError`] if `len > 255 * 32`.
pub fn hkdf_sha256(
    salt: Option<&[u8]>,
    ikm: &[u8],
    info: &[u8],
    len: usize,
) -> Result<Vec<u8>, InvalidLengthError> {
    let mut out = vec![0u8; len];
    Hkdf::extract(salt, ikm).expand(info, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 5869 test vectors (SHA-256).

    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let okm = hkdf_sha256(Some(&salt), &ikm, &info, 42).unwrap();
        assert_eq!(
            hex::encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_2_long_inputs() {
        let ikm: Vec<u8> = (0x00u8..=0x4f).collect();
        let salt: Vec<u8> = (0x60u8..=0xaf).collect();
        let info: Vec<u8> = (0xb0u8..=0xff).collect();
        let okm = hkdf_sha256(Some(&salt), &ikm, &info, 82).unwrap();
        assert_eq!(
            hex::encode(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    #[test]
    fn rfc5869_case_3_no_salt_no_info() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf_sha256(None, &ikm, b"", 42).unwrap();
        assert_eq!(
            hex::encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_rejects_oversized_output() {
        let hkdf = Hkdf::extract(None, b"ikm");
        let mut okm = vec![0u8; MAX_OUTPUT_LEN + 1];
        assert!(hkdf.expand(b"info", &mut okm).is_err());
    }

    #[test]
    fn expand_accepts_maximum_output() {
        let hkdf = Hkdf::extract(None, b"ikm");
        let mut okm = vec![0u8; MAX_OUTPUT_LEN];
        assert!(hkdf.expand(b"info", &mut okm).is_ok());
    }

    #[test]
    fn different_info_separates_domains() {
        let hkdf = Hkdf::extract(Some(b"salt"), b"shared-secret");
        let a: [u8; 32] = hkdf.derive_key(b"fnp/dcnet/pad").unwrap();
        let b: [u8; 32] = hkdf.derive_key(b"fnp/dcnet/nonce").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn from_prk_matches_extract_then_expand() {
        let prk = hmac_sha256(b"salt", b"ikm");
        let a = Hkdf::from_prk(prk);
        let b = Hkdf::extract(Some(b"salt"), b"ikm");
        let ka: [u8; 16] = a.derive_key(b"x").unwrap();
        let kb: [u8; 16] = b.derive_key(b"x").unwrap();
        assert_eq!(ka, kb);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let hkdf = Hkdf::extract(None, b"very secret");
        assert!(!format!("{hkdf:?}").contains("secret"));
        assert!(format!("{hkdf:?}").contains("redacted"));
    }

    #[test]
    fn invalid_length_error_display() {
        let err = InvalidLengthError { requested: 9000 };
        assert!(err.to_string().contains("9000"));
    }
}
