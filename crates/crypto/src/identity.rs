//! Node identities and the hash-distance metric used for the verifiable,
//! message-free virtual-source election.
//!
//! The paper's phase 1 → phase 2 transition rule is:
//!
//! > the node whose hashed identity, e.g., public key, is closest to the
//! > hash of the message creates the initial virtual source token
//!
//! This module defines [`Identity`] (a node's public identity string plus
//! its SHA-256 fingerprint) and [`hash_distance`], the XOR metric comparing
//! a fingerprint to a message digest. [`elect_virtual_source`] applies the
//! rule over a whole group; every group member computes the same winner from
//! public information only, which is what makes the transition verifiable
//! without extra messages.
//!
//! # Examples
//!
//! ```
//! use fnp_crypto::identity::{elect_virtual_source, Identity};
//! use fnp_crypto::sha256::Sha256;
//!
//! let group: Vec<Identity> = (0..5).map(Identity::from_node_index).collect();
//! let message_digest = Sha256::digest(b"tx: alice pays bob 3");
//! let winner = elect_virtual_source(&group, &message_digest).unwrap();
//! // Every honest member recomputes the same winner.
//! assert_eq!(winner, elect_virtual_source(&group, &message_digest).unwrap());
//! ```

use crate::sha256::{Sha256, DIGEST_LEN};
use std::fmt;

/// A node identity: an opaque public identifier together with its SHA-256
/// fingerprint.
///
/// In a deployment the identifier would be the node's long-term public key;
/// in the simulator it is derived from the node index, which keeps
/// experiments deterministic while exercising exactly the same election
/// logic.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Identity {
    /// The public identifier bytes (e.g. an encoded public key).
    id: Vec<u8>,
    /// SHA-256 fingerprint of `id`.
    fingerprint: [u8; DIGEST_LEN],
}

impl fmt::Debug for Identity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Identity({}…)",
            crate::hex::encode(&self.fingerprint[..4])
        )
    }
}

impl Identity {
    /// Creates an identity from raw public identifier bytes.
    pub fn new(id: impl Into<Vec<u8>>) -> Self {
        let id = id.into();
        let fingerprint = Sha256::digest_chunks([b"fnp/identity/v1".as_slice(), &id]);
        Self { id, fingerprint }
    }

    /// Creates an identity deterministically from a simulator node index.
    pub fn from_node_index(index: usize) -> Self {
        Self::new(format!("fnp-node-{index}").into_bytes())
    }

    /// Creates an identity from a Diffie–Hellman public key.
    pub fn from_public_key(key: &crate::dh::PublicKey) -> Self {
        Self::new(key.0.to_le_bytes().to_vec())
    }

    /// Returns the raw identifier bytes.
    pub fn id(&self) -> &[u8] {
        &self.id
    }

    /// Returns the SHA-256 fingerprint of the identifier.
    pub fn fingerprint(&self) -> &[u8; DIGEST_LEN] {
        &self.fingerprint
    }
}

/// The 256-bit XOR distance between a fingerprint and a message digest,
/// compared lexicographically (big-endian), i.e. a Kademlia-style metric.
///
/// Returned as a fixed array so distances of different identities for the
/// same message can be compared with the ordinary `Ord` on arrays.
pub fn hash_distance(
    fingerprint: &[u8; DIGEST_LEN],
    digest: &[u8; DIGEST_LEN],
) -> [u8; DIGEST_LEN] {
    let mut out = [0u8; DIGEST_LEN];
    for i in 0..DIGEST_LEN {
        out[i] = fingerprint[i] ^ digest[i];
    }
    out
}

/// Elects the initial virtual source for a message: the group member whose
/// identity fingerprint has minimal [`hash_distance`] to the message digest.
///
/// Ties (which require a fingerprint collision) are broken towards the
/// lexicographically smaller identity so that the election stays
/// deterministic. Returns `None` for an empty group.
///
/// Every group member evaluates this function over the same public inputs,
/// so the transition is verifiable and requires no additional messages —
/// the property the paper demands of the phase 1 → phase 2 hand-off.
pub fn elect_virtual_source<'a>(
    group: impl IntoIterator<Item = &'a Identity>,
    message_digest: &[u8; DIGEST_LEN],
) -> Option<&'a Identity> {
    group.into_iter().min_by(|a, b| {
        hash_distance(a.fingerprint(), message_digest)
            .cmp(&hash_distance(b.fingerprint(), message_digest))
            .then_with(|| a.cmp(b))
    })
}

/// Elects the virtual source by index into a slice of identities.
///
/// Convenience wrapper used by the protocol state machines, which track
/// group members by position.
pub fn elect_virtual_source_index(
    group: &[Identity],
    message_digest: &[u8; DIGEST_LEN],
) -> Option<usize> {
    let winner = elect_virtual_source(group.iter(), message_digest)?;
    group.iter().position(|candidate| candidate == winner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_fingerprint_is_stable() {
        let a = Identity::from_node_index(3);
        let b = Identity::from_node_index(3);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn distinct_nodes_have_distinct_fingerprints() {
        let ids: Vec<Identity> = (0..100).map(Identity::from_node_index).collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                assert_ne!(ids[i].fingerprint(), ids[j].fingerprint());
            }
        }
    }

    #[test]
    fn hash_distance_is_zero_iff_equal() {
        let a = Identity::from_node_index(1);
        let zero = hash_distance(a.fingerprint(), a.fingerprint());
        assert_eq!(zero, [0u8; DIGEST_LEN]);

        let b = Identity::from_node_index(2);
        assert_ne!(
            hash_distance(a.fingerprint(), b.fingerprint()),
            [0u8; DIGEST_LEN]
        );
    }

    #[test]
    fn hash_distance_is_symmetric() {
        let a = Identity::from_node_index(1);
        let b = Identity::from_node_index(2);
        assert_eq!(
            hash_distance(a.fingerprint(), b.fingerprint()),
            hash_distance(b.fingerprint(), a.fingerprint())
        );
    }

    #[test]
    fn election_is_deterministic_and_unanimous() {
        let group: Vec<Identity> = (0..10).map(Identity::from_node_index).collect();
        let digest = Sha256::digest(b"some transaction");
        let first = elect_virtual_source_index(&group, &digest).unwrap();
        // Any permutation of the group elects the same identity.
        let mut shuffled = group.clone();
        shuffled.rotate_left(3);
        let winner_identity = &group[first];
        let winner_in_shuffled = elect_virtual_source(shuffled.iter(), &digest).unwrap();
        assert_eq!(winner_identity, winner_in_shuffled);
    }

    #[test]
    fn election_depends_on_message() {
        let group: Vec<Identity> = (0..50).map(Identity::from_node_index).collect();
        let winners: std::collections::HashSet<usize> = (0..50)
            .map(|i| {
                let digest = Sha256::digest(format!("tx-{i}").as_bytes());
                elect_virtual_source_index(&group, &digest).unwrap()
            })
            .collect();
        // Different messages must elect several different members — with 50
        // messages over 50 members the probability of fewer than 5 distinct
        // winners is negligible.
        assert!(winners.len() >= 5, "winners: {winners:?}");
    }

    #[test]
    fn election_of_empty_group_is_none() {
        let digest = Sha256::digest(b"tx");
        assert!(elect_virtual_source(std::iter::empty(), &digest).is_none());
        assert!(elect_virtual_source_index(&[], &digest).is_none());
    }

    #[test]
    fn election_of_singleton_group_returns_it() {
        let group = vec![Identity::from_node_index(7)];
        let digest = Sha256::digest(b"tx");
        assert_eq!(elect_virtual_source_index(&group, &digest), Some(0));
    }

    #[test]
    fn election_winner_is_independent_of_sender() {
        // The rule uses only the message and the group — nothing about who
        // originated the message — which is the paper's privacy argument for
        // the transition. We model "different senders" as the same group and
        // message observed by different members: all compute the same winner.
        let group: Vec<Identity> = (0..8).map(Identity::from_node_index).collect();
        let digest = Sha256::digest(b"tx from whoever");
        let per_member: Vec<usize> = (0..group.len())
            .map(|_| elect_virtual_source_index(&group, &digest).unwrap())
            .collect();
        assert!(per_member.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn debug_output_is_short_fingerprint() {
        let id = Identity::from_node_index(0);
        let dbg = format!("{id:?}");
        assert!(dbg.starts_with("Identity("));
        assert!(dbg.len() < 24);
    }

    #[test]
    fn identity_from_public_key() {
        let kp = crate::dh::KeyPair::from_secret(12345);
        let a = Identity::from_public_key(&kp.public_key());
        let b = Identity::from_public_key(&kp.public_key());
        assert_eq!(a, b);
    }
}
