//! A from-scratch implementation of the SHA-256 cryptographic hash function
//! (FIPS 180-4).
//!
//! The flexible broadcast protocol uses SHA-256 in two places:
//!
//! * hashing node identities and messages for the verifiable, message-free
//!   virtual-source election at the phase 1 → phase 2 transition
//!   (`argmin_i dist(H(id_i), H(m))`), and
//! * as the compression function behind [`crate::hmac`] and
//!   [`crate::hkdf`], which derive the pairwise DC-net pad keys.
//!
//! The implementation is pure safe Rust, allocation-free for the streaming
//! interface, and validated against the official FIPS/NIST test vectors in
//! the unit tests below.
//!
//! # Examples
//!
//! ```
//! use fnp_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     fnp_crypto::hex::encode(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

/// Size of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// Size of a SHA-256 input block in bytes.
pub const BLOCK_LEN: usize = 64;

/// SHA-256 round constants: the first 32 bits of the fractional parts of the
/// cube roots of the first 64 prime numbers.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 prime numbers.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// Feed data with [`Sha256::update`] and produce the digest with
/// [`Sha256::finalize`]. For one-shot hashing use [`Sha256::digest`].
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total number of message bytes processed so far.
    len: u64,
    /// Partially filled input block.
    buffer: [u8; BLOCK_LEN],
    /// Number of valid bytes in `buffer`.
    buffered: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a new hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: H0,
            len: 0,
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
        }
    }

    /// Convenience one-shot hash of `data`.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut hasher = Self::new();
        hasher.update(data);
        hasher.finalize()
    }

    /// Hashes the concatenation of the provided chunks.
    ///
    /// Equivalent to calling [`Sha256::update`] once per chunk; convenient
    /// for domain-separated hashing without intermediate allocation.
    pub fn digest_chunks<'a, I>(chunks: I) -> [u8; DIGEST_LEN]
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut hasher = Self::new();
        for chunk in chunks {
            hasher.update(chunk);
        }
        hasher.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill a partially buffered block first.
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }

        // Compress full blocks directly from the input slice — borrowed, not
        // copied into a staging buffer (this inner loop carries all of HMAC
        // and HKDF key derivation).
        let mut blocks = input.chunks_exact(BLOCK_LEN);
        for block in blocks.by_ref() {
            self.compress(block.try_into().expect("exact 64-byte chunk"));
        }

        // Stash the remainder.
        let rest = blocks.remainder();
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Finishes the hash computation and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);

        // Append the 0x80 terminator.
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        // Number of zero bytes so that buffered + 1 + zeros + 8 ≡ 0 (mod 64).
        let pad_len = if self.buffered < 56 {
            56 - self.buffered
        } else {
            120 - self.buffered
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_padding(&pad[..pad_len + 8]);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Internal `update` used for the final padding: must not change `len`.
    fn update_padding(&mut self, data: &[u8]) {
        let mut input = data;
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        let mut blocks = input.chunks_exact(BLOCK_LEN);
        for block in blocks.by_ref() {
            self.compress(block.try_into().expect("exact 64-byte chunk"));
        }
        debug_assert!(
            blocks.remainder().is_empty(),
            "padding must end on a block boundary"
        );
    }

    /// SHA-256 compression function over one 64-byte block.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hex_digest(data: &[u8]) -> String {
        hex::encode(&Sha256::digest(data))
    }

    #[test]
    fn empty_input_matches_fips_vector() {
        assert_eq!(
            hex_digest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_matches_fips_vector() {
        assert_eq!(
            hex_digest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message_matches_fips_vector() {
        assert_eq!(
            hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_message_matches_fips_vector() {
        // One million repetitions of 'a'.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_digest(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn fifty_six_byte_boundary() {
        // Exactly 56 bytes forces the length field into a second padding block.
        let data = vec![0x41u8; 56];
        let one_shot = Sha256::digest(&data);
        let mut streaming = Sha256::new();
        streaming.update(&data);
        assert_eq!(one_shot, streaming.finalize());
    }

    #[test]
    fn streaming_equals_one_shot_for_arbitrary_chunking() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let expected = Sha256::digest(&data);
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 127, 500] {
            let mut hasher = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                hasher.update(chunk);
            }
            assert_eq!(hasher.finalize(), expected, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn digest_chunks_concatenates() {
        let expected = Sha256::digest(b"hello world");
        let actual =
            Sha256::digest_chunks([b"hello".as_slice(), b" ".as_slice(), b"world".as_slice()]);
        assert_eq!(expected, actual);
    }

    #[test]
    fn different_inputs_produce_different_digests() {
        assert_ne!(
            Sha256::digest(b"transaction-1"),
            Sha256::digest(b"transaction-2")
        );
    }

    #[test]
    fn clone_preserves_state() {
        let mut a = Sha256::new();
        a.update(b"partial ");
        let mut b = a.clone();
        a.update(b"message");
        b.update(b"message");
        assert_eq!(a.finalize(), b.finalize());
    }
}
