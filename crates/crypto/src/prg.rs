//! Keyed pseudorandom generators and pairwise pad schedules for DC-nets.
//!
//! A dining-cryptographers round of group size `k` needs, for every
//! unordered pair `{i, j}` of members, a pad `P_{ij}` known to exactly those
//! two members. Member `i` transmits `m_i ⊕ (⊕_j P_{ij})`; XORing all
//! transmissions cancels every pad (each appears exactly twice) and leaves
//! `⊕_i m_i`.
//!
//! [`PadGenerator`] produces those pads deterministically from a pairwise
//! key (see [`crate::dh::pairwise_pad_key`]) and a round number, so the two
//! endpoints never need to exchange pad material explicitly — matching the
//! paper's assumption of pre-established pairwise channels while avoiding
//! the O(k²) pad transmissions of the explicit construction in its Fig. 4.
//! The explicit share-splitting variant of Fig. 4 is implemented in the
//! `fnp-dcnet` crate on top of [`random_shares`].
//!
//! Pad generation is stateless — each round's pad is an independent
//! ChaCha20 stream keyed by `(pairwise key, round)` — so every operation
//! takes `&self` and a generator can be shared freely. The hot DC-net
//! contribute path uses the fused [`PadGenerator::xor_pad_into`], which
//! XORs the keystream directly into the contribution slot without ever
//! materialising a pad buffer.
//!
//! # Examples
//!
//! ```
//! use fnp_crypto::prg::PadGenerator;
//!
//! let key = [7u8; 32];
//! let alice = PadGenerator::new(key);
//! let bob = PadGenerator::new(key);
//! assert_eq!(alice.pad(0, 128), bob.pad(0, 128));
//! assert_ne!(alice.pad(0, 128), alice.pad(1, 128));
//! ```

use crate::chacha20::ChaCha20;
use rand::Rng;

/// Deterministic generator of per-round pads from a pairwise key.
#[derive(Clone, Debug)]
pub struct PadGenerator {
    key: [u8; 32],
}

impl PadGenerator {
    /// Creates a pad generator from a 256-bit pairwise key.
    pub fn new(key: [u8; 32]) -> Self {
        Self { key }
    }

    /// Returns the pad for `round`, of length `len` bytes.
    ///
    /// The pad is the ChaCha20 keystream under the pairwise key with the
    /// round number as nonce; both endpoints of the pair derive the
    /// identical bytes. Allocates — hot paths use
    /// [`PadGenerator::pad_into`] or [`PadGenerator::xor_pad_into`].
    pub fn pad(&self, round: u64, len: usize) -> Vec<u8> {
        ChaCha20::for_round(&self.key, round).keystream(len)
    }

    /// Writes the pad for `round` into `out` (caller-owned, no allocation).
    pub fn pad_into(&self, round: u64, out: &mut [u8]) {
        ChaCha20::for_round(&self.key, round).keystream_into(out);
    }

    /// XORs the pad for `round` into `dst` in place — the fused form used
    /// by the DC-net contribute path: the keystream goes straight from the
    /// cipher's block function into the contribution slot, with no pad
    /// buffer in between.
    pub fn xor_pad_into(&self, round: u64, dst: &mut [u8]) {
        ChaCha20::for_round(&self.key, round).apply_keystream(dst);
    }
}

/// XORs `src` into `dst` element-wise.
///
/// The loop runs over `u64` lanes with a scalar tail; byte order is
/// irrelevant to XOR, so native-endian lane loads preserve the byte-wise
/// semantics exactly (property-tested below).
///
/// # Panics
///
/// Panics if the two slices have different lengths; DC-net slots are always
/// fixed-size within a round, so a length mismatch is a protocol bug.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "xor_into requires equal-length slices ({} vs {})",
        dst.len(),
        src.len()
    );
    let mut dst_lanes = dst.chunks_exact_mut(8);
    let mut src_lanes = src.chunks_exact(8);
    for (d, s) in dst_lanes.by_ref().zip(src_lanes.by_ref()) {
        let lane = u64::from_ne_bytes(d.as_ref().try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&lane.to_ne_bytes());
    }
    for (d, s) in dst_lanes
        .into_remainder()
        .iter_mut()
        .zip(src_lanes.remainder())
    {
        *d ^= s;
    }
}

/// Returns the element-wise XOR of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = a.to_vec();
    xor_into(&mut out, b);
    out
}

/// Splits `message` into `count` random shares whose XOR equals the message.
///
/// This is step 1 of the paper's Fig. 4: "Generate r_1, …, r_k at random and
/// of length n, such that m = ⊕ r_i". The first `count - 1` shares are
/// sampled uniformly at random; the final share is the XOR of the message
/// with all previous shares.
///
/// # Panics
///
/// Panics if `count == 0`; a zero-way split has no meaning in the protocol.
pub fn random_shares<R: Rng + ?Sized>(rng: &mut R, message: &[u8], count: usize) -> Vec<Vec<u8>> {
    assert!(count > 0, "cannot split a message into zero shares");
    let mut shares = Vec::with_capacity(count);
    let mut accumulator = message.to_vec();
    for _ in 0..count - 1 {
        let mut share = vec![0u8; message.len()];
        rng.fill(share.as_mut_slice());
        xor_into(&mut accumulator, &share);
        shares.push(share);
    }
    shares.push(accumulator);
    shares
}

/// Recombines shares produced by [`random_shares`] (or any XOR sharing).
///
/// Returns an empty vector for an empty share list.
///
/// # Panics
///
/// Panics if the shares have inconsistent lengths.
pub fn combine_shares<'a>(shares: impl IntoIterator<Item = &'a [u8]>) -> Vec<u8> {
    let mut iter = shares.into_iter();
    let Some(first) = iter.next() else {
        return Vec::new();
    };
    let mut acc = first.to_vec();
    for share in iter {
        xor_into(&mut acc, share);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The plain byte-wise XOR the lane version must be equivalent to.
    fn xor_into_bytewise(dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len());
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d ^= s;
        }
    }

    #[test]
    fn both_endpoints_derive_identical_pads() {
        let key = [0x11u8; 32];
        let a = PadGenerator::new(key);
        let b = PadGenerator::new(key);
        for round in 0..10u64 {
            assert_eq!(a.pad(round, 256), b.pad(round, 256));
        }
    }

    #[test]
    fn pads_differ_across_rounds_and_keys() {
        let a = PadGenerator::new([1u8; 32]);
        let b = PadGenerator::new([2u8; 32]);
        assert_ne!(a.pad(0, 64), a.pad(1, 64));
        assert_ne!(a.pad(0, 64), b.pad(0, 64));
    }

    #[test]
    fn pad_into_and_xor_pad_into_match_pad() {
        let generator = PadGenerator::new([0x21u8; 32]);
        for len in [0usize, 1, 64, 100, 512, 513] {
            let reference = generator.pad(3, len);

            let mut buf = vec![0xAAu8; len];
            generator.pad_into(3, &mut buf);
            assert_eq!(buf, reference, "pad_into length {len}");

            let base: Vec<u8> = (0..len).map(|i| u8::try_from(i % 256).unwrap()).collect();
            let mut fused = base.clone();
            generator.xor_pad_into(3, &mut fused);
            assert_eq!(fused, xor(&base, &reference), "xor_pad_into length {len}");
        }
    }

    #[test]
    fn xor_round_trips() {
        let a = b"hello world".to_vec();
        let b = b"pad pad pad".to_vec();
        let c = xor(&a, &b);
        assert_eq!(xor(&c, &b), a);
        assert_eq!(xor(&c, &a), b);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn xor_into_panics_on_length_mismatch() {
        let mut dst = vec![0u8; 4];
        xor_into(&mut dst, &[0u8; 5]);
    }

    #[test]
    fn shares_reconstruct_message() {
        let mut rng = StdRng::seed_from_u64(1);
        let message = b"a blockchain transaction".to_vec();
        for count in 1..=10 {
            let shares = random_shares(&mut rng, &message, count);
            assert_eq!(shares.len(), count);
            let refs: Vec<&[u8]> = shares.iter().map(|s| s.as_slice()).collect();
            assert_eq!(combine_shares(refs), message);
        }
    }

    #[test]
    fn single_share_is_the_message() {
        let mut rng = StdRng::seed_from_u64(2);
        let shares = random_shares(&mut rng, b"msg", 1);
        assert_eq!(shares, vec![b"msg".to_vec()]);
    }

    #[test]
    #[should_panic(expected = "zero shares")]
    fn zero_shares_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        random_shares(&mut rng, b"msg", 0);
    }

    #[test]
    fn combine_of_nothing_is_empty() {
        assert!(combine_shares(std::iter::empty::<&[u8]>()).is_empty());
    }

    #[test]
    fn individual_shares_look_independent_of_message() {
        // Every share except the combination of all of them is uniformly
        // random; sanity-check that no single share equals the message for a
        // non-trivial split (overwhelmingly likely).
        let mut rng = StdRng::seed_from_u64(4);
        let message = vec![0xAAu8; 64];
        let shares = random_shares(&mut rng, &message, 5);
        let equal_count = shares.iter().filter(|s| **s == message).count();
        assert_eq!(equal_count, 0);
    }

    proptest! {
        #[test]
        fn prop_shares_always_reconstruct(
            message in proptest::collection::vec(any::<u8>(), 0..256),
            count in 1usize..12,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let shares = random_shares(&mut rng, &message, count);
            let refs: Vec<&[u8]> = shares.iter().map(|s| s.as_slice()).collect();
            prop_assert_eq!(combine_shares(refs), message);
        }

        #[test]
        fn prop_xor_is_involutive(
            a in proptest::collection::vec(any::<u8>(), 0..128),
            b_seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(b_seed);
            let mut b = vec![0u8; a.len()];
            Rng::fill(&mut rng, b.as_mut_slice());
            let c = xor(&a, &b);
            prop_assert_eq!(xor(&c, &b), a);
        }

        /// The u64-lane XOR is byte-for-byte equivalent to the byte-wise
        /// loop it replaced, across lengths that straddle lane boundaries.
        #[test]
        fn prop_lane_xor_matches_bytewise(
            a in proptest::collection::vec(any::<u8>(), 0..200),
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = vec![0u8; a.len()];
            Rng::fill(&mut rng, b.as_mut_slice());
            let mut lanes = a.clone();
            xor_into(&mut lanes, &b);
            let mut bytes = a;
            xor_into_bytewise(&mut bytes, &b);
            prop_assert_eq!(lanes, bytes);
        }

        #[test]
        fn prop_pads_deterministic(key in any::<[u8; 32]>(), round in any::<u64>(), len in 0usize..512) {
            let g1 = PadGenerator::new(key);
            let g2 = PadGenerator::new(key);
            prop_assert_eq!(g1.pad(round, len), g2.pad(round, len));
        }
    }
}
