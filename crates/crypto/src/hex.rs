//! Minimal hexadecimal encoding and decoding helpers.
//!
//! Used throughout the workspace for fingerprinting digests in logs, test
//! vectors and experiment output.
//!
//! # Examples
//!
//! ```
//! let bytes = [0xde, 0xad, 0xbe, 0xef];
//! let text = fnp_crypto::hex::encode(&bytes);
//! assert_eq!(text, "deadbeef");
//! assert_eq!(fnp_crypto::hex::decode(&text).unwrap(), bytes);
//! ```

use std::fmt;

/// Error returned by [`decode`] when the input is not valid hexadecimal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeHexError {
    /// The input length is odd; hex strings encode whole bytes.
    OddLength {
        /// Length of the offending input.
        len: usize,
    },
    /// The input contains a character outside `[0-9a-fA-F]`.
    InvalidCharacter {
        /// The offending character.
        character: char,
        /// Byte offset of the offending character.
        index: usize,
    },
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeHexError::OddLength { len } => {
                write!(f, "hex string has odd length {len}")
            }
            DecodeHexError::InvalidCharacter { character, index } => {
                write!(f, "invalid hex character {character:?} at index {index}")
            }
        }
    }
}

impl std::error::Error for DecodeHexError {}

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encodes `bytes` as a lowercase hexadecimal string.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hexadecimal string (upper- or lowercase) into bytes.
///
/// # Errors
///
/// Returns [`DecodeHexError::OddLength`] if the input length is odd and
/// [`DecodeHexError::InvalidCharacter`] if a non-hex character is found.
pub fn decode(text: &str) -> Result<Vec<u8>, DecodeHexError> {
    let bytes = text.as_bytes();
    if bytes.len() % 2 != 0 {
        return Err(DecodeHexError::OddLength { len: bytes.len() });
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for i in (0..bytes.len()).step_by(2) {
        let hi = nibble(bytes[i]).ok_or(DecodeHexError::InvalidCharacter {
            character: bytes[i] as char,
            index: i,
        })?;
        let lo = nibble(bytes[i + 1]).ok_or(DecodeHexError::InvalidCharacter {
            character: bytes[i + 1] as char,
            index: i + 1,
        })?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn nibble(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_empty() {
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn decode_empty() {
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn round_trip_all_byte_values() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let text = encode(&bytes);
        assert_eq!(decode(&text).unwrap(), bytes);
    }

    #[test]
    fn decode_accepts_uppercase() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn decode_rejects_odd_length() {
        assert_eq!(decode("abc"), Err(DecodeHexError::OddLength { len: 3 }));
    }

    #[test]
    fn decode_rejects_invalid_character() {
        assert_eq!(
            decode("zz"),
            Err(DecodeHexError::InvalidCharacter {
                character: 'z',
                index: 0
            })
        );
    }

    #[test]
    fn error_display_is_informative() {
        let err = DecodeHexError::InvalidCharacter {
            character: 'q',
            index: 4,
        };
        assert!(err.to_string().contains("index 4"));
        assert!(DecodeHexError::OddLength { len: 7 }
            .to_string()
            .contains('7'));
    }
}
