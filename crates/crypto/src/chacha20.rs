//! The ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! The DC-net phase of the flexible broadcast protocol requires each pair
//! of group members to share a *pad*: a pseudorandom byte string as long as
//! the message slot, known to both endpoints and nobody else. We realise
//! the pad as the keystream of ChaCha20 under the pairwise key derived via
//! [`crate::dh`] + [`crate::hkdf`], with the round number as nonce. The
//! same cipher doubles as the "pairwise encrypted channel" the paper assumes
//! between group members.
//!
//! # The multi-block engine
//!
//! A keyed DC-net round expands `k·(k−1)` keystreams per group per round,
//! which makes block generation the hottest loop in the repository. The
//! cipher therefore produces keystream four blocks per inner-loop pass:
//! [`ChaCha20::keystream_into`] and [`ChaCha20::xor_keystream_into`] write
//! directly into caller-owned buffers (no per-call allocation), running the
//! 20-round permutation over four independent working states at once in a
//! word-sliced layout — row `i` of the working state holds word `i` of all
//! four blocks, so every quarter-round step is an elementwise pass over a
//! `[u32; 4]` that LLVM lowers to single vector instructions on targets
//! with cheap vector rotates (and to four parallel scalar dependency
//! chains elsewhere). The single-block path is retained as the reference
//! oracle; an equivalence property test pins the two against each other
//! over arbitrary lengths and chunkings.
//!
//! # Keystream exhaustion
//!
//! RFC 8439 leaves the behaviour at 32-bit block-counter wraparound to the
//! application. Reusing counter values would repeat keystream — fatal for a
//! pad — so this implementation defines it: one `(key, nonce)` pair yields
//! at most [`MAX_KEYSTREAM_BLOCKS`] blocks ([`MAX_KEYSTREAM_LEN`] bytes,
//! 256 GiB); the block with counter `u32::MAX` is the last one, and any
//! request past it panics with a clear message. DC-net pads start every
//! round at counter 0 and span a few hundred bytes, so the limit is purely
//! a safety net against keystream reuse.
//!
//! # Examples
//!
//! ```
//! use fnp_crypto::chacha20::ChaCha20;
//!
//! let key = [0x42u8; 32];
//! let nonce = [0u8; 12];
//! let mut cipher = ChaCha20::new(&key, &nonce, 0);
//! let mut data = *b"a transaction to hide";
//! cipher.apply_keystream(&mut data);
//! // Decrypt by re-applying the identical keystream.
//! let mut cipher = ChaCha20::new(&key, &nonce, 0);
//! cipher.apply_keystream(&mut data);
//! assert_eq!(&data, b"a transaction to hide");
//! ```

use crate::prg::xor_into;

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Size of one keystream block in bytes.
pub const BLOCK_LEN: usize = 64;
/// Number of blocks generated per multi-block inner-loop pass.
const LANES: usize = 4;
/// `LANES` as the block-counter width (kept as a separate literal so no
/// narrowing cast appears on the hot path).
const LANES_U32: u32 = 4;
/// Maximum number of keystream blocks one `(key, nonce)` pair may produce
/// (the 32-bit block counter must not wrap; see the module docs).
pub const MAX_KEYSTREAM_BLOCKS: u64 = 1 << 32;
/// Maximum keystream length in bytes for one `(key, nonce)` pair (256 GiB).
pub const MAX_KEYSTREAM_LEN: u64 = MAX_KEYSTREAM_BLOCKS * BLOCK_LEN as u64;

/// Panic message for keystream requests past the counter limit.
const EXHAUSTED: &str = "ChaCha20 keystream exhausted: one (key, nonce) pair yields at most \
     2^32 blocks (256 GiB); reusing counter values would repeat pad bytes";

/// ChaCha20 stream cipher state.
///
/// The cipher produces a keystream in 64-byte blocks; [`ChaCha20::apply_keystream`]
/// XORs it into a buffer, [`ChaCha20::keystream_into`] writes raw keystream
/// bytes into a caller-owned buffer (used directly as DC-net pads), and
/// [`ChaCha20::keystream`] is the allocating convenience form.
#[derive(Clone, Debug)]
pub struct ChaCha20 {
    /// Cipher state words: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream block not yet consumed.
    buffer: [u8; BLOCK_LEN],
    /// Offset of the next unconsumed byte in `buffer`; `BLOCK_LEN` means empty.
    buffer_pos: usize,
    /// Set once the block counter has produced its final (`u32::MAX`) block;
    /// any further block request panics instead of repeating keystream.
    exhausted: bool,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha20 {
    /// Creates a cipher instance from a 256-bit key, 96-bit nonce and initial
    /// block counter.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        Self {
            state,
            buffer: [0u8; BLOCK_LEN],
            buffer_pos: BLOCK_LEN,
            exhausted: false,
        }
    }

    /// Convenience constructor: uses a 64-bit round/slot identifier as nonce.
    ///
    /// This is how DC-net pads bind to a round number without needing nonce
    /// bookkeeping: the round id occupies the final eight nonce bytes.
    pub fn for_round(key: &[u8; KEY_LEN], round: u64) -> Self {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[4..].copy_from_slice(&round.to_le_bytes());
        Self::new(key, &nonce, 0)
    }

    /// The ChaCha20 quarter round.
    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] ^= state[a];
        state[d] = state[d].rotate_left(16);

        state[c] = state[c].wrapping_add(state[d]);
        state[b] ^= state[c];
        state[b] = state[b].rotate_left(12);

        state[a] = state[a].wrapping_add(state[b]);
        state[d] ^= state[a];
        state[d] = state[d].rotate_left(8);

        state[c] = state[c].wrapping_add(state[d]);
        state[b] ^= state[c];
        state[b] = state[b].rotate_left(7);
    }

    /// Runs the 20-round permutation over `init` and writes the resulting
    /// feed-forwarded 64-byte keystream block to `out`.
    ///
    /// This is the single-block reference path; the multi-block engine in
    /// [`ChaCha20::quad_blocks_into`] is property-tested against it.
    fn block_into(init: &[u32; 16], out: &mut [u8]) {
        debug_assert_eq!(out.len(), BLOCK_LEN);
        let mut working = *init;
        for _ in 0..10 {
            // Column rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, &mixed) in working.iter().enumerate() {
            let word = mixed.wrapping_add(init[i]);
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
    }

    /// Lane-wise wrapping add over one word row of the word-sliced state.
    #[inline]
    fn vadd(x: [u32; LANES], y: [u32; LANES]) -> [u32; LANES] {
        let mut out = x;
        for (lane, &rhs) in out.iter_mut().zip(y.iter()) {
            *lane = lane.wrapping_add(rhs);
        }
        out
    }

    /// Lane-wise XOR over one word row of the word-sliced state.
    #[inline]
    fn vxor(x: [u32; LANES], y: [u32; LANES]) -> [u32; LANES] {
        let mut out = x;
        for (lane, &rhs) in out.iter_mut().zip(y.iter()) {
            *lane ^= rhs;
        }
        out
    }

    /// Lane-wise left rotation by a constant over one word row.
    #[inline]
    fn vrot<const N: u32>(x: [u32; LANES]) -> [u32; LANES] {
        let mut out = x;
        for lane in out.iter_mut() {
            *lane = lane.rotate_left(N);
        }
        out
    }

    /// One quarter-round position applied to all lanes of the word-sliced
    /// state. `v[i]` holds state word `i` for every lane, so each of these
    /// operations is an independent elementwise pass over a small `u32`
    /// array — exactly the shape LLVM turns into single SIMD instructions
    /// (and, failing that, four parallel scalar dependency chains).
    #[inline]
    fn quad_quarter_round(v: &mut [[u32; LANES]; 16], a: usize, b: usize, c: usize, d: usize) {
        v[a] = Self::vadd(v[a], v[b]);
        v[d] = Self::vrot::<16>(Self::vxor(v[d], v[a]));
        v[c] = Self::vadd(v[c], v[d]);
        v[b] = Self::vrot::<12>(Self::vxor(v[b], v[c]));
        v[a] = Self::vadd(v[a], v[b]);
        v[d] = Self::vrot::<8>(Self::vxor(v[d], v[a]));
        v[c] = Self::vadd(v[c], v[d]);
        v[b] = Self::vrot::<7>(Self::vxor(v[b], v[c]));
    }

    /// Advances the block counter by `blocks`, recording exhaustion when it
    /// wraps (the wrapping block itself was legal; the *next* request panics).
    fn advance_counter(&mut self, blocks: u32) {
        let (next, wrapped) = self.state[12].overflowing_add(blocks);
        self.state[12] = next;
        self.exhausted |= wrapped;
    }

    /// Generates one block into `out` (len `BLOCK_LEN`) and advances the
    /// counter.
    fn one_block_into(&mut self, out: &mut [u8]) {
        assert!(!self.exhausted, "{EXHAUSTED}");
        Self::block_into(&self.state, out);
        self.advance_counter(1);
    }

    /// Generates four consecutive blocks into `out` (len `4 * BLOCK_LEN`)
    /// via the interleaved-lane engine, falling back to the single-block
    /// path when the counter is within four blocks of wrapping.
    fn quad_blocks_into(&mut self, out: &mut [u8]) {
        debug_assert_eq!(out.len(), LANES * BLOCK_LEN);
        let counter = self.state[12];
        if self.exhausted || counter.checked_add(LANES_U32 - 1).is_none() {
            for block in out.chunks_exact_mut(BLOCK_LEN) {
                self.one_block_into(block);
            }
            return;
        }
        // Word-sliced ("vertical") layout: `v[i]` holds state word `i` of
        // all four lanes, so every quarter-round step is an elementwise op
        // over a `[u32; LANES]` row that vectorises to one SIMD instruction.
        let mut v = [[0u32; LANES]; 16];
        for (row, &word) in v.iter_mut().zip(self.state.iter()) {
            *row = [word; LANES];
        }
        for (offset, lane) in (0u32..).zip(v[12].iter_mut()) {
            *lane = counter + offset;
        }
        let init = v;
        for _ in 0..10 {
            // Column rounds across all four lanes, then diagonal rounds.
            Self::quad_quarter_round(&mut v, 0, 4, 8, 12);
            Self::quad_quarter_round(&mut v, 1, 5, 9, 13);
            Self::quad_quarter_round(&mut v, 2, 6, 10, 14);
            Self::quad_quarter_round(&mut v, 3, 7, 11, 15);
            Self::quad_quarter_round(&mut v, 0, 5, 10, 15);
            Self::quad_quarter_round(&mut v, 1, 6, 11, 12);
            Self::quad_quarter_round(&mut v, 2, 7, 8, 13);
            Self::quad_quarter_round(&mut v, 3, 4, 9, 14);
        }
        for (lane, block) in out.chunks_exact_mut(BLOCK_LEN).enumerate() {
            for (i, chunk) in block.chunks_exact_mut(4).enumerate() {
                // Feed-forward adds each lane's *initial* state, which
                // differs from `self.state` only in the counter word.
                let word = v[i][lane].wrapping_add(init[i][lane]);
                chunk.copy_from_slice(&word.to_le_bytes());
            }
        }
        self.advance_counter(LANES_U32);
    }

    /// Produces the next 64-byte keystream block into the internal buffer
    /// and advances the counter.
    fn next_block(&mut self) {
        assert!(!self.exhausted, "{EXHAUSTED}");
        Self::block_into(&self.state, &mut self.buffer);
        self.advance_counter(1);
        self.buffer_pos = 0;
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    ///
    /// # Panics
    ///
    /// Panics if the request would advance the block counter past
    /// [`MAX_KEYSTREAM_BLOCKS`] (see the module docs on exhaustion).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        // Drain any partially consumed buffered block first.
        let buffered = (BLOCK_LEN - self.buffer_pos).min(data.len());
        let (head, rest) = data.split_at_mut(buffered);
        xor_into(
            head,
            &self.buffer[self.buffer_pos..self.buffer_pos + buffered],
        );
        self.buffer_pos += buffered;

        // Bulk: generate keystream four blocks at a time into a stack
        // buffer and XOR it in with u64 lanes.
        let mut keystream = [0u8; LANES * BLOCK_LEN];
        let mut quads = rest.chunks_exact_mut(LANES * BLOCK_LEN);
        for quad in quads.by_ref() {
            self.quad_blocks_into(&mut keystream);
            xor_into(quad, &keystream);
        }
        let tail = quads.into_remainder();
        let mut blocks = tail.chunks_exact_mut(BLOCK_LEN);
        for block in blocks.by_ref() {
            self.one_block_into(&mut keystream[..BLOCK_LEN]);
            xor_into(block, &keystream[..BLOCK_LEN]);
        }

        // Partial final block: stash the remainder for the next call.
        let last = blocks.into_remainder();
        if !last.is_empty() {
            self.next_block();
            xor_into(last, &self.buffer[..last.len()]);
            self.buffer_pos = last.len();
        }
    }

    /// Fills `out` with raw keystream bytes — the zero-allocation core of
    /// DC-net pad expansion (the pad shared by nodes *i* and *j* for a round
    /// is exactly this output under their pairwise key).
    ///
    /// # Panics
    ///
    /// Panics if the request would advance the block counter past
    /// [`MAX_KEYSTREAM_BLOCKS`] (see the module docs on exhaustion).
    pub fn keystream_into(&mut self, out: &mut [u8]) {
        let buffered = (BLOCK_LEN - self.buffer_pos).min(out.len());
        let (head, rest) = out.split_at_mut(buffered);
        head.copy_from_slice(&self.buffer[self.buffer_pos..self.buffer_pos + buffered]);
        self.buffer_pos += buffered;

        let mut quads = rest.chunks_exact_mut(LANES * BLOCK_LEN);
        for quad in quads.by_ref() {
            self.quad_blocks_into(quad);
        }
        let tail = quads.into_remainder();
        let mut blocks = tail.chunks_exact_mut(BLOCK_LEN);
        for block in blocks.by_ref() {
            self.one_block_into(block);
        }

        let last = blocks.into_remainder();
        if !last.is_empty() {
            self.next_block();
            last.copy_from_slice(&self.buffer[..last.len()]);
            self.buffer_pos = last.len();
        }
    }

    /// Writes `src XOR keystream` into `dst` — the fused form used by the
    /// DC-net contribute path (no intermediate pad buffer).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, or if the request would
    /// advance the block counter past [`MAX_KEYSTREAM_BLOCKS`].
    pub fn xor_keystream_into(&mut self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(
            dst.len(),
            src.len(),
            "xor_keystream_into requires equal-length slices ({} vs {})",
            dst.len(),
            src.len()
        );
        dst.copy_from_slice(src);
        self.apply_keystream(dst);
    }

    /// Returns `len` raw keystream bytes in a fresh allocation.
    ///
    /// Hot paths use [`ChaCha20::keystream_into`] with a pooled buffer
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if the request would advance the block counter past
    /// [`MAX_KEYSTREAM_BLOCKS`] (see the module docs on exhaustion).
    pub fn keystream(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.keystream_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    /// The original byte-at-a-time buffered implementation, kept verbatim as
    /// the reference oracle for the multi-block engine.
    struct ReferenceChaCha20 {
        state: [u32; 16],
        buffer: [u8; BLOCK_LEN],
        buffer_pos: usize,
    }

    impl ReferenceChaCha20 {
        fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
            Self::like(&ChaCha20::new(key, nonce, counter))
        }

        fn like(fast: &ChaCha20) -> Self {
            Self {
                state: fast.state,
                buffer: [0u8; BLOCK_LEN],
                buffer_pos: BLOCK_LEN,
            }
        }

        fn next_block(&mut self) {
            let state = self.state;
            ChaCha20::block_into(&state, &mut self.buffer);
            self.state[12] = self.state[12].wrapping_add(1);
            self.buffer_pos = 0;
        }

        fn apply_keystream(&mut self, data: &mut [u8]) {
            for byte in data.iter_mut() {
                if self.buffer_pos == BLOCK_LEN {
                    self.next_block();
                }
                *byte ^= self.buffer[self.buffer_pos];
                self.buffer_pos += 1;
            }
        }

        fn keystream(&mut self, len: usize) -> Vec<u8> {
            let mut out = vec![0u8; len];
            self.apply_keystream(&mut out);
            out
        }
    }

    /// RFC 8439 §2.3.2 test vector: key 00..1f, nonce 00 00 00 09 00 00 00 4a
    /// 00 00 00 00, counter 1 — checked via the §2.4.2 encryption vector below,
    /// and the keystream-block vector here.
    #[test]
    fn rfc8439_block_function_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| u8::try_from(i).unwrap());
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut cipher = ChaCha20::new(&key, &nonce, 1);
        let ks = cipher.keystream(64);
        assert_eq!(
            hex::encode(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// RFC 8439 §2.4.2: encryption of the "sunscreen" plaintext.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| u8::try_from(i).unwrap());
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        let mut cipher = ChaCha20::new(&key, &nonce, 1);
        cipher.apply_keystream(&mut data);
        assert_eq!(
            hex::encode(&data),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let key = [0xabu8; 32];
        let nonce = [0x01u8; 12];
        let original: Vec<u8> = (0..500u32)
            .map(|i| u8::try_from(i % 251).unwrap())
            .collect();
        let mut data = original.clone();

        ChaCha20::new(&key, &nonce, 7).apply_keystream(&mut data);
        assert_ne!(data, original);
        ChaCha20::new(&key, &nonce, 7).apply_keystream(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn keystream_is_deterministic_across_chunking() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let mut a = ChaCha20::new(&key, &nonce, 0);
        let whole = a.keystream(300);

        let mut b = ChaCha20::new(&key, &nonce, 0);
        let mut pieces = Vec::new();
        for len in [1usize, 63, 64, 65, 107] {
            pieces.extend(b.keystream(len));
        }
        assert_eq!(whole, pieces);
    }

    #[test]
    fn keystream_into_matches_keystream() {
        let key = [4u8; 32];
        let nonce = [6u8; 12];
        for len in [0usize, 1, 63, 64, 65, 255, 256, 257, 300, 1024] {
            let expected = ChaCha20::new(&key, &nonce, 0).keystream(len);
            let mut buf = vec![0xEEu8; len];
            ChaCha20::new(&key, &nonce, 0).keystream_into(&mut buf);
            assert_eq!(buf, expected, "length {len}");
        }
    }

    #[test]
    fn xor_keystream_into_is_fused_copy_then_encrypt() {
        let key = [8u8; 32];
        let nonce = [2u8; 12];
        let src: Vec<u8> = (0u16..777)
            .map(|i| u8::try_from(i % 256).unwrap())
            .collect();
        let mut expected = src.clone();
        ChaCha20::new(&key, &nonce, 5).apply_keystream(&mut expected);
        let mut dst = vec![0u8; src.len()];
        ChaCha20::new(&key, &nonce, 5).xor_keystream_into(&mut dst, &src);
        assert_eq!(dst, expected);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn xor_keystream_into_panics_on_length_mismatch() {
        let mut cipher = ChaCha20::for_round(&[1u8; 32], 0);
        let mut dst = [0u8; 4];
        cipher.xor_keystream_into(&mut dst, &[0u8; 5]);
    }

    #[test]
    fn different_rounds_give_independent_pads() {
        let key = [5u8; 32];
        let pad_round_1 = ChaCha20::for_round(&key, 1).keystream(64);
        let pad_round_2 = ChaCha20::for_round(&key, 2).keystream(64);
        assert_ne!(pad_round_1, pad_round_2);
    }

    #[test]
    fn different_keys_give_independent_pads() {
        let pad_a = ChaCha20::for_round(&[1u8; 32], 1).keystream(64);
        let pad_b = ChaCha20::for_round(&[2u8; 32], 1).keystream(64);
        assert_ne!(pad_a, pad_b);
    }

    #[test]
    fn final_block_at_counter_max_is_still_produced() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        // The block with counter u32::MAX is the last legal one.
        let mut cipher = ChaCha20::new(&key, &nonce, u32::MAX);
        let ks = cipher.keystream(64);
        assert_eq!(ks.len(), 64);
        let mut reference = ReferenceChaCha20::new(&key, &nonce, u32::MAX);
        assert_eq!(ks, reference.keystream(64));
    }

    #[test]
    #[should_panic(expected = "keystream exhausted")]
    fn keystream_past_counter_wrap_panics() {
        let mut cipher = ChaCha20::new(&[0u8; 32], &[0u8; 12], u32::MAX);
        // 65 bytes need two blocks; the second would reuse counter 0.
        cipher.keystream(65);
    }

    #[test]
    #[should_panic(expected = "keystream exhausted")]
    fn keystream_into_past_counter_wrap_panics() {
        let mut cipher = ChaCha20::new(&[0u8; 32], &[0u8; 12], u32::MAX - 1);
        let mut buf = [0u8; 4 * BLOCK_LEN];
        cipher.keystream_into(&mut buf);
    }

    #[test]
    fn near_wrap_multi_block_falls_back_to_reference() {
        // Two blocks of headroom: the quad path must defer to the
        // single-block fallback and still match the oracle exactly.
        let key = [7u8; 32];
        let nonce = [1u8; 12];
        let counter = u32::MAX - 1;
        let mut fast = ChaCha20::new(&key, &nonce, counter);
        let mut buf = [0u8; 2 * BLOCK_LEN];
        fast.keystream_into(&mut buf);
        let mut reference = ReferenceChaCha20::new(&key, &nonce, counter);
        assert_eq!(buf.to_vec(), reference.keystream(2 * BLOCK_LEN));
    }

    proptest! {
        /// The multi-block engine is byte-identical to the single-block
        /// reference oracle over arbitrary lengths and chunk boundaries.
        #[test]
        fn prop_multi_block_matches_reference(
            key in any::<[u8; 32]>(),
            nonce in any::<[u8; 12]>(),
            counter in 0u32..1024,
            chunks in proptest::collection::vec(0usize..600, 1..5),
        ) {
            let mut reference = ReferenceChaCha20::new(&key, &nonce, counter);
            let mut fast = ChaCha20::new(&key, &nonce, counter);
            for len in chunks {
                let expected = reference.keystream(len);
                let mut got = vec![0u8; len];
                fast.keystream_into(&mut got);
                prop_assert_eq!(got, expected);
            }
        }

        /// `apply_keystream` (the XOR form) agrees with the reference too,
        /// at arbitrary split offsets within one stream.
        #[test]
        fn prop_apply_keystream_matches_reference(
            key in any::<[u8; 32]>(),
            round in any::<u64>(),
            len in 0usize..700,
            split in 0usize..700,
        ) {
            let split = split.min(len);
            let data: Vec<u8> = (0..len).map(|i| u8::try_from(i % 251).unwrap()).collect();
            let mut expected = data.clone();
            let mut reference = ReferenceChaCha20::like(&ChaCha20::for_round(&key, round));
            reference.apply_keystream(&mut expected);

            let mut got = data;
            let mut fast = ChaCha20::for_round(&key, round);
            let (a, b) = got.split_at_mut(split);
            fast.apply_keystream(a);
            fast.apply_keystream(b);
            prop_assert_eq!(got, expected);
        }
    }
}
