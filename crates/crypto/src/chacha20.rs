//! The ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! The DC-net phase of the flexible broadcast protocol requires each pair
//! of group members to share a *pad*: a pseudorandom byte string as long as
//! the message slot, known to both endpoints and nobody else. We realise
//! the pad as the keystream of ChaCha20 under the pairwise key derived via
//! [`crate::dh`] + [`crate::hkdf`], with the round number as nonce. The
//! same cipher doubles as the "pairwise encrypted channel" the paper assumes
//! between group members.
//!
//! # Examples
//!
//! ```
//! use fnp_crypto::chacha20::ChaCha20;
//!
//! let key = [0x42u8; 32];
//! let nonce = [0u8; 12];
//! let mut cipher = ChaCha20::new(&key, &nonce, 0);
//! let mut data = *b"a transaction to hide";
//! cipher.apply_keystream(&mut data);
//! // Decrypt by re-applying the identical keystream.
//! let mut cipher = ChaCha20::new(&key, &nonce, 0);
//! cipher.apply_keystream(&mut data);
//! assert_eq!(&data, b"a transaction to hide");
//! ```

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Size of one keystream block in bytes.
pub const BLOCK_LEN: usize = 64;

/// ChaCha20 stream cipher state.
///
/// The cipher produces a keystream in 64-byte blocks; [`ChaCha20::apply_keystream`]
/// XORs it into a buffer, and [`ChaCha20::keystream`] exposes raw keystream
/// bytes (used directly as DC-net pads).
#[derive(Clone, Debug)]
pub struct ChaCha20 {
    /// Cipher state words: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream block not yet consumed.
    buffer: [u8; BLOCK_LEN],
    /// Offset of the next unconsumed byte in `buffer`; `BLOCK_LEN` means empty.
    buffer_pos: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha20 {
    /// Creates a cipher instance from a 256-bit key, 96-bit nonce and initial
    /// block counter.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        Self {
            state,
            buffer: [0u8; BLOCK_LEN],
            buffer_pos: BLOCK_LEN,
        }
    }

    /// Convenience constructor: uses a 64-bit round/slot identifier as nonce.
    ///
    /// This is how DC-net pads bind to a round number without needing nonce
    /// bookkeeping: the round id occupies the final eight nonce bytes.
    pub fn for_round(key: &[u8; KEY_LEN], round: u64) -> Self {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[4..].copy_from_slice(&round.to_le_bytes());
        Self::new(key, &nonce, 0)
    }

    /// The ChaCha20 quarter round.
    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] ^= state[a];
        state[d] = state[d].rotate_left(16);

        state[c] = state[c].wrapping_add(state[d]);
        state[b] ^= state[c];
        state[b] = state[b].rotate_left(12);

        state[a] = state[a].wrapping_add(state[b]);
        state[d] ^= state[a];
        state[d] = state[d].rotate_left(8);

        state[c] = state[c].wrapping_add(state[d]);
        state[b] ^= state[c];
        state[b] = state[b].rotate_left(7);
    }

    /// Produces the next 64-byte keystream block and advances the counter.
    fn next_block(&mut self) {
        let mut working = self.state;
        for _ in 0..10 {
            // Column rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, &mixed) in working.iter().enumerate() {
            let word = mixed.wrapping_add(self.state[i]);
            self.buffer[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        self.buffer_pos = 0;
    }

    /// XORs the keystream into `data` in place (encrypts or decrypts).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.buffer_pos == BLOCK_LEN {
                self.next_block();
            }
            *byte ^= self.buffer[self.buffer_pos];
            self.buffer_pos += 1;
        }
    }

    /// Returns `len` raw keystream bytes.
    ///
    /// DC-net pads use the keystream directly: the pad shared by nodes *i*
    /// and *j* for a round is exactly this output under their pairwise key.
    pub fn keystream(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.apply_keystream(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 8439 §2.3.2 test vector: key 00..1f, nonce 00 00 00 09 00 00 00 4a
    /// 00 00 00 00, counter 1 — checked via the §2.4.2 encryption vector below,
    /// and the keystream-block vector here.
    #[test]
    fn rfc8439_block_function_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut cipher = ChaCha20::new(&key, &nonce, 1);
        let ks = cipher.keystream(64);
        assert_eq!(
            hex::encode(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// RFC 8439 §2.4.2: encryption of the "sunscreen" plaintext.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        let mut cipher = ChaCha20::new(&key, &nonce, 1);
        cipher.apply_keystream(&mut data);
        assert_eq!(
            hex::encode(&data),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let key = [0xabu8; 32];
        let nonce = [0x01u8; 12];
        let original: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let mut data = original.clone();

        ChaCha20::new(&key, &nonce, 7).apply_keystream(&mut data);
        assert_ne!(data, original);
        ChaCha20::new(&key, &nonce, 7).apply_keystream(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn keystream_is_deterministic_across_chunking() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let mut a = ChaCha20::new(&key, &nonce, 0);
        let whole = a.keystream(300);

        let mut b = ChaCha20::new(&key, &nonce, 0);
        let mut pieces = Vec::new();
        for len in [1usize, 63, 64, 65, 107] {
            pieces.extend(b.keystream(len));
        }
        assert_eq!(whole, pieces);
    }

    #[test]
    fn different_rounds_give_independent_pads() {
        let key = [5u8; 32];
        let pad_round_1 = ChaCha20::for_round(&key, 1).keystream(64);
        let pad_round_2 = ChaCha20::for_round(&key, 2).keystream(64);
        assert_ne!(pad_round_1, pad_round_2);
    }

    #[test]
    fn different_keys_give_independent_pads() {
        let pad_a = ChaCha20::for_round(&[1u8; 32], 1).keystream(64);
        let pad_b = ChaCha20::for_round(&[2u8; 32], 1).keystream(64);
        assert_ne!(pad_a, pad_b);
    }

    #[test]
    fn counter_overflow_wraps_without_panic() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        let mut cipher = ChaCha20::new(&key, &nonce, u32::MAX);
        // Crossing the 32-bit counter boundary must not panic.
        let ks = cipher.keystream(130);
        assert_eq!(ks.len(), 130);
    }
}
