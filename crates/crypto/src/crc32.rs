//! CRC-32 (IEEE 802.3 polynomial) checksums.
//!
//! The paper's DC-net construction (Fig. 4) notes that "message\[s\] should
//! carry CRC bits or a similar protection" so that *collisions* — two group
//! members transmitting in the same round — are detected: the XOR of two
//! valid messages almost never carries a valid checksum. The same protection
//! guards the 32-bit length announcements of the reservation optimisation
//! (§V-A).
//!
//! # Examples
//!
//! ```
//! use fnp_crypto::crc32::crc32;
//!
//! assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
//! ```

/// The reversed IEEE 802.3 polynomial.
const POLYNOMIAL: u32 = 0xEDB8_8320;

/// Computes the lookup table at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in (0u32..).zip(table.iter_mut()) {
            let mut crc = i;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLYNOMIAL
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Incremental CRC-32 computation.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a new CRC computation in the initial state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorbs `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let table = table();
        for &byte in data {
            let index = ((self.state ^ byte as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ table[index];
        }
    }

    /// Finishes the computation and returns the checksum.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finalize()
}

/// Appends a little-endian CRC-32 trailer to `payload`.
///
/// This is the framing used by DC-net slots: the slot content is
/// `payload || crc32(payload)`, allowing any group member to detect that a
/// recovered slot is garbled (most likely by a collision).
pub fn append_crc(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(payload.len() + 4);
    framed.extend_from_slice(payload);
    framed.extend_from_slice(&crc32(payload).to_le_bytes());
    framed
}

/// Verifies and strips a little-endian CRC-32 trailer.
///
/// Returns the payload without the trailer if the checksum matches, `None`
/// otherwise (including when the input is shorter than four bytes).
pub fn verify_and_strip_crc(framed: &[u8]) -> Option<&[u8]> {
    if framed.len() < 4 {
        return None;
    }
    let (payload, trailer) = framed.split_at(framed.len() - 4);
    let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    if crc32(payload) == expected {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_standard() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut crc = Crc32::new();
        crc.update(&data[..100]);
        crc.update(&data[100..]);
        assert_eq!(crc.finalize(), crc32(&data));
    }

    #[test]
    fn frame_round_trip() {
        let payload = b"spend 2 tokens";
        let framed = append_crc(payload);
        assert_eq!(framed.len(), payload.len() + 4);
        assert_eq!(verify_and_strip_crc(&framed), Some(payload.as_slice()));
    }

    #[test]
    fn corrupted_frame_rejected() {
        let mut framed = append_crc(b"spend 2 tokens");
        framed[3] ^= 0x01;
        assert_eq!(verify_and_strip_crc(&framed), None);
    }

    #[test]
    fn short_frame_rejected() {
        assert_eq!(verify_and_strip_crc(&[1, 2, 3]), None);
    }

    #[test]
    fn xor_of_two_framed_messages_is_detected_as_collision() {
        // This is exactly the DC-net collision scenario: two senders XOR
        // their framed messages together on the shared channel.
        let a = append_crc(b"first transaction payload!");
        let b = append_crc(b"second transaction payload");
        assert_eq!(a.len(), b.len());
        let collided: Vec<u8> = a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect();
        assert_eq!(verify_and_strip_crc(&collided), None);
    }

    #[test]
    fn empty_payload_frame_round_trips() {
        let framed = append_crc(b"");
        assert_eq!(verify_and_strip_crc(&framed), Some(b"".as_slice()));
    }
}
