//! Conformance of the from-scratch primitives against published test
//! vectors: SHA-256 (NIST FIPS 180-4 examples), HMAC-SHA-256 (RFC 4231),
//! HKDF-SHA-256 (RFC 5869 appendix A) and ChaCha20 (RFC 8439).

use fnp_crypto::hex;
use fnp_crypto::{hkdf_sha256, hmac_sha256, ChaCha20, HmacSha256, Sha256};

fn unhex(text: &str) -> Vec<u8> {
    hex::decode(text).expect("test vector hex")
}

// ---------------------------------------------------------------------------
// SHA-256 — FIPS 180-4 / NIST CAVP example vectors.
// ---------------------------------------------------------------------------

#[test]
fn sha256_nist_vectors() {
    let cases: &[(&[u8], &str)] = &[
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
              ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];
    for (message, digest) in cases {
        assert_eq!(
            Sha256::digest(message).to_vec(),
            unhex(digest),
            "SHA-256({:?})",
            String::from_utf8_lossy(message)
        );
    }
}

#[test]
fn sha256_million_a() {
    let mut hasher = Sha256::new();
    let chunk = [b'a'; 1000];
    for _ in 0..1000 {
        hasher.update(&chunk);
    }
    assert_eq!(
        hasher.finalize().to_vec(),
        unhex("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
    );
}

#[test]
fn sha256_streaming_matches_one_shot_at_block_boundaries() {
    // 55/56/64/65 bytes straddle the padding edge cases of the 64-byte block.
    for len in [1usize, 55, 56, 63, 64, 65, 127, 128, 1000] {
        let message = vec![0x5au8; len];
        let mut streaming = Sha256::new();
        for byte in &message {
            streaming.update(std::slice::from_ref(byte));
        }
        assert_eq!(
            streaming.finalize(),
            Sha256::digest(&message),
            "length {len}"
        );
    }
}

// ---------------------------------------------------------------------------
// HMAC-SHA-256 — RFC 4231 test cases 1–7.
// ---------------------------------------------------------------------------

#[test]
fn hmac_sha256_rfc4231_vectors() {
    struct Case {
        key: Vec<u8>,
        data: Vec<u8>,
        mac: &'static str,
        truncate_to: usize,
    }
    let cases = [
        // Test case 1
        Case {
            key: vec![0x0b; 20],
            data: b"Hi There".to_vec(),
            mac: "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
            truncate_to: 32,
        },
        // Test case 2: key shorter than block size
        Case {
            key: b"Jefe".to_vec(),
            data: b"what do ya want for nothing?".to_vec(),
            mac: "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
            truncate_to: 32,
        },
        // Test case 3: combined key/data of 0xaa / 0xdd
        Case {
            key: vec![0xaa; 20],
            data: vec![0xdd; 50],
            mac: "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
            truncate_to: 32,
        },
        // Test case 4: counting key
        Case {
            key: unhex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
            data: vec![0xcd; 50],
            mac: "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
            truncate_to: 32,
        },
        // Test case 5: RFC truncates the output to 128 bits
        Case {
            key: vec![0x0c; 20],
            data: b"Test With Truncation".to_vec(),
            mac: "a3b6167473100ee06e0c796c2955552b",
            truncate_to: 16,
        },
        // Test case 6: key larger than block size
        Case {
            key: vec![0xaa; 131],
            data: b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            mac: "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
            truncate_to: 32,
        },
        // Test case 7: key and data both larger than block size
        Case {
            key: vec![0xaa; 131],
            data: b"This is a test using a larger than block-size key and a larger \
                    than block-size data. The key needs to be hashed before being \
                    used by the HMAC algorithm."
                .to_vec(),
            mac: "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
            truncate_to: 32,
        },
    ];
    for (index, case) in cases.iter().enumerate() {
        let mac = hmac_sha256(&case.key, &case.data);
        assert_eq!(
            mac[..case.truncate_to].to_vec(),
            unhex(case.mac),
            "RFC 4231 test case {}",
            index + 1
        );
    }
}

#[test]
fn hmac_incremental_matches_one_shot() {
    let key = vec![0xaa; 131];
    let data: Vec<u8> = (0u16..300).map(|i| i as u8).collect();
    let mut mac = HmacSha256::new(&key);
    for chunk in data.chunks(7) {
        mac.update(chunk);
    }
    assert_eq!(mac.finalize(), hmac_sha256(&key, &data));
}

// ---------------------------------------------------------------------------
// HKDF-SHA-256 — RFC 5869 appendix A.
// ---------------------------------------------------------------------------

#[test]
fn hkdf_rfc5869_case_1_basic() {
    let ikm = vec![0x0b; 22];
    let salt = unhex("000102030405060708090a0b0c");
    let info = unhex("f0f1f2f3f4f5f6f7f8f9");
    // HKDF-Extract is HMAC(salt, ikm); check the intermediate PRK too.
    assert_eq!(
        hmac_sha256(&salt, &ikm).to_vec(),
        unhex("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"),
    );
    let okm = hkdf_sha256(Some(&salt), &ikm, &info, 42).unwrap();
    assert_eq!(
        okm,
        unhex(
            "3cb25f25faacd57a90434f64d0362f2a\
             2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        ),
    );
}

#[test]
fn hkdf_rfc5869_case_2_long_inputs() {
    let ikm: Vec<u8> = (0x00..=0x4f).collect();
    let salt: Vec<u8> = (0x60..=0xaf).collect();
    let info: Vec<u8> = (0xb0..=0xff).collect();
    let okm = hkdf_sha256(Some(&salt), &ikm, &info, 82).unwrap();
    assert_eq!(
        okm,
        unhex(
            "b11e398dc80327a1c8e7f78c596a4934\
             4f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09\
             da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f\
             1d87"
        ),
    );
}

#[test]
fn hkdf_rfc5869_case_3_zero_salt_and_info() {
    let ikm = vec![0x0b; 22];
    assert_eq!(
        hmac_sha256(&[0u8; 32], &ikm).to_vec(),
        unhex("19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04"),
    );
    let okm = hkdf_sha256(None, &ikm, &[], 42).unwrap();
    assert_eq!(
        okm,
        unhex(
            "8da4e775a563c18f715f802a063c5a31\
             b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        ),
    );
}

#[test]
fn hkdf_rejects_oversized_output() {
    // RFC 5869: L must be at most 255 * HashLen.
    assert!(hkdf_sha256(None, b"ikm", b"", 255 * 32).is_ok());
    assert!(hkdf_sha256(None, b"ikm", b"", 255 * 32 + 1).is_err());
}

// ---------------------------------------------------------------------------
// ChaCha20 — RFC 8439 §2.3.2 (block function) and §2.4.2 (encryption).
// ---------------------------------------------------------------------------

fn rfc8439_key() -> [u8; 32] {
    let mut key = [0u8; 32];
    for (i, byte) in key.iter_mut().enumerate() {
        *byte = i as u8;
    }
    key
}

#[test]
fn chacha20_rfc8439_block_function() {
    let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
    let mut cipher = ChaCha20::new(&rfc8439_key(), &nonce, 1);
    assert_eq!(
        cipher.keystream(64),
        unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4\
             c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2\
             b5129cd1de164eb9cbd083e8a2503c4e"
        ),
    );
}

#[test]
fn chacha20_rfc8439_encryption() {
    let nonce: [u8; 12] = unhex("000000000000004a00000000").try_into().unwrap();
    let plaintext: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could \
                             offer you only one tip for the future, sunscreen would \
                             be it.";
    let mut data = plaintext.to_vec();
    ChaCha20::new(&rfc8439_key(), &nonce, 1).apply_keystream(&mut data);
    assert_eq!(
        data,
        unhex(
            "6e2e359a2568f98041ba0728dd0d6981\
             e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b357\
             1639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e\
             52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42\
             874d"
        ),
    );
    // Decryption is the same keystream XOR.
    ChaCha20::new(&rfc8439_key(), &nonce, 1).apply_keystream(&mut data);
    assert_eq!(data, plaintext);
}

#[test]
fn chacha20_rfc8439_multi_block_keystream_counter_1() {
    // RFC 8439 §2.4.2's keystream starts at block counter 1 and spans two
    // blocks. Generate four blocks in one call — exercising the interleaved
    // multi-block engine — and check the RFC-published prefix: the published
    // ciphertext equals plaintext ⊕ keystream.
    let nonce: [u8; 12] = unhex("000000000000004a00000000").try_into().unwrap();
    let mut keystream = [0u8; 256];
    ChaCha20::new(&rfc8439_key(), &nonce, 1).keystream_into(&mut keystream);
    let plaintext: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could \
                             offer you only one tip for the future, sunscreen would \
                             be it.";
    let xored: Vec<u8> = plaintext
        .iter()
        .zip(&keystream)
        .map(|(p, k)| p ^ k)
        .collect();
    assert_eq!(
        xored,
        unhex(
            "6e2e359a2568f98041ba0728dd0d6981\
             e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b357\
             1639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e\
             52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42\
             874d"
        ),
    );
}

#[test]
fn chacha20_keystream_is_position_independent() {
    let nonce = [7u8; 12];
    let mut whole = ChaCha20::new(&rfc8439_key(), &nonce, 0);
    let expected = whole.keystream(300);
    let mut pieces = ChaCha20::new(&rfc8439_key(), &nonce, 0);
    let mut got = Vec::new();
    for take in [1usize, 63, 64, 65, 100, 7] {
        got.extend(pieces.keystream(take));
    }
    assert_eq!(got, expected);
}
