//! Startup cost model for the announcement phase (experiment E11).
//!
//! The paper's argument against Dissent-style systems for blockchain
//! transaction dissemination is quantitative: "The announcement round causes
//! a startup phase scaling linearly in the number of group members and
//! becoming noticeably slow, e.g., 30 seconds, for group sizes of 8 to 12.
//! This latency might not be acceptable in real world blockchain
//! applications." (§III-B).
//!
//! We cannot run the original Dissent implementation (closed testbed, 2010-era
//! hardware), so this module substitutes an analytic latency model whose
//! constants are calibrated to reproduce the reported behaviour — tens of
//! seconds for groups of 8–12 members — while keeping the *structure* of the
//! cost faithful to the protocol implemented in [`crate::shuffle`]:
//!
//! * the shuffle is inherently **serial**: member `i+1` cannot start before
//!   member `i` finished permuting and stripping its layer, so latency is the
//!   sum of `k` per-member terms, each of which processes `k` items — the
//!   public-key work per member is therefore `Θ(k)` and the wall-clock of the
//!   whole announcement phase `Θ(k²)` with a large constant (asymmetric
//!   decryptions), which over the 8–12 member range reported in the paper is
//!   well approximated by (and was reported as) "scaling linearly";
//! * every hand-off additionally pays one network round trip.
//!
//! The default constants model 2010-era 2048-bit RSA/ElGamal layer
//! decryptions (~25 ms each, two per item for decrypt + verify) and a 100 ms
//! WAN round trip, which lands the k = 8…12 range at roughly 17–48 seconds
//! and k = 10 at ≈ 31 s, matching the paper's "e.g., 30 seconds" anchor.
//! `EXPERIMENTS.md` records the calibration and the measured sweep.

/// Latency model for the serial announcement shuffle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StartupCostModel {
    /// Wall-clock cost, in milliseconds, of processing a single onion item at
    /// one member (public-key decryption plus integrity verification).
    pub per_item_crypto_ms: f64,
    /// Network round-trip time, in milliseconds, paid once per serial
    /// hand-off between consecutive shuffle members.
    pub handoff_rtt_ms: f64,
    /// Fixed per-round setup cost in milliseconds (ephemeral key generation
    /// and distribution, performed in parallel by all members).
    pub setup_ms: f64,
}

impl Default for StartupCostModel {
    fn default() -> Self {
        Self {
            per_item_crypto_ms: 250.0,
            handoff_rtt_ms: 100.0,
            setup_ms: 500.0,
        }
    }
}

impl StartupCostModel {
    /// A model for modern hardware (hardware-accelerated public-key
    /// operations), used by the ablation sweep to show that the *shape* of
    /// the scaling — not the 2010 constants — is what rules the approach out
    /// for latency-sensitive broadcast.
    pub fn modern() -> Self {
        Self {
            per_item_crypto_ms: 5.0,
            handoff_rtt_ms: 50.0,
            setup_ms: 100.0,
        }
    }

    /// Estimates the startup latency of the announcement phase for a group of
    /// `k` members.
    pub fn estimate(&self, k: usize) -> StartupEstimate {
        let k_f = k as f64;
        // Each of the k serial steps decrypts k items and pays one hand-off.
        let serial_ms = k_f * (k_f * self.per_item_crypto_ms + self.handoff_rtt_ms);
        let latency_ms = self.setup_ms + serial_ms;
        StartupEstimate {
            group_size: k,
            latency_ms,
            serial_steps: k,
            crypto_operations: (k * k) as u64,
        }
    }
}

/// Estimated startup cost of one announcement phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StartupEstimate {
    /// Group size the estimate refers to.
    pub group_size: usize,
    /// Estimated wall-clock latency in milliseconds.
    pub latency_ms: f64,
    /// Number of serial hand-off steps (equals the group size).
    pub serial_steps: usize,
    /// Total public-key operations across the group (k² layer strips).
    pub crypto_operations: u64,
}

impl StartupEstimate {
    /// Latency in seconds, the unit the paper quotes.
    pub fn latency_seconds(&self) -> f64 {
        self.latency_ms / 1000.0
    }
}

/// Convenience wrapper: startup latency in milliseconds under the default
/// (paper-calibrated) cost model.
pub fn startup_latency_ms(k: usize) -> f64 {
    StartupCostModel::default().estimate(k).latency_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_group_sizes_take_tens_of_seconds() {
        // §III-B: "noticeably slow, e.g., 30 seconds, for group sizes of 8 to 12".
        let model = StartupCostModel::default();
        let at_8 = model.estimate(8).latency_seconds();
        let at_10 = model.estimate(10).latency_seconds();
        let at_12 = model.estimate(12).latency_seconds();
        assert!(
            at_8 > 10.0,
            "k=8 should already be noticeably slow, got {at_8}"
        );
        assert!(
            (20.0..45.0).contains(&at_10),
            "k=10 should be ≈30 s, got {at_10}"
        );
        assert!(at_12 > at_10 && at_10 > at_8, "latency must grow with k");
        assert!(
            at_12 < 90.0,
            "k=12 stays within the same order of magnitude, got {at_12}"
        );
    }

    #[test]
    fn small_groups_are_fast() {
        let model = StartupCostModel::default();
        assert!(model.estimate(3).latency_seconds() < 10.0);
    }

    #[test]
    fn modern_hardware_is_faster_but_still_grows_superlinearly() {
        let model = StartupCostModel::modern();
        let at_8 = model.estimate(8).latency_ms;
        let at_16 = model.estimate(16).latency_ms;
        assert!(at_8 < StartupCostModel::default().estimate(8).latency_ms);
        // Doubling the group size more than doubles the latency.
        assert!(at_16 > 2.0 * at_8);
    }

    #[test]
    fn crypto_operation_count_is_quadratic() {
        let model = StartupCostModel::default();
        assert_eq!(model.estimate(4).crypto_operations, 16);
        assert_eq!(model.estimate(8).crypto_operations, 64);
    }

    #[test]
    fn convenience_wrapper_matches_the_default_model() {
        assert_eq!(
            startup_latency_ms(9),
            StartupCostModel::default().estimate(9).latency_ms
        );
    }
}
