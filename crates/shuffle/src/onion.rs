//! Layered ("onion") hybrid encryption for the Dissent-style shuffle.
//!
//! Every shuffle member publishes an ephemeral *layer key* for the round.
//! A submitter wraps its fixed-size plaintext in one encryption layer per
//! member, outermost layer first removable: member 0 strips the outer layer,
//! member 1 the next, and so on, until the innermost plaintext is exposed by
//! the final member.
//!
//! A single layer is a small hybrid-encryption construction over the
//! `fnp-crypto` primitives:
//!
//! 1. the submitter generates a fresh ephemeral Diffie–Hellman key pair,
//! 2. derives a 256-bit key from the DH shared secret with the layer owner's
//!    public key via HKDF,
//! 3. encrypts the inner item with ChaCha20 under that key, and
//! 4. appends a truncated HMAC-SHA256 tag so the layer owner can verify the
//!    layer before stripping it (Dissent's go/no-go accountability needs
//!    every member to detect tampering).
//!
//! The wire format of one layer is
//! `ephemeral-public-key (8 bytes) ‖ ciphertext ‖ tag (16 bytes)`, so each
//! layer adds [`LAYER_OVERHEAD`] bytes. All submissions are padded to the
//! same slot size *before* layering, which keeps every onion in a batch the
//! same length and prevents linking by size.

use fnp_crypto::dh::{KeyPair, PublicKey};
use fnp_crypto::hkdf::Hkdf;
use fnp_crypto::hmac::{constant_time_eq, hmac_sha256};
use fnp_crypto::ChaCha20;
use rand::Rng;

/// Bytes added by a single encryption layer: 8-byte ephemeral public key plus
/// a 16-byte truncated HMAC tag.
pub const LAYER_OVERHEAD: usize = 8 + TAG_LEN;

/// Length of the truncated HMAC-SHA256 tag carried by each layer.
pub const TAG_LEN: usize = 16;

/// Domain-separation label for the layer key derivation.
const LAYER_KEY_INFO: &[u8] = b"fnp-shuffle layer key v1";
/// Domain-separation label for the layer tag key derivation.
const LAYER_TAG_INFO: &[u8] = b"fnp-shuffle layer tag v1";

/// A member's ephemeral key pair for one shuffle round.
///
/// Thin wrapper around [`fnp_crypto::dh::KeyPair`] so the shuffle API cannot
/// accidentally mix long-term identity keys with per-round layer keys.
#[derive(Clone, Debug)]
pub struct LayerKeyPair {
    keys: KeyPair,
}

impl LayerKeyPair {
    /// Generates a fresh ephemeral layer key pair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            keys: KeyPair::generate(rng),
        }
    }

    /// Deterministic constructor used by tests.
    pub fn from_secret(secret: u64) -> Self {
        Self {
            keys: KeyPair::from_secret(secret),
        }
    }

    /// The public half, published to all submitters at round start.
    pub fn public_key(&self) -> PublicKey {
        self.keys.public_key()
    }

    /// Strips one layer addressed to this key pair.
    ///
    /// # Errors
    ///
    /// Returns [`LayerError`] if the item is too short to contain a layer or
    /// the authentication tag does not verify.
    pub fn strip_layer(&self, item: &OnionItem) -> Result<OnionItem, LayerError> {
        let bytes = &item.0;
        if bytes.len() < LAYER_OVERHEAD {
            return Err(LayerError::Truncated { len: bytes.len() });
        }
        let (header, rest) = bytes.split_at(8);
        let (ciphertext, tag) = rest.split_at(rest.len() - TAG_LEN);
        let ephemeral = PublicKey(u64::from_le_bytes(
            header.try_into().expect("8-byte header"),
        ));
        let (enc_key, tag_key) = derive_layer_keys(&self.keys, &ephemeral);
        let expected = truncated_tag(&tag_key, &bytes[..bytes.len() - TAG_LEN]);
        if !constant_time_eq(&expected, tag) {
            return Err(LayerError::BadTag);
        }
        let mut plaintext = vec![0u8; ciphertext.len()];
        ChaCha20::for_round(&enc_key, 0).xor_keystream_into(&mut plaintext, ciphertext);
        Ok(OnionItem(plaintext))
    }
}

/// One item travelling through the shuffle: either a fully or partially
/// layered ciphertext, or (after the last layer is stripped) the padded
/// plaintext.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct OnionItem(pub Vec<u8>);

impl OnionItem {
    /// Wraps a padded plaintext in one encryption layer per entry of
    /// `layer_owners`, **innermost last**: the first element of
    /// `layer_owners` owns the outermost layer and therefore strips first.
    pub fn seal<R: Rng + ?Sized>(
        plaintext: Vec<u8>,
        layer_owners: &[PublicKey],
        rng: &mut R,
    ) -> Self {
        let mut item = OnionItem(plaintext);
        for owner in layer_owners.iter().rev() {
            item = item.add_layer(owner, rng);
        }
        item
    }

    /// Adds a single layer addressed to `owner`.
    pub fn add_layer<R: Rng + ?Sized>(&self, owner: &PublicKey, rng: &mut R) -> Self {
        let ephemeral = KeyPair::generate(rng);
        let (enc_key, tag_key) = derive_layer_keys(&ephemeral, owner);
        let header = ephemeral.public_key().0.to_le_bytes();
        // Encrypt straight into the layered item: one fused keystream pass
        // writes `inner XOR keystream` after the header, with no
        // intermediate ciphertext buffer, and the tag is computed over the
        // contiguous header‖ciphertext prefix.
        let mut bytes = Vec::with_capacity(self.0.len() + LAYER_OVERHEAD);
        bytes.extend_from_slice(&header);
        bytes.resize(header.len() + self.0.len(), 0);
        ChaCha20::for_round(&enc_key, 0).xor_keystream_into(&mut bytes[header.len()..], &self.0);
        let tag = truncated_tag(&tag_key, &bytes);
        bytes.extend_from_slice(&tag);
        OnionItem(bytes)
    }

    /// Length in bytes of the (possibly layered) item.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the item carries no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw bytes of the item.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the item and returns its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }
}

/// Errors surfaced while stripping an onion layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerError {
    /// The item is shorter than one layer's framing.
    Truncated {
        /// Observed item length in bytes.
        len: usize,
    },
    /// The layer's authentication tag did not verify.
    BadTag,
}

impl std::fmt::Display for LayerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayerError::Truncated { len } => {
                write!(
                    f,
                    "onion item of {len} bytes is too short to contain a layer"
                )
            }
            LayerError::BadTag => write!(f, "onion layer authentication tag mismatch"),
        }
    }
}

impl std::error::Error for LayerError {}

/// Derives the encryption and tag keys shared between the ephemeral key pair
/// and the layer owner's public key.
///
/// Both the submitter (who knows the ephemeral secret) and the layer owner
/// (who knows its own secret and reads the ephemeral public key from the
/// header) arrive at the same pair of keys because the DH shared secret is
/// symmetric.
fn derive_layer_keys(own: &KeyPair, peer: &PublicKey) -> ([u8; 32], [u8; 32]) {
    let shared = own.shared_secret(peer);
    let hkdf = Hkdf::extract(Some(b"fnp-shuffle"), &shared);
    let enc_key: [u8; 32] = hkdf.derive_key(LAYER_KEY_INFO).expect("32-byte output");
    let tag_key: [u8; 32] = hkdf.derive_key(LAYER_TAG_INFO).expect("32-byte output");
    (enc_key, tag_key)
}

/// Computes the truncated HMAC tag over a layer's authenticated prefix
/// (the contiguous `header ‖ ciphertext` bytes — both callers already hold
/// them in one slice, so no concatenation buffer is needed).
fn truncated_tag(tag_key: &[u8; 32], authenticated: &[u8]) -> [u8; TAG_LEN] {
    let full = hmac_sha256(tag_key, authenticated);
    let mut tag = [0u8; TAG_LEN];
    tag.copy_from_slice(&full[..TAG_LEN]);
    tag
}

/// Pads `payload` to exactly `slot_len` bytes with a 2-byte length prefix so
/// [`unpad`] can recover the original message.
///
/// Returns `None` if the payload (plus prefix) does not fit.
pub fn pad(payload: &[u8], slot_len: usize) -> Option<Vec<u8>> {
    if payload.len() + 2 > slot_len || payload.len() > u16::MAX as usize {
        return None;
    }
    let mut padded = Vec::with_capacity(slot_len);
    padded.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    padded.extend_from_slice(payload);
    padded.resize(slot_len, 0);
    Some(padded)
}

/// Inverse of [`pad`]. Returns `None` if the framing is inconsistent.
pub fn unpad(padded: &[u8]) -> Option<Vec<u8>> {
    if padded.len() < 2 {
        return None;
    }
    let len = u16::from_le_bytes([padded[0], padded[1]]) as usize;
    if padded.len() < 2 + len {
        return None;
    }
    Some(padded[2..2 + len].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_layer_roundtrips() {
        let mut rng = StdRng::seed_from_u64(1);
        let owner = LayerKeyPair::generate(&mut rng);
        let plaintext = pad(b"hello", 32).unwrap();
        let sealed = OnionItem(plaintext.clone()).add_layer(&owner.public_key(), &mut rng);
        assert_eq!(sealed.len(), plaintext.len() + LAYER_OVERHEAD);
        let stripped = owner.strip_layer(&sealed).unwrap();
        assert_eq!(stripped.into_bytes(), plaintext);
    }

    #[test]
    fn layers_strip_in_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let owners: Vec<LayerKeyPair> = (0..5).map(|_| LayerKeyPair::generate(&mut rng)).collect();
        let publics: Vec<PublicKey> = owners.iter().map(LayerKeyPair::public_key).collect();
        let plaintext = pad(b"a transaction", 64).unwrap();
        let mut item = OnionItem::seal(plaintext.clone(), &publics, &mut rng);
        for owner in &owners {
            item = owner.strip_layer(&item).unwrap();
        }
        assert_eq!(item.into_bytes(), plaintext);
    }

    #[test]
    fn stripping_out_of_order_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let owners: Vec<LayerKeyPair> = (0..3).map(|_| LayerKeyPair::generate(&mut rng)).collect();
        let publics: Vec<PublicKey> = owners.iter().map(LayerKeyPair::public_key).collect();
        let item = OnionItem::seal(pad(b"x", 16).unwrap(), &publics, &mut rng);
        // Member 1 owns the *second* layer; trying to strip the outermost
        // layer with its key must fail the tag check.
        assert_eq!(owners[1].strip_layer(&item), Err(LayerError::BadTag));
    }

    #[test]
    fn tampering_is_detected() {
        let mut rng = StdRng::seed_from_u64(4);
        let owner = LayerKeyPair::generate(&mut rng);
        let mut sealed =
            OnionItem(pad(b"payload", 32).unwrap()).add_layer(&owner.public_key(), &mut rng);
        let mid = sealed.0.len() / 2;
        sealed.0[mid] ^= 0xff;
        assert_eq!(owner.strip_layer(&sealed), Err(LayerError::BadTag));
    }

    #[test]
    fn truncated_items_are_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let owner = LayerKeyPair::generate(&mut rng);
        let short = OnionItem(vec![0u8; LAYER_OVERHEAD - 1]);
        assert!(matches!(
            owner.strip_layer(&short),
            Err(LayerError::Truncated { .. })
        ));
    }

    #[test]
    fn pad_rejects_oversized_payloads() {
        assert!(pad(&[0u8; 31], 32).is_none());
        assert!(pad(&[0u8; 30], 32).is_some());
    }

    proptest! {
        #[test]
        fn pad_unpad_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..200), extra in 2usize..64) {
            let slot_len = payload.len() + extra;
            let padded = pad(&payload, slot_len).unwrap();
            prop_assert_eq!(padded.len(), slot_len);
            prop_assert_eq!(unpad(&padded).unwrap(), payload);
        }

        #[test]
        fn onion_roundtrips_for_any_depth(
            payload in proptest::collection::vec(any::<u8>(), 1..100),
            depth in 1usize..8,
            seed in any::<u64>()
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let owners: Vec<LayerKeyPair> = (0..depth).map(|_| LayerKeyPair::generate(&mut rng)).collect();
            let publics: Vec<PublicKey> = owners.iter().map(LayerKeyPair::public_key).collect();
            let slot_len = payload.len() + 2;
            let plaintext = pad(&payload, slot_len).unwrap();
            let mut item = OnionItem::seal(plaintext, &publics, &mut rng);
            prop_assert_eq!(item.len(), slot_len + depth * LAYER_OVERHEAD);
            for owner in &owners {
                item = owner.strip_layer(&item).unwrap();
            }
            prop_assert_eq!(unpad(item.as_bytes()).unwrap(), payload);
        }
    }
}
