//! The sequential verifiable shuffle at the heart of the Dissent baseline.
//!
//! All `k` members of a group submit one fixed-size item each. The members
//! then take turns, in a publicly known order: member 0 receives the batch of
//! `k` onion-encrypted items, permutes it uniformly at random, strips its own
//! encryption layer from every item, and forwards the batch to member 1, and
//! so on. After the last member has shuffled, the batch contains the padded
//! plaintexts in an order that no single member can link back to the
//! submitters — **as long as at least one shuffler is honest**, because that
//! shuffler's secret permutation is unknown to everyone else.
//!
//! The paper's honest-but-curious attacker participates in the shuffle and
//! records everything it sees, but follows the protocol. The
//! [`ShuffleReport`] therefore also exposes, per member, the mapping that the
//! member *could* observe (its own input/output permutation), which the
//! adversary crate uses to confirm that colluding subsets short of the full
//! group learn nothing about the submitter of a published plaintext.
//!
//! Accountability is modelled by the Dissent go/no-go check: after the final
//! batch is published, every member verifies that its own plaintext survived
//! the shuffle; [`ShuffleReport::all_present`] reflects that vote.

use crate::onion::{pad, unpad, LayerError, LayerKeyPair, OnionItem, LAYER_OVERHEAD};
use fnp_crypto::dh::PublicKey;
use rand::seq::SliceRandom;
use rand::Rng;

/// One member of the shuffle group: the ephemeral layer keys plus the
/// member's submission for the round.
#[derive(Clone, Debug)]
pub struct ShuffleMember {
    /// Index of the member within the round's fixed shuffle order.
    index: usize,
    /// Ephemeral layer key pair for this round.
    layer_keys: LayerKeyPair,
    /// The padded plaintext this member submitted (kept to run the go/no-go
    /// check at the end of the round).
    submitted: Option<Vec<u8>>,
}

impl ShuffleMember {
    /// Creates member `index` with fresh ephemeral keys.
    pub fn new<R: Rng + ?Sized>(index: usize, rng: &mut R) -> Self {
        Self {
            index,
            layer_keys: LayerKeyPair::generate(rng),
            submitted: None,
        }
    }

    /// The member's position in the shuffle order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The member's round public key, published before submissions.
    pub fn public_key(&self) -> PublicKey {
        self.layer_keys.public_key()
    }
}

/// Errors surfaced while running a shuffle round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShuffleError {
    /// The group is too small to provide any anonymity.
    GroupTooSmall {
        /// Observed group size.
        size: usize,
    },
    /// The number of submissions does not match the group size.
    WrongSubmissionCount {
        /// Submissions received.
        received: usize,
        /// Group size expected.
        expected: usize,
    },
    /// A submission exceeds the round's slot size.
    PayloadTooLarge {
        /// Index of the offending submitter.
        member: usize,
        /// Payload length in bytes.
        len: usize,
        /// Maximum payload length for the configured slot.
        max: usize,
    },
    /// A layer failed to strip during the shuffle (tampering or corruption).
    Layer {
        /// Member whose layer failed.
        member: usize,
        /// Underlying layer error.
        error: LayerError,
    },
}

impl std::fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShuffleError::GroupTooSmall { size } => {
                write!(f, "shuffle group of size {size} cannot provide anonymity")
            }
            ShuffleError::WrongSubmissionCount { received, expected } => write!(
                f,
                "received {received} submissions for a group of {expected} members"
            ),
            ShuffleError::PayloadTooLarge { member, len, max } => write!(
                f,
                "member {member} submitted {len} bytes but the slot only fits {max}"
            ),
            ShuffleError::Layer { member, error } => {
                write!(f, "member {member} failed to strip its layer: {error}")
            }
        }
    }
}

impl std::error::Error for ShuffleError {}

/// Outcome of one shuffle round.
#[derive(Clone, Debug)]
pub struct ShuffleReport {
    /// The published plaintexts, in shuffled (unlinkable) order, with padding
    /// removed.
    pub published: Vec<Vec<u8>>,
    /// Whether every member found its own submission in the published batch
    /// (the Dissent go/no-go vote).
    pub all_present: bool,
    /// Point-to-point messages exchanged: key publication, submissions, the
    /// serial batch hand-offs and the final broadcast of the result.
    pub messages_sent: u64,
    /// Bytes carried by those messages.
    pub bytes_sent: u64,
    /// Slot size used for padding (excluding layer overhead).
    pub slot_len: usize,
    /// Number of serial hand-off steps (one per member), which dominates the
    /// round's latency because they cannot be parallelised.
    pub serial_steps: usize,
}

impl ShuffleReport {
    /// Number of published items (equals the group size when the round is
    /// well formed).
    pub fn len(&self) -> usize {
        self.published.len()
    }

    /// Whether the round produced no output at all.
    pub fn is_empty(&self) -> bool {
        self.published.is_empty()
    }

    /// Whether a particular plaintext appears in the published batch.
    pub fn contains(&self, payload: &[u8]) -> bool {
        self.published.iter().any(|p| p == payload)
    }
}

/// Runs one complete shuffle round in memory.
///
/// `submissions[i]` is member `i`'s payload; `None` submits an empty cover
/// message so that silent members are indistinguishable from senders. All
/// payloads are padded to `slot_len` bytes before layering.
///
/// # Errors
///
/// Returns an error if the group is smaller than two members, the submission
/// list does not match the group, or a payload does not fit the slot.
pub fn run_shuffle<R: Rng + ?Sized>(
    slot_len: usize,
    submissions: &[Option<Vec<u8>>],
    rng: &mut R,
) -> Result<ShuffleReport, ShuffleError> {
    let k = submissions.len();
    if k < 2 {
        return Err(ShuffleError::GroupTooSmall { size: k });
    }

    // Round setup: every member generates its ephemeral layer keys and
    // publishes the public half (k broadcast messages of 8 bytes each; we
    // count them as k·(k−1) point-to-point messages to stay consistent with
    // the DC-net accounting in `fnp-dcnet`).
    let mut members: Vec<ShuffleMember> = (0..k).map(|i| ShuffleMember::new(i, rng)).collect();
    let publics: Vec<PublicKey> = members.iter().map(ShuffleMember::public_key).collect();
    let mut messages_sent = (k as u64) * (k as u64 - 1);
    let mut bytes_sent = messages_sent * 8;

    // Submission: every member pads and onion-encrypts its payload and sends
    // it to the first shuffler.
    let max_payload = slot_len.saturating_sub(2);
    let mut batch: Vec<OnionItem> = Vec::with_capacity(k);
    for (index, submission) in submissions.iter().enumerate() {
        let payload = submission.clone().unwrap_or_default();
        if payload.len() > max_payload {
            return Err(ShuffleError::PayloadTooLarge {
                member: index,
                len: payload.len(),
                max: max_payload,
            });
        }
        let padded = pad(&payload, slot_len).expect("payload fits after the size check");
        members[index].submitted = Some(padded.clone());
        batch.push(OnionItem::seal(padded, &publics, rng));
    }
    messages_sent += k as u64;
    bytes_sent += (k as u64) * (slot_len + k * LAYER_OVERHEAD) as u64;

    // The serial shuffle: each member permutes the batch and strips its own
    // layer, then hands the batch to the next member.
    for (position, member) in members.iter().enumerate() {
        batch.shuffle(rng);
        batch = batch
            .iter()
            .map(|item| member.layer_keys.strip_layer(item))
            .collect::<Result<_, _>>()
            .map_err(|error| ShuffleError::Layer {
                member: position,
                error,
            })?;
        // Hand-off to the next member (or final broadcast after the last).
        let item_len = batch.first().map(OnionItem::len).unwrap_or(0) as u64;
        if position + 1 < k {
            messages_sent += 1;
            bytes_sent += item_len * k as u64;
        } else {
            // Final broadcast of the cleartext batch to every member.
            messages_sent += k as u64 - 1;
            bytes_sent += (k as u64 - 1) * item_len * k as u64;
        }
    }

    // Go/no-go: every member checks that its own padded plaintext survived.
    let all_present = members.iter().all(|member| {
        member
            .submitted
            .as_ref()
            .map(|padded| {
                batch
                    .iter()
                    .any(|item| item.as_bytes() == padded.as_slice())
            })
            .unwrap_or(false)
    });

    let published = batch
        .iter()
        .filter_map(|item| unpad(item.as_bytes()))
        .collect();

    Ok(ShuffleReport {
        published,
        all_present,
        messages_sent,
        bytes_sent,
        slot_len,
        serial_steps: k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn submissions(payloads: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        payloads.iter().map(|p| Some(p.to_vec())).collect()
    }

    #[test]
    fn shuffle_publishes_every_submission() {
        let mut rng = StdRng::seed_from_u64(10);
        let subs = submissions(&[b"alpha", b"beta", b"gamma", b"delta"]);
        let report = run_shuffle(32, &subs, &mut rng).unwrap();
        assert_eq!(report.len(), 4);
        assert!(report.all_present);
        for sub in &subs {
            assert!(report.contains(sub.as_ref().unwrap()));
        }
    }

    #[test]
    fn silent_members_submit_cover_items() {
        let mut rng = StdRng::seed_from_u64(11);
        let subs = vec![Some(b"only sender".to_vec()), None, None, None, None];
        let report = run_shuffle(32, &subs, &mut rng).unwrap();
        assert_eq!(report.len(), 5);
        assert!(report.all_present);
        assert_eq!(report.published.iter().filter(|p| p.is_empty()).count(), 4);
        assert!(report.contains(b"only sender"));
    }

    #[test]
    fn groups_of_one_are_rejected() {
        let mut rng = StdRng::seed_from_u64(12);
        let err = run_shuffle(32, &[Some(b"x".to_vec())], &mut rng).unwrap_err();
        assert_eq!(err, ShuffleError::GroupTooSmall { size: 1 });
    }

    #[test]
    fn oversized_payloads_are_rejected() {
        let mut rng = StdRng::seed_from_u64(13);
        let subs = vec![Some(vec![0u8; 31]), None];
        let err = run_shuffle(32, &subs, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ShuffleError::PayloadTooLarge { member: 0, .. }
        ));
    }

    #[test]
    fn message_count_grows_quadratically_with_group_size() {
        let mut rng = StdRng::seed_from_u64(14);
        let small = run_shuffle(32, &vec![None; 4], &mut rng).unwrap();
        let large = run_shuffle(32, &vec![None; 8], &mut rng).unwrap();
        // Key publication dominates: k(k-1) grows ~4x when k doubles.
        assert!(large.messages_sent > 2 * small.messages_sent);
        assert_eq!(small.serial_steps, 4);
        assert_eq!(large.serial_steps, 8);
    }

    #[test]
    fn published_order_varies_with_the_shuffler_randomness() {
        // With all shufflers honest the output order depends on every
        // member's secret permutation; different RNG seeds must therefore
        // produce different orders for the same submissions (this is the
        // unlinkability smoke test — a fixed order would trivially link
        // positions to submitters).
        let subs = submissions(&[b"a", b"b", b"c", b"d", b"e", b"f"]);
        let mut orders = BTreeMap::new();
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let report = run_shuffle(16, &subs, &mut rng).unwrap();
            *orders.entry(report.published.clone()).or_insert(0u32) += 1;
        }
        assert!(
            orders.len() > 1,
            "all 20 seeds produced the same output order"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn shuffle_preserves_the_multiset_of_payloads(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 2..8),
            seed in any::<u64>()
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let subs: Vec<Option<Vec<u8>>> = payloads.iter().cloned().map(Some).collect();
            let report = run_shuffle(24, &subs, &mut rng).unwrap();
            prop_assert!(report.all_present);
            let mut expected = payloads.clone();
            expected.sort();
            let mut got = report.published.clone();
            got.sort();
            prop_assert_eq!(expected, got);
        }
    }
}
