//! The full Dissent-style round: anonymous announcement shuffle followed by a
//! DC-net bulk phase sized by the announcements.
//!
//! The paper (§III-B) summarises Dissent as follows: every participant
//! anonymously announces the length of the message it wants to transmit; the
//! announcements are unlinkable because they pass through a secure group
//! shuffle; the group then runs DC-net rounds whose slots are sized exactly
//! according to the published lengths. This supports variable-sized messages
//! without leaking who sent what, at the price of a startup phase whose
//! latency grows with the group size.
//!
//! [`DissentSession`] reproduces that structure on top of [`crate::shuffle`]
//! (announcement phase) and [`fnp_dcnet::KeyedDcGroup`] (bulk phase):
//!
//! 1. every member submits an 12-byte announcement `length (4 bytes) ‖
//!    recognition tag (8 bytes)` to the shuffle; silent members announce
//!    length 0,
//! 2. the published, unlinkable announcement list fixes the bulk schedule:
//!    one DC-net round per non-zero announcement, with the slot sized to the
//!    announced length,
//! 3. each sender recognises its own slot by its random recognition tag and
//!    transmits in exactly that round; everyone else stays silent.
//!
//! The recognition tag is the standard Dissent trick for letting a sender
//! find its slot without claiming it publicly: the tag is random, appears
//! only inside the shuffled announcement, and is never linked to a member.

use crate::cost::{StartupCostModel, StartupEstimate};
use crate::shuffle::{run_shuffle, ShuffleError, ShuffleReport};
use fnp_dcnet::keyed::KeyedDcError;
use fnp_dcnet::{KeyedDcGroup, SlotOutcome};
use rand::Rng;

/// Length of one announcement item: 4-byte length plus 8-byte recognition tag.
pub const ANNOUNCEMENT_LEN: usize = 12;

/// Configuration of a Dissent-style session.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Slot size used for the announcement shuffle (must fit
    /// [`ANNOUNCEMENT_LEN`] plus the 2-byte padding header).
    pub announcement_slot_len: usize,
    /// Cost model used to estimate the startup latency of the round.
    pub cost_model: StartupCostModel,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            announcement_slot_len: ANNOUNCEMENT_LEN + 2,
            cost_model: StartupCostModel::default(),
        }
    }
}

/// Errors surfaced by a Dissent-style session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The group is too small for any anonymity.
    GroupTooSmall {
        /// Observed size.
        size: usize,
    },
    /// The submission list does not match the group size.
    WrongSubmissionCount {
        /// Submissions received.
        received: usize,
        /// Expected group size.
        expected: usize,
    },
    /// A message exceeds the maximum announceable length.
    PayloadTooLarge {
        /// Offending member.
        member: usize,
        /// Payload length.
        len: usize,
    },
    /// The announcement shuffle failed.
    Shuffle(ShuffleError),
    /// A bulk DC-net round failed.
    Bulk(KeyedDcError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::GroupTooSmall { size } => {
                write!(f, "Dissent session of size {size} cannot provide anonymity")
            }
            SessionError::WrongSubmissionCount { received, expected } => write!(
                f,
                "received {received} submissions for a session of {expected} members"
            ),
            SessionError::PayloadTooLarge { member, len } => {
                write!(
                    f,
                    "member {member} wants to send {len} bytes, exceeding u32::MAX"
                )
            }
            SessionError::Shuffle(e) => write!(f, "announcement shuffle failed: {e}"),
            SessionError::Bulk(e) => write!(f, "bulk DC-net round failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ShuffleError> for SessionError {
    fn from(error: ShuffleError) -> Self {
        SessionError::Shuffle(error)
    }
}

impl From<KeyedDcError> for SessionError {
    fn from(error: KeyedDcError) -> Self {
        SessionError::Bulk(error)
    }
}

/// Report of one complete Dissent-style round.
#[derive(Clone, Debug)]
pub struct DissentReport {
    /// Messages recovered from the bulk phase, in announcement order
    /// (unlinkable to their senders).
    pub published: Vec<Vec<u8>>,
    /// The announcement shuffle's own report.
    pub announcement: ShuffleReport,
    /// Number of bulk DC-net rounds executed (one per announced message).
    pub bulk_rounds: usize,
    /// Bulk slots that decoded to a collision or damaged frame (0 when all
    /// members are honest).
    pub damaged_slots: usize,
    /// Total point-to-point messages across announcement and bulk phases.
    pub messages_sent: u64,
    /// Total bytes across announcement and bulk phases.
    pub bytes_sent: u64,
    /// Startup latency estimate for the announcement phase (experiment E11).
    pub startup: StartupEstimate,
}

impl DissentReport {
    /// Whether a particular payload was delivered by the bulk phase.
    pub fn contains(&self, payload: &[u8]) -> bool {
        self.published.iter().any(|p| p == payload)
    }
}

/// A Dissent-style anonymous broadcast group.
///
/// The session owns the keyed DC-net group used for bulk transmission and is
/// reused across rounds; the announcement shuffle generates fresh ephemeral
/// keys every round.
pub struct DissentSession {
    size: usize,
    config: SessionConfig,
    round: u64,
}

impl std::fmt::Debug for DissentSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DissentSession")
            .field("size", &self.size)
            .field("round", &self.round)
            .finish()
    }
}

impl DissentSession {
    /// Creates a session of `size` members.
    ///
    /// # Errors
    ///
    /// Fails if the group has fewer than two members.
    pub fn new<R: Rng + ?Sized>(
        size: usize,
        config: SessionConfig,
        _rng: &mut R,
    ) -> Result<Self, SessionError> {
        if size < 2 {
            return Err(SessionError::GroupTooSmall { size });
        }
        Ok(Self {
            size,
            config,
            round: 0,
        })
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Rounds completed so far.
    pub fn rounds_completed(&self) -> u64 {
        self.round
    }

    /// Runs one full round: announcement shuffle plus bulk DC-net rounds.
    ///
    /// `messages[i]` is member `i`'s payload for this round (`None` to stay
    /// silent).
    ///
    /// # Errors
    ///
    /// Fails if the submission list does not match the group, a payload is
    /// too large, or one of the underlying phases fails.
    pub fn run_round<R: Rng + ?Sized>(
        &mut self,
        messages: &[Option<Vec<u8>>],
        rng: &mut R,
    ) -> Result<DissentReport, SessionError> {
        if messages.len() != self.size {
            return Err(SessionError::WrongSubmissionCount {
                received: messages.len(),
                expected: self.size,
            });
        }

        // Phase A: shuffle the length announcements. Every member announces,
        // silent members announce length zero, so participation itself leaks
        // nothing.
        let mut tags: Vec<Option<[u8; 8]>> = vec![None; self.size];
        let mut announcements: Vec<Option<Vec<u8>>> = Vec::with_capacity(self.size);
        for (index, message) in messages.iter().enumerate() {
            let len = match message {
                Some(payload) => {
                    u32::try_from(payload.len()).map_err(|_| SessionError::PayloadTooLarge {
                        member: index,
                        len: payload.len(),
                    })?
                }
                None => 0,
            };
            let mut tag = [0u8; 8];
            rng.fill(&mut tag);
            tags[index] = Some(tag);
            let mut item = Vec::with_capacity(ANNOUNCEMENT_LEN);
            item.extend_from_slice(&len.to_le_bytes());
            item.extend_from_slice(&tag);
            announcements.push(Some(item));
        }
        let announcement = run_shuffle(self.config.announcement_slot_len, &announcements, rng)?;

        // Parse the published announcements into the bulk schedule.
        let mut schedule: Vec<(u32, [u8; 8])> = Vec::new();
        for item in &announcement.published {
            if item.len() != ANNOUNCEMENT_LEN {
                continue;
            }
            let len = u32::from_le_bytes(item[..4].try_into().expect("4-byte length"));
            if len == 0 {
                continue;
            }
            let mut tag = [0u8; 8];
            tag.copy_from_slice(&item[4..]);
            schedule.push((len, tag));
        }

        // Phase B: one keyed DC-net round per scheduled slot. The sender of
        // a slot recognises it by the tag; everyone else stays silent.
        let mut published = Vec::with_capacity(schedule.len());
        let mut damaged_slots = 0;
        let mut messages_sent = announcement.messages_sent;
        let mut bytes_sent = announcement.bytes_sent;
        for (len, tag) in &schedule {
            // CRC framing in the DC slot needs a little slack on top of the
            // announced payload length.
            let slot_len = *len as usize + 8;
            let mut group = KeyedDcGroup::new(self.size, slot_len, rng)?;
            let payloads: Vec<Option<Vec<u8>>> = (0..self.size)
                .map(|member| {
                    let owns_slot = tags[member].map(|own_tag| own_tag == *tag).unwrap_or(false);
                    if owns_slot {
                        messages[member].clone()
                    } else {
                        None
                    }
                })
                .collect();
            let report = group.run_round(self.round, &payloads)?;
            messages_sent += report.messages_sent;
            bytes_sent += report.bytes_sent;
            match report.outcome {
                SlotOutcome::Message(payload) => published.push(payload),
                SlotOutcome::Silence => {}
                SlotOutcome::Collision => damaged_slots += 1,
            }
        }

        let startup = self.config.cost_model.estimate(self.size);
        self.round += 1;
        Ok(DissentReport {
            published,
            bulk_rounds: schedule.len(),
            damaged_slots,
            messages_sent,
            bytes_sent,
            startup,
            announcement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_sender_is_delivered() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut session = DissentSession::new(5, SessionConfig::default(), &mut rng).unwrap();
        let mut messages = vec![None; 5];
        messages[3] = Some(b"anonymous transaction".to_vec());
        let report = session.run_round(&messages, &mut rng).unwrap();
        assert_eq!(report.bulk_rounds, 1);
        assert_eq!(report.damaged_slots, 0);
        assert!(report.contains(b"anonymous transaction"));
        assert!(report.announcement.all_present);
    }

    #[test]
    fn multiple_senders_with_different_lengths_are_all_delivered() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut session = DissentSession::new(6, SessionConfig::default(), &mut rng).unwrap();
        let messages = vec![
            Some(b"short".to_vec()),
            None,
            Some(b"a noticeably longer transaction payload".to_vec()),
            None,
            Some(b"medium sized entry".to_vec()),
            None,
        ];
        let report = session.run_round(&messages, &mut rng).unwrap();
        assert_eq!(report.bulk_rounds, 3);
        for message in messages.iter().flatten() {
            assert!(report.contains(message), "missing {message:?}");
        }
    }

    #[test]
    fn idle_round_runs_no_bulk_slots() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut session = DissentSession::new(4, SessionConfig::default(), &mut rng).unwrap();
        let report = session
            .run_round(&[None, None, None, None], &mut rng)
            .unwrap();
        assert_eq!(report.bulk_rounds, 0);
        assert!(report.published.is_empty());
        assert!(
            report.messages_sent > 0,
            "the announcement shuffle still runs"
        );
    }

    #[test]
    fn startup_latency_grows_with_group_size() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut small = DissentSession::new(4, SessionConfig::default(), &mut rng).unwrap();
        let mut large = DissentSession::new(12, SessionConfig::default(), &mut rng).unwrap();
        let small_report = small.run_round(&vec![None; 4], &mut rng).unwrap();
        let large_report = large.run_round(&vec![None; 12], &mut rng).unwrap();
        assert!(large_report.startup.latency_ms > small_report.startup.latency_ms);
    }

    #[test]
    fn wrong_submission_count_is_rejected() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut session = DissentSession::new(4, SessionConfig::default(), &mut rng).unwrap();
        let err = session.run_round(&[None, None], &mut rng).unwrap_err();
        assert_eq!(
            err,
            SessionError::WrongSubmissionCount {
                received: 2,
                expected: 4
            }
        );
    }

    #[test]
    fn groups_of_one_are_rejected() {
        let mut rng = StdRng::seed_from_u64(25);
        let err = DissentSession::new(1, SessionConfig::default(), &mut rng).unwrap_err();
        assert_eq!(err, SessionError::GroupTooSmall { size: 1 });
    }

    #[test]
    fn rounds_are_counted() {
        let mut rng = StdRng::seed_from_u64(26);
        let mut session = DissentSession::new(3, SessionConfig::default(), &mut rng).unwrap();
        assert_eq!(session.rounds_completed(), 0);
        session.run_round(&[None, None, None], &mut rng).unwrap();
        session
            .run_round(&[Some(b"x".to_vec()), None, None], &mut rng)
            .unwrap();
        assert_eq!(session.rounds_completed(), 2);
    }
}
