//! # fnp-shuffle — a Dissent-style accountable group shuffle baseline
//!
//! The paper's related-work discussion (§III-B) positions the flexible
//! three-phase protocol against *Dissent* (Corrigan-Gibbs & Ford, CCS 2010):
//! an anonymity system in which every round starts with an **anonymous
//! announcement phase** — a verifiable group shuffle of per-member
//! announcements — followed by a DC-net **bulk phase** sized according to the
//! shuffled announcements. The paper's key quantitative claim about Dissent
//! is that the announcement phase "causes a startup phase scaling linearly in
//! the number of group members and becoming noticeably slow, e.g., 30
//! seconds, for group sizes of 8 to 12", which it argues is unacceptable for
//! blockchain transaction dissemination.
//!
//! This crate implements that baseline from scratch so that the claim can be
//! reproduced and the flexible protocol can be compared against a second
//! cryptographic mechanism besides the plain DC-net of `fnp-dcnet`:
//!
//! * [`onion`] — layered (onion) hybrid encryption over the DH + ChaCha20 +
//!   HMAC primitives of `fnp-crypto`; every shuffle member can strip exactly
//!   one verifiable layer.
//! * [`shuffle`] — the sequential verifiable shuffle: every member submits a
//!   fixed-size onion-encrypted item, members take turns permuting the batch
//!   and stripping their layer, and the last member publishes the unlinkable
//!   plaintext list. Includes the go/no-go check (every member verifies its
//!   own plaintext survived).
//! * [`announce`] — the full Dissent-style round: a shuffle of
//!   length-announcements followed by one DC-net bulk slot per announced
//!   message, with per-message recognition tags so senders can locate their
//!   slot without revealing themselves.
//! * [`cost`] — the startup latency and traffic cost model reproducing the
//!   "30 seconds for 8–12 members" observation (experiment E11 of
//!   `DESIGN.md`).
//!
//! The attacker model matches the paper's honest-but-curious setting: members
//! follow the protocol but try to link published plaintexts to their
//! senders. One honest shuffler suffices to break that link, which the
//! property tests in [`shuffle`] exercise.
//!
//! # Example
//!
//! ```
//! use fnp_shuffle::{DissentSession, SessionConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut session = DissentSession::new(6, SessionConfig::default(), &mut rng).unwrap();
//! // Member 2 wants to broadcast a transaction anonymously.
//! let report = session
//!     .run_round(&[None, None, Some(b"tx: a -> b, 5 coins".to_vec()), None, None, None], &mut rng)
//!     .unwrap();
//! assert!(report.published.iter().any(|m| m == b"tx: a -> b, 5 coins"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod announce;
pub mod cost;
pub mod onion;
pub mod shuffle;

pub use announce::{DissentReport, DissentSession, SessionConfig, SessionError};
pub use cost::{startup_latency_ms, StartupCostModel, StartupEstimate};
pub use onion::{LayerError, LayerKeyPair, OnionItem};
pub use shuffle::{run_shuffle, ShuffleError, ShuffleMember, ShuffleReport};
