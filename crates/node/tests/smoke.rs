//! End-to-end smoke test: five `fnp-node` processes flood a ring.
//!
//! The test is the harness the crate docs describe: it spawns one real
//! `fnp-node` process per overlay node (no framework, plain
//! `std::process`), plays router with a FIFO one-tick link latency, and
//! routes every `send` line from one child's stdout into a `deliver` line
//! on the target child's stdin. The broadcast must reach all five nodes
//! (full coverage), every process must acknowledge `shutdown` with a
//! `done` line, and every process must exit with status 0.

use fnp_bench::json::Json;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

const N: usize = 5;

struct NodeProc {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl NodeProc {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fnp-node"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fnp-node");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Self {
            child,
            stdin,
            stdout,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("write to fnp-node stdin");
    }

    fn read_line(&mut self) -> Json {
        let mut line = String::new();
        let n = self
            .stdout
            .read_line(&mut line)
            .expect("read fnp-node stdout");
        assert!(n > 0, "fnp-node closed stdout unexpectedly");
        Json::parse(line.trim_end()).expect("fnp-node emitted invalid JSON")
    }
}

fn kind(line: &Json) -> String {
    line.get("type").and_then(Json::as_str).unwrap().to_string()
}

#[test]
fn five_node_ring_flood_reaches_everyone() {
    let mut nodes: Vec<NodeProc> = (0..N).map(|_| NodeProc::spawn()).collect();

    // Init: ring topology, neighbours (i±1) mod N.
    for (index, node) in nodes.iter_mut().enumerate() {
        let (left, right) = ((index + N - 1) % N, (index + 1) % N);
        node.send(&format!(
            r#"{{"type":"init","node":{index},"node_count":{N},"neighbors":[{left},{right}],"seed":{index}}}"#
        ));
        let ack = node.read_line();
        assert_eq!(kind(&ack), "init_ok");
        assert_eq!(ack.get("node").and_then(Json::as_u64), Some(index as u64));
    }

    // The router: a FIFO queue of in-flight messages with one tick of link
    // latency. Flood-and-prune responds to a *first* receipt with exactly
    // `delivered` + one `send` per non-excluded neighbour, and to a
    // duplicate with silence, so the harness knows how many lines to
    // expect for every event it injects.
    let mut in_flight: VecDeque<(u64, usize, usize, u64)> = VecDeque::new(); // (at, to, from, tx)
    let mut seen = [false; N];
    let mut delivered_at: Vec<Option<u64>> = vec![None; N];

    // Kick off the broadcast at node 0.
    nodes[0].send(r#"{"type":"start","at":0,"tx_id":42}"#);
    seen[0] = true;
    let mut expect = 3; // delivered + 2 sends
    let mut current = (0usize, 0u64); // (node, event time)
    loop {
        for _ in 0..expect {
            let line = nodes[current.0].read_line();
            match kind(&line).as_str() {
                "delivered" => {
                    assert_eq!(delivered_at[current.0], None, "double delivery");
                    delivered_at[current.0] = line.get("at").and_then(Json::as_u64);
                }
                "send" => {
                    let to = line.get("to").and_then(Json::as_u64).unwrap() as usize;
                    let tx = line
                        .get("message")
                        .and_then(|m| m.get("tx_id"))
                        .and_then(Json::as_u64)
                        .unwrap();
                    in_flight.push_back((current.1 + 1, to, current.0, tx));
                }
                other => panic!("unexpected output line type {other:?}"),
            }
        }
        let Some((at, to, from, tx)) = in_flight.pop_front() else {
            break;
        };
        nodes[to].send(&format!(
            r#"{{"type":"deliver","at":{at},"from":{from},"message":{{"tx_id":{tx}}}}}"#
        ));
        expect = if seen[to] { 0 } else { 2 }; // delivered + 1 send, or silence
        seen[to] = true;
        current = (to, at);
    }

    // Full coverage, with first deliveries in ring order (1 tick per hop).
    assert!(delivered_at.iter().all(Option::is_some), "{delivered_at:?}");
    assert_eq!(delivered_at[0], Some(0));
    assert_eq!(delivered_at[1], Some(1));
    assert_eq!(delivered_at[4], Some(1));
    assert_eq!(delivered_at[2], Some(2));
    assert_eq!(delivered_at[3], Some(2));

    // Clean shutdown: every node acknowledges and exits 0.
    for (index, node) in nodes.iter_mut().enumerate() {
        node.send(r#"{"type":"shutdown"}"#);
        let done = node.read_line();
        assert_eq!(kind(&done), "done");
        assert_eq!(done.get("node").and_then(Json::as_u64), Some(index as u64));
        assert_eq!(done.get("delivered"), Some(&Json::Bool(true)));
        let status = node.child.wait().expect("wait for fnp-node");
        assert!(status.success(), "node {index} exited with {status}");
    }
}

#[test]
fn killing_a_node_mid_broadcast_leaves_survivors_consistent() {
    // Churn soak: the same five-process ring, but one process is killed
    // mid-broadcast. The router drops every in-flight line addressed to
    // the dead node (a closed pipe loses its traffic) and keeps exact
    // accounting: every `send` a survivor emits is either routed to a live
    // node or dropped on the dead one, nothing disappears and nothing is
    // duplicated. The ring 0–1–2–3–4–0 minus node 2 is still connected, so
    // the broadcast must reach every survivor, and every survivor must
    // still shut down cleanly with exit status 0.
    const DEAD: usize = 2;
    let mut nodes: Vec<NodeProc> = (0..N).map(|_| NodeProc::spawn()).collect();

    for (index, node) in nodes.iter_mut().enumerate() {
        let (left, right) = ((index + N - 1) % N, (index + 1) % N);
        node.send(&format!(
            r#"{{"type":"init","node":{index},"node_count":{N},"neighbors":[{left},{right}],"seed":{index}}}"#
        ));
        let ack = node.read_line();
        assert_eq!(kind(&ack), "init_ok");
    }

    let mut in_flight: VecDeque<(u64, usize, usize, u64)> = VecDeque::new(); // (at, to, from, tx)
    let mut seen = [false; N];
    let mut delivered_at: Vec<Option<u64>> = vec![None; N];
    let mut sends_emitted = 0usize;
    let mut routed = 0usize;
    let mut dropped = 0usize;

    nodes[0].send(r#"{"type":"start","at":0,"tx_id":42}"#);
    seen[0] = true;
    let mut expect = 3; // delivered + 2 sends
    let mut current = (0usize, 0u64); // (node, event time)
    let mut killed = false;
    loop {
        for _ in 0..expect {
            let line = nodes[current.0].read_line();
            match kind(&line).as_str() {
                "delivered" => {
                    assert_eq!(delivered_at[current.0], None, "double delivery");
                    delivered_at[current.0] = line.get("at").and_then(Json::as_u64);
                }
                "send" => {
                    let to = line.get("to").and_then(Json::as_u64).unwrap() as usize;
                    let tx = line
                        .get("message")
                        .and_then(|m| m.get("tx_id"))
                        .and_then(Json::as_u64)
                        .unwrap();
                    sends_emitted += 1;
                    in_flight.push_back((current.1 + 1, to, current.0, tx));
                }
                other => panic!("unexpected output line type {other:?}"),
            }
        }
        // Kill mid-broadcast: the origin's sends are in flight but nothing
        // has been delivered to the victim yet.
        if !killed {
            killed = true;
            nodes[DEAD].child.kill().expect("kill fnp-node");
            let status = nodes[DEAD].child.wait().expect("wait for killed fnp-node");
            assert!(!status.success(), "a killed node must not exit cleanly");
        }
        let Some((at, to, from, tx)) = in_flight.pop_front() else {
            break;
        };
        if to == DEAD {
            // The pipe is gone; the line is dropped, not rerouted.
            dropped += 1;
            expect = 0;
            continue;
        }
        nodes[to].send(&format!(
            r#"{{"type":"deliver","at":{at},"from":{from},"message":{{"tx_id":{tx}}}}}"#
        ));
        routed += 1;
        expect = if seen[to] { 0 } else { 2 }; // delivered + 1 send, or silence
        seen[to] = true;
        current = (to, at);
    }

    // Every survivor delivered; the dead node never did.
    for (index, at) in delivered_at.iter().enumerate() {
        if index == DEAD {
            assert_eq!(*at, None, "the killed node cannot deliver");
        } else {
            assert!(at.is_some(), "survivor {index} never delivered");
        }
    }
    // With node 2 dead the wave goes 0 → {1, 4}, then 4 → 3.
    assert_eq!(delivered_at[0], Some(0));
    assert_eq!(delivered_at[1], Some(1));
    assert_eq!(delivered_at[4], Some(1));
    assert_eq!(delivered_at[3], Some(2));

    // Line accounting balances: every emitted send was either routed to a
    // live node or dropped on the dead one. Both of the dead node's ring
    // neighbours (1 and 3) tried to reach it exactly once.
    assert_eq!(sends_emitted, routed + dropped);
    assert_eq!(
        dropped, 2,
        "both neighbours of the dead node send into the gap"
    );
    assert!(
        in_flight.is_empty(),
        "no in-flight lines may survive the loop"
    );

    // Survivors still shut down cleanly: `done` is the very next line on
    // each survivor's stdout (no stray output buffered behind it) and the
    // exit status is 0.
    for (index, node) in nodes.iter_mut().enumerate() {
        if index == DEAD {
            continue;
        }
        node.send(r#"{"type":"shutdown"}"#);
        let done = node.read_line();
        assert_eq!(kind(&done), "done");
        assert_eq!(done.get("node").and_then(Json::as_u64), Some(index as u64));
        assert_eq!(done.get("delivered"), Some(&Json::Bool(true)));
        let status = node.child.wait().expect("wait for fnp-node");
        assert!(status.success(), "survivor {index} exited with {status}");
    }
}

#[test]
fn malformed_input_fails_loudly() {
    let mut node = NodeProc::spawn();
    node.send("this is not json");
    let status = node.child.wait().expect("wait for fnp-node");
    assert!(!status.success(), "malformed input must not exit 0");
}
