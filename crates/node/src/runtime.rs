//! The single-node event loop state: core + environment + effect expansion.
//!
//! [`NodeRuntime`] is the transport-agnostic part of the binary: it takes
//! parsed [`Event`]s and returns the output lines they produce, so the
//! whole driver can be unit-tested without spawning a process. `main` is
//! reduced to framing: read a line, call [`NodeRuntime::handle`], print.

use crate::wire::{self, Event, WireError};
use fnp_gossip::FloodNode;
use fnp_proto::{Effect, Input, Mailbox, NodeView, ProtocolCore, StandaloneEnv};

/// What the caller should do after handling an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Keep reading events.
    Continue,
    /// `shutdown` was acknowledged: stop reading and exit cleanly.
    Exit,
}

/// One node's runtime: the sans-IO core, its standalone environment and
/// the bookkeeping the wire protocol needs.
#[derive(Debug, Default)]
pub struct NodeRuntime {
    state: Option<Running>,
}

#[derive(Debug)]
struct Running {
    core: FloodNode,
    env: StandaloneEnv,
    mailbox: Mailbox<<FloodNode as ProtocolCore>::Message>,
    delivered: bool,
}

impl NodeRuntime {
    /// Creates a runtime awaiting its `init` event.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles one event, appending output lines to `out`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when an event arrives out of protocol:
    /// anything before `init`, or a second `init`.
    pub fn handle(
        &mut self,
        event: Event,
        out: &mut Vec<String>,
    ) -> Result<Disposition, WireError> {
        match event {
            Event::Init {
                node,
                node_count,
                neighbors,
                seed,
            } => {
                if self.state.is_some() {
                    return Err(WireError {
                        message: "duplicate init".to_string(),
                    });
                }
                let mut running = Running {
                    core: FloodNode::new(),
                    env: StandaloneEnv::new(node, node_count, neighbors, seed),
                    mailbox: Mailbox::new(),
                    delivered: false,
                };
                running
                    .core
                    .poll(Input::Init, &mut running.env, &mut running.mailbox);
                out.push(wire::init_ok_line(node));
                running.drain(out);
                self.state = Some(running);
                Ok(Disposition::Continue)
            }
            Event::Start { at, tx_id } => {
                let running = self.running()?;
                running.env.advance_to(at);
                running
                    .core
                    .start_broadcast(tx_id, &mut running.env, &mut running.mailbox);
                running.drain(out);
                Ok(Disposition::Continue)
            }
            Event::Deliver { at, from, message } => {
                let running = self.running()?;
                running.env.advance_to(at);
                running.core.poll(
                    Input::Message { from, message },
                    &mut running.env,
                    &mut running.mailbox,
                );
                running.drain(out);
                Ok(Disposition::Continue)
            }
            Event::Tick { at, tag } => {
                let running = self.running()?;
                running.env.advance_to(at);
                running.core.poll(
                    Input::TimerFired { tag },
                    &mut running.env,
                    &mut running.mailbox,
                );
                running.drain(out);
                Ok(Disposition::Continue)
            }
            Event::Shutdown => {
                let running = self.running()?;
                out.push(wire::done_line(running.env.node_id(), running.delivered));
                Ok(Disposition::Exit)
            }
        }
    }

    fn running(&mut self) -> Result<&mut Running, WireError> {
        self.state.as_mut().ok_or_else(|| WireError {
            message: "event before init".to_string(),
        })
    }
}

impl Running {
    /// Expands the mailbox into output lines, in emission order.
    ///
    /// `Broadcast` fans out into per-neighbour `send` lines in neighbour
    /// order — the same deterministic order the simulator applies — minus
    /// the excluded peers. `SetTimer` delays become absolute `timer`
    /// requests against the current event-time clock.
    fn drain(&mut self, out: &mut Vec<String>) {
        for effect in self.mailbox.drain() {
            match effect {
                Effect::Send { to, message } => out.push(wire::send_line(to, &message)),
                Effect::Broadcast { message, excluded } => {
                    for &neighbor in self.env.neighbors() {
                        if !excluded.contains(&neighbor) {
                            out.push(wire::send_line(neighbor, &message));
                        }
                    }
                }
                Effect::SetTimer { delay, tag } => {
                    out.push(wire::timer_line(self.env.now() + delay, tag));
                }
                Effect::Deliver => {
                    self.delivered = true;
                    out.push(wire::delivered_line(self.env.now()));
                }
                Effect::Counter { name, amount } => out.push(wire::counter_line(name, amount)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnp_netsim::NodeId;

    fn lines(runtime: &mut NodeRuntime, event: Event) -> (Disposition, Vec<String>) {
        let mut out = Vec::new();
        let disposition = runtime.handle(event, &mut out).unwrap();
        (disposition, out)
    }

    fn init_event(node: usize) -> Event {
        Event::Init {
            node: NodeId::new(node),
            node_count: 3,
            neighbors: vec![NodeId::new((node + 1) % 3), NodeId::new((node + 2) % 3)],
            seed: 1,
        }
    }

    #[test]
    fn origin_floods_all_neighbors() {
        let mut runtime = NodeRuntime::new();
        let (_, out) = lines(&mut runtime, init_event(0));
        assert_eq!(out, [r#"{"type":"init_ok","node":0}"#]);
        let (_, out) = lines(&mut runtime, Event::Start { at: 0, tx_id: 7 });
        assert_eq!(
            out,
            [
                r#"{"type":"delivered","at":0}"#,
                r#"{"type":"send","to":1,"message":{"tx_id":7}}"#,
                r#"{"type":"send","to":2,"message":{"tx_id":7}}"#,
            ]
        );
    }

    #[test]
    fn relay_excludes_the_sender_and_prunes_duplicates() {
        let mut runtime = NodeRuntime::new();
        lines(&mut runtime, init_event(1));
        let deliver = |at| Event::Deliver {
            at,
            from: NodeId::new(0),
            message: fnp_gossip::FloodMessage { tx_id: 7 },
        };
        let (_, out) = lines(&mut runtime, deliver(3));
        assert_eq!(
            out,
            [
                r#"{"type":"delivered","at":3}"#,
                r#"{"type":"send","to":2,"message":{"tx_id":7}}"#,
            ]
        );
        // Second receipt is pruned: no output at all.
        let (_, out) = lines(&mut runtime, deliver(4));
        assert!(out.is_empty());
    }

    #[test]
    fn shutdown_reports_delivery_and_exits() {
        let mut runtime = NodeRuntime::new();
        lines(&mut runtime, init_event(2));
        let (disposition, out) = lines(&mut runtime, Event::Shutdown);
        assert_eq!(disposition, Disposition::Exit);
        assert_eq!(out, [r#"{"type":"done","node":2,"delivered":false}"#]);
    }

    #[test]
    fn events_before_init_are_protocol_errors() {
        let mut runtime = NodeRuntime::new();
        let err = runtime
            .handle(Event::Start { at: 0, tx_id: 1 }, &mut Vec::new())
            .unwrap_err();
        assert!(err.to_string().contains("before init"));
        lines(&mut runtime, init_event(0));
        let err = runtime.handle(init_event(0), &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("duplicate init"));
    }
}
