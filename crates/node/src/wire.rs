//! Parsing and printing of the line-delimited JSON wire format.
//!
//! The codec is deliberately strict: every event line must carry the exact
//! fields the protocol needs, and anything malformed is a [`WireError`]
//! naming the offending field rather than a silent default. Output lines
//! are compact (single-line) JSON so the framing survives any
//! line-buffered pipe.

use fnp_bench::json::Json;
use fnp_gossip::FloodMessage;
use fnp_netsim::{NodeId, SimTime};
use std::fmt;

/// One event arriving on stdin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Identity and topology; must be the first event.
    Init {
        /// This node's identifier.
        node: NodeId,
        /// Number of nodes in the overlay.
        node_count: usize,
        /// This node's neighbours.
        neighbors: Vec<NodeId>,
        /// Seed of the node-local RNG.
        seed: u64,
    },
    /// Originate a broadcast of `tx_id` at event time `at`.
    Start {
        /// Event timestamp.
        at: SimTime,
        /// The transaction to broadcast.
        tx_id: u64,
    },
    /// A peer's message arrives at event time `at`.
    Deliver {
        /// Event timestamp.
        at: SimTime,
        /// Sending peer.
        from: NodeId,
        /// The flooded message.
        message: FloodMessage,
    },
    /// A previously requested timer fires at event time `at`.
    Tick {
        /// Event timestamp.
        at: SimTime,
        /// The tag passed to `SetTimer`.
        tag: u64,
    },
    /// Finish up: acknowledge with `done` and exit.
    Shutdown,
}

/// A malformed wire line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with the line.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid wire line: {}", self.message)
    }
}

impl std::error::Error for WireError {}

fn field_u64(value: &Json, key: &str) -> Result<u64, WireError> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError::new(format!("missing or non-integer field {key:?}")))
}

fn field_node(value: &Json, key: &str) -> Result<NodeId, WireError> {
    Ok(NodeId::new(field_u64(value, key)? as usize))
}

/// Parses one stdin line into an [`Event`].
///
/// # Errors
///
/// Returns a [`WireError`] for malformed JSON, unknown event types and
/// missing or mistyped fields.
pub fn parse_event(line: &str) -> Result<Event, WireError> {
    let value = Json::parse(line).map_err(|e| WireError::new(e.to_string()))?;
    let kind = value
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new("missing \"type\""))?;
    match kind {
        "init" => {
            let neighbors = value
                .get("neighbors")
                .and_then(Json::as_array)
                .ok_or_else(|| WireError::new("missing or non-array field \"neighbors\""))?
                .iter()
                .map(|item| {
                    item.as_u64()
                        .map(|index| NodeId::new(index as usize))
                        .ok_or_else(|| WireError::new("non-integer neighbour"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Event::Init {
                node: field_node(&value, "node")?,
                node_count: field_u64(&value, "node_count")? as usize,
                neighbors,
                seed: field_u64(&value, "seed")?,
            })
        }
        "start" => Ok(Event::Start {
            at: field_u64(&value, "at")?,
            tx_id: field_u64(&value, "tx_id")?,
        }),
        "deliver" => {
            let message = value
                .get("message")
                .ok_or_else(|| WireError::new("missing field \"message\""))?;
            Ok(Event::Deliver {
                at: field_u64(&value, "at")?,
                from: field_node(&value, "from")?,
                message: FloodMessage {
                    tx_id: field_u64(message, "tx_id")?,
                },
            })
        }
        "tick" => Ok(Event::Tick {
            at: field_u64(&value, "at")?,
            tag: field_u64(&value, "tag")?,
        }),
        "shutdown" => Ok(Event::Shutdown),
        other => Err(WireError::new(format!("unknown event type {other:?}"))),
    }
}

/// The `init_ok` acknowledgement line.
pub fn init_ok_line(node: NodeId) -> String {
    Json::obj([
        ("type", Json::from("init_ok")),
        ("node", Json::from(node.index())),
    ])
    .to_compact_string()
}

/// A `send` output line.
pub fn send_line(to: NodeId, message: &FloodMessage) -> String {
    Json::obj([
        ("type", Json::from("send")),
        ("to", Json::from(to.index())),
        ("message", Json::obj([("tx_id", Json::from(message.tx_id))])),
    ])
    .to_compact_string()
}

/// A `delivered` output line.
pub fn delivered_line(at: SimTime) -> String {
    Json::obj([("type", Json::from("delivered")), ("at", Json::from(at))]).to_compact_string()
}

/// A `timer` request line (`at` is the absolute fire time).
pub fn timer_line(at: SimTime, tag: u64) -> String {
    Json::obj([
        ("type", Json::from("timer")),
        ("at", Json::from(at)),
        ("tag", Json::from(tag)),
    ])
    .to_compact_string()
}

/// A `counter` metrics line.
pub fn counter_line(name: &str, amount: u64) -> String {
    Json::obj([
        ("type", Json::from("counter")),
        ("name", Json::from(name)),
        ("amount", Json::from(amount)),
    ])
    .to_compact_string()
}

/// The `done` shutdown acknowledgement line.
pub fn done_line(node: NodeId, delivered: bool) -> String {
    Json::obj([
        ("type", Json::from("done")),
        ("node", Json::from(node.index())),
        ("delivered", Json::from(delivered)),
    ])
    .to_compact_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_event_type() {
        assert_eq!(
            parse_event(r#"{"type":"init","node":2,"node_count":5,"neighbors":[1,3],"seed":7}"#)
                .unwrap(),
            Event::Init {
                node: NodeId::new(2),
                node_count: 5,
                neighbors: vec![NodeId::new(1), NodeId::new(3)],
                seed: 7,
            }
        );
        assert_eq!(
            parse_event(r#"{"type":"start","at":0,"tx_id":9}"#).unwrap(),
            Event::Start { at: 0, tx_id: 9 }
        );
        assert_eq!(
            parse_event(r#"{"type":"deliver","at":4,"from":1,"message":{"tx_id":9}}"#).unwrap(),
            Event::Deliver {
                at: 4,
                from: NodeId::new(1),
                message: FloodMessage { tx_id: 9 },
            }
        );
        assert_eq!(
            parse_event(r#"{"type":"tick","at":8,"tag":1}"#).unwrap(),
            Event::Tick { at: 8, tag: 1 }
        );
        assert_eq!(
            parse_event(r#"{"type":"shutdown"}"#).unwrap(),
            Event::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "not json",
            r#"{"no_type":1}"#,
            r#"{"type":"warp"}"#,
            r#"{"type":"start","at":0}"#,
            r#"{"type":"start","at":"soon","tx_id":1}"#,
            r#"{"type":"deliver","at":0,"from":1}"#,
            r#"{"type":"init","node":0,"node_count":2,"neighbors":1,"seed":0}"#,
            r#"{"type":"init","node":0,"node_count":2,"neighbors":["x"],"seed":0}"#,
        ] {
            let err = parse_event(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?} should fail");
        }
    }

    #[test]
    fn output_lines_are_single_line_json() {
        for line in [
            init_ok_line(NodeId::new(3)),
            send_line(NodeId::new(1), &FloodMessage { tx_id: 2 }),
            delivered_line(5),
            timer_line(9, 1),
            counter_line("flood-dups", 1),
            done_line(NodeId::new(0), true),
        ] {
            assert!(!line.contains('\n'));
            Json::parse(&line).unwrap();
        }
        assert_eq!(
            send_line(NodeId::new(1), &FloodMessage { tx_id: 2 }),
            r#"{"type":"send","to":1,"message":{"tx_id":2}}"#
        );
    }
}
