//! The `fnp-node` binary: read events line by line, print effect lines.
//!
//! See the crate docs ([`fnp_node`]) for the wire protocol. Framing rules:
//! one JSON object per line, output flushed after every input event (a
//! harness may block on our output before sending the next event), blank
//! lines ignored, EOF treated like `shutdown` without the `done`
//! acknowledgement. Malformed input is a fatal protocol error: the message
//! goes to stderr and the process exits with status 1, so a broken harness
//! fails loudly instead of deadlocking.

use fnp_node::runtime::Disposition;
use fnp_node::{wire, NodeRuntime};
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut output = stdout.lock();
    let mut runtime = NodeRuntime::new();
    let mut lines = Vec::new();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(error) => {
                eprintln!("fnp-node: stdin read failed: {error}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let event = match wire::parse_event(&line) {
            Ok(event) => event,
            Err(error) => {
                eprintln!("fnp-node: {error}");
                return ExitCode::FAILURE;
            }
        };
        lines.clear();
        let disposition = match runtime.handle(event, &mut lines) {
            Ok(disposition) => disposition,
            Err(error) => {
                eprintln!("fnp-node: {error}");
                return ExitCode::FAILURE;
            }
        };
        for out_line in &lines {
            if writeln!(output, "{out_line}").is_err() {
                return ExitCode::FAILURE;
            }
        }
        if output.flush().is_err() {
            return ExitCode::FAILURE;
        }
        if disposition == Disposition::Exit {
            return ExitCode::SUCCESS;
        }
    }
    ExitCode::SUCCESS
}
