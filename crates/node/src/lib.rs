//! # fnp-node — a real-transport driver for the sans-IO protocol cores
//!
//! The simulator is one way to drive a [`fnp_proto::ProtocolCore`]; this
//! crate is another. The `fnp-node` binary owns exactly one overlay node
//! and speaks line-delimited JSON on stdin/stdout (the Maelstrom /
//! "glomers" shape): a harness — a test, a shell script, a process-per-node
//! deployment — routes `send` lines from one node's stdout into `deliver`
//! lines on another node's stdin, and the very same flood-and-prune core
//! that the paper's experiments exercise under [`fnp_netsim::Simulator`]
//! serves the traffic.
//!
//! ## Wire protocol
//!
//! One JSON object per line. Events **in** (stdin):
//!
//! | line | meaning |
//! |------|---------|
//! | `{"type":"init","node":0,"node_count":5,"neighbors":[1,4],"seed":7}` | identity + topology; must come first |
//! | `{"type":"start","at":0,"tx_id":1}` | originate a broadcast of `tx_id` |
//! | `{"type":"deliver","at":3,"from":1,"message":{"tx_id":1}}` | a peer's message arrives |
//! | `{"type":"tick","at":9,"tag":2}` | a previously requested timer fires |
//! | `{"type":"shutdown"}` | finish: report and exit cleanly |
//!
//! Events **out** (stdout):
//!
//! | line | meaning |
//! |------|---------|
//! | `{"type":"init_ok","node":0}` | init acknowledged |
//! | `{"type":"send","to":1,"message":{"tx_id":1}}` | deliver this to peer 1 |
//! | `{"type":"delivered","at":3}` | the payload reached the application |
//! | `{"type":"timer","at":12,"tag":2}` | please send `tick` at time 12 |
//! | `{"type":"counter","name":"x","amount":1}` | a metrics increment |
//! | `{"type":"done","node":0,"delivered":true}` | shutdown acknowledged |
//!
//! Time is event time, exactly as in the simulator: the node's clock only
//! advances to the `at` stamp of the inputs the harness feeds it, so a
//! trace replayed through `fnp-node` sees the same clock the simulator saw.
//! `Broadcast` effects are expanded driver-side into per-neighbour `send`
//! lines in neighbour order (the simulator's deterministic order), skipping
//! the excluded peers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod runtime;
pub mod wire;

pub use runtime::NodeRuntime;
pub use wire::{Event, WireError};
