//! Criterion bench for experiment E3: one Dandelion broadcast plus attack.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_dandelion(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_dandelion");
    group.sample_size(10);
    group.bench_function("broadcast_and_attack_100_nodes", |b| {
        b.iter(|| fnp_bench::dandelion_privacy(100, &[0.2], &[0.9], 1, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_dandelion);
criterion_main!(benches);
