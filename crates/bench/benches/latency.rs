//! Criterion bench for experiment E10: latency comparison of all protocols
//! on a small overlay.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_latency");
    group.sample_size(10);
    group.bench_function("all_protocols_100_nodes", |b| {
        b.iter(|| fnp_bench::latency(100, 1, 8))
    });
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
