//! Criterion bench for experiment E8: overlapping-group posterior
//! computation and network-wide group formation.

use criterion::{criterion_group, criterion_main, Criterion};
use fnp_netsim::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_groups");
    group.sample_size(20);
    group.bench_function("overlap_sweep", |b| {
        b.iter(|| fnp_bench::group_overlap(&[3, 5, 8, 10], &[1, 2, 3, 4]))
    });
    group.bench_function("form_groups_1000_nodes", |b| {
        let nodes: Vec<NodeId> = (0..1000).map(NodeId::new).collect();
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| fnp_groups::form_groups(&nodes, 5, &mut rng).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_groups);
criterion_main!(benches);
