//! Criterion bench for experiment E6: the §V-A message-overhead comparison
//! (adaptive diffusion vs flood-and-prune vs flexible) on a small overlay.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_message_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_message_overhead");
    group.sample_size(10);
    group.bench_function("comparison_150_nodes", |b| {
        b.iter(|| fnp_bench::message_overhead(150, 1, 6))
    });
    group.finish();
}

criterion_group!(benches, bench_message_overhead);
criterion_main!(benches);
