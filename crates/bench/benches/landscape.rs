//! Criterion bench for experiment E1: one privacy–performance landscape cell
//! (flexible protocol, 20 % adversary) on a small overlay.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_landscape(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_landscape");
    group.sample_size(10);
    group.bench_function("flexible_cell_100_nodes", |b| {
        b.iter(|| fnp_bench::landscape(100, 1, &[0.2], 1))
    });
    group.finish();
}

criterion_group!(benches, bench_landscape);
criterion_main!(benches);
