//! Criterion bench for experiment E12: the latency → fee-fairness pipeline
//! (broadcast, then repeated block races).

use criterion::{criterion_group, criterion_main, Criterion};
use fnp_blockchain::{InclusionRace, MinerSet, RaceConfig};
use fnp_netsim::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fairness(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_fairness");
    group.sample_size(10);
    group.bench_function("fee_fairness_small", |b| {
        b.iter(|| fnp_bench::fee_fairness(80, 20, 1, 100, 9))
    });
    group.bench_function("race_only_1000", |b| {
        // Isolate the block-race cost from the broadcast cost.
        let miners = MinerSet::uniform(50).unwrap();
        let mut metrics = fnp_netsim::Metrics::new(50);
        for i in 0..50 {
            metrics.delivered_at[i] = Some((i as u64) * 10);
        }
        let _ = NodeId::new(0);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut race = InclusionRace::new();
            for _ in 0..1_000 {
                race.run_once(&metrics, &miners, RaceConfig::default(), &mut rng);
            }
            race.report(&miners)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fairness);
criterion_main!(benches);
