//! Criterion bench for experiments E4/E9: DC-net rounds of both variants,
//! plus the fused-vs-unfused pad-pipeline comparison (the keyed hot path
//! through pooled multi-block keystream fusion against the pre-fusion
//! reference lane of allocate-pad-then-XOR single-block expansion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Slot length shared by every variant (the paper's 512-byte message slot).
const SLOT_LEN: usize = 512;
/// Rounds folded into one `keyed_fused` / `keyed_unfused` iteration, so a
/// sample amortises key-schedule setup the way a real broadcast does.
const ROUNDS_PER_ITER: u64 = 16;

fn bench_dcnet(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_dcnet_round");
    group.sample_size(20);
    for k in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("explicit", k), &k, |b, &k| {
            let payloads = vec![None; k];
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| fnp_dcnet::run_explicit_round(&payloads, SLOT_LEN, &mut rng).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("keyed", k), &k, |b, &k| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut dc_group = fnp_dcnet::KeyedDcGroup::new(k, SLOT_LEN, &mut rng).unwrap();
            let payloads = vec![None; k];
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                dc_group.run_round(round, &payloads).unwrap()
            })
        });
    }
    group.finish();

    // The pad-pipeline lanes: identical DC-net work (same deterministic pad
    // keys, same silent rounds, digest-pinned equal output), differing only
    // in how pads are expanded and combined.
    let mut group = c.benchmark_group("e4_dcnet_pad_pipeline");
    group.sample_size(20);
    for k in [4usize, 8, 16, 32, 64] {
        let table = fnp_bench::bench_pad_key_table(k, 0x5eed);
        group.bench_with_input(BenchmarkId::new("keyed_fused", k), &k, |b, _| {
            let participants = fnp_bench::bench_keyed_participants(&table);
            b.iter(|| fnp_bench::run_fused_keyed_rounds(&participants, SLOT_LEN, ROUNDS_PER_ITER))
        });
        group.bench_with_input(BenchmarkId::new("keyed_unfused", k), &k, |b, _| {
            b.iter(|| fnp_bench::run_unfused_keyed_rounds(&table, SLOT_LEN, ROUNDS_PER_ITER))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dcnet);
criterion_main!(benches);
