//! Criterion bench for experiments E4/E9: DC-net rounds of both variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dcnet(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_dcnet_round");
    group.sample_size(20);
    for k in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("explicit", k), &k, |b, &k| {
            let payloads = vec![None; k];
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| fnp_dcnet::run_explicit_round(&payloads, 512, &mut rng).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("keyed", k), &k, |b, &k| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut dc_group = fnp_dcnet::KeyedDcGroup::new(k, 512, &mut rng).unwrap();
            let payloads = vec![None; k];
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                dc_group.run_round(round, &payloads).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dcnet);
criterion_main!(benches);
