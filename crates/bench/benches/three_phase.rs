//! Criterion bench for experiment E5: one flexible three-phase broadcast.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_three_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_three_phase");
    group.sample_size(10);
    group.bench_function("broadcast_200_nodes", |b| {
        b.iter(|| fnp_bench::three_phase_breakdown(200, &[5], &[4], 1, 5))
    });
    group.finish();
}

criterion_group!(benches, bench_three_phase);
criterion_main!(benches);
