//! Criterion bench for experiment E7: flexible-protocol broadcast plus
//! first-spy attack for one (k, d, phi) cell.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_privacy_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_privacy_bounds");
    group.sample_size(10);
    group.bench_function("cell_100_nodes", |b| {
        b.iter(|| fnp_bench::privacy_bounds(100, &[5], &[4], &[0.2], 1, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_privacy_bounds);
criterion_main!(benches);
