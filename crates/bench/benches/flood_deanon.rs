//! Criterion bench for experiment E2: first-spy + Jordan-centre attack on
//! one flooded broadcast.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_flood_deanon(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_flood_deanon");
    group.sample_size(10);
    group.bench_function("attack_100_nodes", |b| {
        b.iter(|| fnp_bench::flood_deanonymization(&[100], &[0.2], 1, 2))
    });
    group.finish();
}

criterion_group!(benches, bench_flood_deanon);
criterion_main!(benches);
