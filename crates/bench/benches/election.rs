//! Criterion bench for ablation A1: hash-based virtual-source election
//! versus keeping the originator as the virtual source.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_election");
    group.sample_size(10);
    group.bench_function("ablation_small", |b| {
        b.iter(|| fnp_bench::election_ablation(100, 0.2, 2, 21))
    });
    group.finish();
}

criterion_group!(benches, bench_election);
criterion_main!(benches);
