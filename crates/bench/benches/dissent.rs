//! Criterion bench for experiment E11: the Dissent-style baseline's
//! announcement shuffle and full round cost across group sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use fnp_shuffle::{DissentSession, SessionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dissent(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_dissent");
    group.sample_size(20);
    group.bench_function("startup_sweep", |b| {
        b.iter(|| fnp_bench::dissent_startup(&[4, 8, 12], 5))
    });
    for k in [4usize, 8, 12] {
        group.bench_function(format!("full_round_k{k}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(k as u64);
                let mut session =
                    DissentSession::new(k, SessionConfig::default(), &mut rng).unwrap();
                let mut messages = vec![None; k];
                messages[0] = Some(vec![0x5au8; 250]);
                session.run_round(&messages, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dissent);
criterion_main!(benches);
