//! Dependency-free JSON output for the experiment binaries.
//!
//! Every `fnp-bench` binary accepts `--json <path>` and writes its rows,
//! its parameters and its wall-clock timing as a pretty-printed JSON
//! document. The writer is deliberately tiny (the build is offline, so no
//! serde): a [`Json`] value tree, a deterministic pretty-printer with one
//! key per line, and [`ToJson`] impls for every experiment row type.
//!
//! Determinism matters here: the CI smoke job runs one binary twice and
//! diffs the outputs (ignoring the `wall_clock_ms` line), so everything
//! except the timing must be byte-identical across invocations. Rust's
//! default float formatting (shortest round-trip representation) provides
//! exactly that.
//!
//! The module also provides a small recursive-descent parser
//! ([`Json::parse`]) so that `bench_baseline` can read the committed
//! `BENCH_baseline.json` trajectory back and *append* to it instead of
//! clobbering it.

use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialised without decimal point).
    Int(i64),
    /// An unsigned integer (serialised without decimal point).
    UInt(u64),
    /// A finite float; non-finite values serialise as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(value: bool) -> Self {
        Json::Bool(value)
    }
}
impl From<i64> for Json {
    fn from(value: i64) -> Self {
        Json::Int(value)
    }
}
impl From<u64> for Json {
    fn from(value: u64) -> Self {
        Json::UInt(value)
    }
}
impl From<usize> for Json {
    fn from(value: usize) -> Self {
        Json::UInt(value as u64)
    }
}
impl From<u32> for Json {
    fn from(value: u32) -> Self {
        Json::UInt(u64::from(value))
    }
}
impl From<f64> for Json {
    fn from(value: f64) -> Self {
        Json::Num(value)
    }
}
impl From<&str> for Json {
    fn from(value: &str) -> Self {
        Json::Str(value.to_string())
    }
}
impl From<String> for Json {
    fn from(value: String) -> Self {
        Json::Str(value)
    }
}
impl From<Vec<Json>> for Json {
    fn from(value: Vec<Json>) -> Self {
        Json::Arr(value)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Self {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(key, value)| (key.into(), value.into()))
                .collect(),
        )
    }

    /// Builds an array by converting each row with [`ToJson`].
    pub fn rows<'a, T: ToJson + 'a>(rows: impl IntoIterator<Item = &'a T>) -> Self {
        Json::Arr(rows.into_iter().map(ToJson::to_json).collect())
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(value) => out.push_str(if *value { "true" } else { "false" }),
            Json::Int(value) => out.push_str(&value.to_string()),
            Json::UInt(value) => out.push_str(&value.to_string()),
            Json::Num(value) => {
                if value.is_finite() {
                    // Shortest round-trip representation; deterministic.
                    out.push_str(&format!("{value}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(value) => write_escaped(out, value),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (index, (key, value)) in pairs.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Serialises the value as pretty-printed JSON (two-space indent, one
    /// key per line, trailing newline).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document.
    ///
    /// Numbers with neither fraction nor exponent parse as
    /// [`Json::Int`]/[`Json::UInt`] (matching what the printer emits);
    /// everything else numeric becomes [`Json::Num`]. A round-trip through
    /// [`Json::to_pretty_string`] and back is lossless for every value this
    /// module can print.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the offending byte offset for
    /// malformed input (including trailing garbage after the document).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON document"));
        }
        Ok(value)
    }

    /// Borrowing lookup of an object key (`None` for non-objects and
    /// missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string content, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(value) => Some(value),
            _ => None,
        }
    }

    /// The numeric content as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(value) => Some(*value),
            Json::Int(value) => u64::try_from(*value).ok(),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (index, (key, value)) in pairs.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
            // Scalars print identically in both modes.
            scalar => scalar.write_pretty(out, 0),
        }
    }

    /// Serialises the value on a single line with no whitespace — the
    /// framing needed by line-delimited JSON transports such as `fnp-node`.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }
}

/// Error produced by [`Json::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {text:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let unit = self.hex_unit()?;
                            let code_point = match unit {
                                // High surrogate: must pair with a low one
                                // to form a supplementary code point.
                                0xd800..=0xdbff => {
                                    if self.bytes.get(self.pos) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                                    {
                                        return Err(self.error("unpaired high surrogate"));
                                    }
                                    self.pos += 2;
                                    let low = self.hex_unit()?;
                                    if !(0xdc00..=0xdfff).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
                                }
                                0xdc00..=0xdfff => return Err(self.error("unpaired low surrogate")),
                                scalar => scalar,
                            };
                            out.push(
                                char::from_u32(code_point)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(
                                self.error(format!("unsupported escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at byte.
                    let start = self.pos - 1;
                    let len = utf8_len(byte);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    /// Parses the four hex digits of a `\u` escape (the `\u` itself already
    /// consumed), returning the UTF-16 code unit.
    fn hex_unit(&mut self) -> Result<u32, ParseError> {
        let unit = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    /// Consumes a non-empty digit run, erroring on an empty one (JSON
    /// requires at least one digit in every numeric component).
    fn digits(&mut self, part: &str) -> Result<usize, ParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error(format!("expected digits in number {part}")));
        }
        Ok(self.pos - start)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let leading_zero = self.peek() == Some(b'0');
        let integer_digits = self.digits("integer part")?;
        if leading_zero && integer_digits > 1 {
            return Err(self.error("leading zeros are not valid JSON"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            self.digits("fraction")?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits("exponent")?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans ASCII bytes only");
        if integral {
            if let Ok(value) = text.parse::<u64>() {
                return Ok(Json::UInt(value));
            }
            if let Ok(value) = text.parse::<i64>() {
                return Ok(Json::Int(value));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number {text:?}")))
    }
}

/// Length of the UTF-8 sequence introduced by `first` (1 for ASCII).
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

fn write_escaped(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion of one experiment row into a [`Json`] object.
pub trait ToJson {
    /// The JSON representation of this row.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for fnp_adversary::PrivacySummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("runs", Json::from(self.runs)),
            ("detection_probability", self.detection_probability.into()),
            (
                "mean_probability_on_origin",
                self.mean_probability_on_origin.into(),
            ),
            (
                "mean_anonymity_set_size",
                self.mean_anonymity_set_size.into(),
            ),
            ("mean_entropy_bits", self.mean_entropy_bits.into()),
        ])
    }
}

impl ToJson for crate::LandscapeRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol)),
            ("adversary_fraction", self.adversary_fraction.into()),
            ("detection_probability", self.detection_probability.into()),
            ("mean_messages", self.mean_messages.into()),
            ("mean_latency_ms", self.mean_latency_ms.into()),
        ])
    }
}

impl ToJson for crate::FloodDeanonRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::from(self.n)),
            ("adversary_fraction", self.adversary_fraction.into()),
            ("first_spy", self.first_spy.to_json()),
            ("jordan_center", self.jordan_center.to_json()),
        ])
    }
}

impl ToJson for crate::DandelionRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("adversary_fraction", Json::from(self.adversary_fraction)),
            ("stem_probability", self.stem_probability.into()),
            ("detection_probability", self.detection_probability.into()),
            ("mean_stem_length", self.mean_stem_length.into()),
        ])
    }
}

impl ToJson for crate::DcNetCostRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("k", Json::from(self.k)),
            ("explicit_messages", self.explicit_messages.into()),
            ("keyed_messages", self.keyed_messages.into()),
            ("keyed_bytes", self.keyed_bytes.into()),
            (
                "idle_bytes_with_reservation",
                self.idle_bytes_with_reservation.into(),
            ),
            (
                "idle_bytes_without_reservation",
                self.idle_bytes_without_reservation.into(),
            ),
        ])
    }
}

impl ToJson for crate::ThreePhaseRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("k", Json::from(self.k)),
            ("d", self.d.into()),
            ("phase1", self.phase1.into()),
            ("phase2", self.phase2.into()),
            ("phase3", self.phase3.into()),
            ("total", self.total.into()),
            ("coverage", self.coverage.into()),
        ])
    }
}

impl ToJson for crate::MessageOverheadResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::from(self.n)),
            (
                "adaptive_diffusion_messages",
                self.adaptive_diffusion_messages.into(),
            ),
            ("flood_messages", self.flood_messages.into()),
            ("flexible_messages", self.flexible_messages.into()),
            ("overhead_ratio", self.overhead_ratio.into()),
        ])
    }
}

impl ToJson for crate::PrivacyBoundsRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("k", Json::from(self.k)),
            ("d", self.d.into()),
            ("adversary_fraction", self.adversary_fraction.into()),
            ("summary", self.summary.to_json()),
            ("group_bound", self.group_bound.into()),
            ("ideal", self.ideal.into()),
        ])
    }
}

impl ToJson for crate::GroupOverlapRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("group_size", Json::from(self.group_size)),
            ("overlap_degree", self.overlap_degree.into()),
            ("naive_worst_case", self.naive_worst_case.into()),
            ("smoothed_worst_case", self.smoothed_worst_case.into()),
            ("ideal", self.ideal.into()),
        ])
    }
}

impl ToJson for crate::LatencyRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol)),
            ("t50_ms", self.t50_ms.into()),
            ("t90_ms", self.t90_ms.into()),
            ("t100_ms", self.t100_ms.into()),
            ("messages", self.messages.into()),
        ])
    }
}

impl ToJson for crate::DissentStartupRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("k", Json::from(self.k)),
            ("startup_seconds", self.startup_seconds.into()),
            ("messages", self.messages.into()),
            ("bytes", self.bytes.into()),
            ("serial_steps", self.serial_steps.into()),
        ])
    }
}

impl ToJson for crate::FairnessRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol)),
            ("jain_index", self.jain_index.into()),
            ("gini", self.gini.into()),
            (
                "mean_inclusion_delay_ms",
                self.mean_inclusion_delay_ms.into(),
            ),
            ("orphaned_fraction", self.orphaned_fraction.into()),
        ])
    }
}

impl ToJson for crate::SteadyStateRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol)),
            ("rate_per_second", self.rate_per_second.into()),
            ("injected", self.injected.into()),
            ("delivered_fraction", self.delivered_fraction.into()),
            ("throughput_tx_per_s", self.throughput_tx_per_s.into()),
            ("p50_delivery_ms", self.p50_delivery_ms.into()),
            ("p95_delivery_ms", self.p95_delivery_ms.into()),
            ("p99_delivery_ms", self.p99_delivery_ms.into()),
            ("mean_messages_per_tx", self.mean_messages_per_tx.into()),
            ("peak_concurrent", self.peak_concurrent.into()),
            ("mempool_peak_len", self.mempool_peak_len.into()),
            ("mempool_mean_len", self.mempool_mean_len.into()),
            ("included_fraction", self.included_fraction.into()),
            (
                "mean_inclusion_delay_ms",
                self.mean_inclusion_delay_ms.into(),
            ),
            ("first_spy_detection", self.first_spy_detection.into()),
        ])
    }
}

impl ToJson for crate::ElectionAblationRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("strategy", Json::from(self.strategy)),
            ("summary", self.summary.to_json()),
        ])
    }
}

/// Writes one experiment report to `path`.
///
/// The document layout keeps `wall_clock_ms` on its own line so that
/// determinism checks can compare everything else byte for byte:
///
/// ```json
/// {
///   "experiment": "fig1_landscape",
///   "threads": 4,
///   "params": { ... },
///   "wall_clock_ms": 123.456,
///   "rows": [ ... ]
/// }
/// ```
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_report(
    path: &Path,
    experiment: &str,
    threads: usize,
    params: Json,
    rows: Json,
    wall_clock: Duration,
) -> std::io::Result<()> {
    let report = Json::Obj(vec![
        ("experiment".to_string(), Json::from(experiment)),
        ("threads".to_string(), Json::from(threads)),
        ("params".to_string(), params),
        (
            "wall_clock_ms".to_string(),
            Json::Num(wall_clock.as_secs_f64() * 1e3),
        ),
        ("rows".to_string(), rows),
    ]);
    let mut file = std::fs::File::create(path)?;
    file.write_all(report.to_pretty_string().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize_as_json() {
        assert_eq!(Json::Null.to_pretty_string(), "null\n");
        assert_eq!(Json::from(true).to_pretty_string(), "true\n");
        assert_eq!(Json::from(3u64).to_pretty_string(), "3\n");
        assert_eq!(Json::from(-5i64).to_pretty_string(), "-5\n");
        assert_eq!(Json::from(1.5).to_pretty_string(), "1.5\n");
        // Whole floats print without a fractional part but stay valid JSON.
        assert_eq!(Json::from(2.0).to_pretty_string(), "2\n");
        assert_eq!(Json::Num(f64::NAN).to_pretty_string(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).to_pretty_string(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let tricky = "a\"b\\c\nd\te\u{1}";
        assert_eq!(
            Json::from(tricky).to_pretty_string(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n"
        );
    }

    #[test]
    fn objects_and_arrays_pretty_print_one_key_per_line() {
        let value = Json::obj([
            ("name", Json::from("x")),
            ("items", Json::Arr(vec![Json::from(1u64), Json::from(2u64)])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj([("k", Json::from(0.25))])),
        ]);
        let expected = "{\n  \"name\": \"x\",\n  \"items\": [\n    1,\n    2\n  ],\n  \"empty\": [],\n  \"nested\": {\n    \"k\": 0.25\n  }\n}\n";
        assert_eq!(value.to_pretty_string(), expected);
    }

    #[test]
    fn serialization_is_deterministic() {
        let rows = crate::group_overlap(&[3, 5], &[1, 2]);
        let a = Json::rows(&rows).to_pretty_string();
        let b = Json::rows(&rows).to_pretty_string();
        assert_eq!(a, b);
        assert!(a.contains("\"group_size\": 3"));
    }

    #[test]
    fn parse_roundtrips_everything_the_printer_emits() {
        let value = Json::obj([
            ("null", Json::Null),
            ("flag", Json::from(true)),
            ("off", Json::from(false)),
            ("uint", Json::from(18_446_744_073_709_551_615u64)),
            ("int", Json::from(-42i64)),
            ("float", Json::from(0.125)),
            ("tricky", Json::from("a\"b\\c\nd\te\u{1}ü")),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([("k", Json::from(3u64))]),
                    Json::Arr(vec![]),
                ]),
            ),
            ("empty", Json::obj::<&str, Json>([])),
        ]);
        let text = value.to_pretty_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, value);
        // And printing the parse yields the identical document again.
        assert_eq!(parsed.to_pretty_string(), text);
    }

    #[test]
    fn parse_handles_compact_and_exponent_forms() {
        let parsed = Json::parse(r#"{"a":[1,2.5,-3,1e3],"b":{"c":null}}"#).unwrap();
        assert_eq!(
            parsed.get("a"),
            Some(&Json::Arr(vec![
                Json::UInt(1),
                Json::Num(2.5),
                Json::Int(-3),
                Json::Num(1000.0),
            ]))
        );
        assert_eq!(parsed.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
        assert_eq!(parsed.get("missing"), None);
        assert_eq!(Json::from("x").as_str(), Some("x"));
        assert_eq!(Json::Null.as_str(), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1}extra",
            "\"bad \\q escape\"",
            // Non-JSON numeric forms must be rejected, not normalised.
            "1.",
            ".5",
            "5e",
            "01",
            "-01",
            "-",
            "2.e3",
            // Lone or mismatched surrogates.
            "\"\\ud83d\"",
            "\"\\ud83d x\"",
            "\"\\udc00\"",
            "\"\\ud83d\\ud83d\"",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?} should fail");
        }
    }

    #[test]
    fn compact_form_is_single_line_and_roundtrips() {
        let value = Json::obj([
            ("type", Json::from("send")),
            ("to", Json::from(3u64)),
            ("items", Json::Arr(vec![Json::from(1u64), Json::Null])),
            ("empty", Json::obj::<&str, Json>([])),
        ]);
        let compact = value.to_compact_string();
        assert_eq!(
            compact,
            r#"{"type":"send","to":3,"items":[1,null],"empty":{}}"#
        );
        assert!(!compact.contains('\n'));
        assert_eq!(Json::parse(&compact).unwrap(), value);
    }

    #[test]
    fn scalar_accessors() {
        assert_eq!(Json::from(7u64).as_u64(), Some(7));
        assert_eq!(Json::Int(7).as_u64(), Some(7));
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::from("7").as_u64(), None);
        let arr = Json::Arr(vec![Json::Null]);
        assert_eq!(arr.as_array(), Some(&[Json::Null][..]));
        assert_eq!(Json::Null.as_array(), None);
    }

    #[test]
    fn parse_decodes_surrogate_pairs() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::from("\u{1f600}")
        );
        assert_eq!(Json::parse("\"\\u00fc\"").unwrap(), Json::from("ü"));
        // Strict number forms still parse.
        assert_eq!(Json::parse("0").unwrap(), Json::UInt(0));
        assert_eq!(Json::parse("-0.5e+2").unwrap(), Json::Num(-50.0));
    }

    #[test]
    fn write_report_produces_the_documented_layout() {
        let dir = std::env::temp_dir().join("fnp_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_report(
            &path,
            "unit_test",
            2,
            Json::obj([("n", Json::from(10u64))]),
            Json::Arr(vec![]),
            Duration::from_millis(5),
        )
        .unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("{\n  \"experiment\": \"unit_test\""));
        assert!(contents.contains("\n  \"wall_clock_ms\": 5"));
        assert!(contents.contains("\n  \"rows\": []"));
        assert!(contents.ends_with("}\n"));
        std::fs::remove_file(&path).unwrap();
    }
}
