//! Dependency-free JSON output for the experiment binaries.
//!
//! Every `fnp-bench` binary accepts `--json <path>` and writes its rows,
//! its parameters and its wall-clock timing as a pretty-printed JSON
//! document. The writer is deliberately tiny (the build is offline, so no
//! serde): a [`Json`] value tree, a deterministic pretty-printer with one
//! key per line, and [`ToJson`] impls for every experiment row type.
//!
//! Determinism matters here: the CI smoke job runs one binary twice and
//! diffs the outputs (ignoring the `wall_clock_ms` line), so everything
//! except the timing must be byte-identical across invocations. Rust's
//! default float formatting (shortest round-trip representation) provides
//! exactly that.

use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialised without decimal point).
    Int(i64),
    /// An unsigned integer (serialised without decimal point).
    UInt(u64),
    /// A finite float; non-finite values serialise as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(value: bool) -> Self {
        Json::Bool(value)
    }
}
impl From<i64> for Json {
    fn from(value: i64) -> Self {
        Json::Int(value)
    }
}
impl From<u64> for Json {
    fn from(value: u64) -> Self {
        Json::UInt(value)
    }
}
impl From<usize> for Json {
    fn from(value: usize) -> Self {
        Json::UInt(value as u64)
    }
}
impl From<u32> for Json {
    fn from(value: u32) -> Self {
        Json::UInt(u64::from(value))
    }
}
impl From<f64> for Json {
    fn from(value: f64) -> Self {
        Json::Num(value)
    }
}
impl From<&str> for Json {
    fn from(value: &str) -> Self {
        Json::Str(value.to_string())
    }
}
impl From<String> for Json {
    fn from(value: String) -> Self {
        Json::Str(value)
    }
}
impl From<Vec<Json>> for Json {
    fn from(value: Vec<Json>) -> Self {
        Json::Arr(value)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Self {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(key, value)| (key.into(), value.into()))
                .collect(),
        )
    }

    /// Builds an array by converting each row with [`ToJson`].
    pub fn rows<'a, T: ToJson + 'a>(rows: impl IntoIterator<Item = &'a T>) -> Self {
        Json::Arr(rows.into_iter().map(ToJson::to_json).collect())
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(value) => out.push_str(if *value { "true" } else { "false" }),
            Json::Int(value) => out.push_str(&value.to_string()),
            Json::UInt(value) => out.push_str(&value.to_string()),
            Json::Num(value) => {
                if value.is_finite() {
                    // Shortest round-trip representation; deterministic.
                    out.push_str(&format!("{value}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(value) => write_escaped(out, value),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (index, (key, value)) in pairs.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Serialises the value as pretty-printed JSON (two-space indent, one
    /// key per line, trailing newline).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

fn write_escaped(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion of one experiment row into a [`Json`] object.
pub trait ToJson {
    /// The JSON representation of this row.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for fnp_adversary::PrivacySummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("runs", Json::from(self.runs)),
            ("detection_probability", self.detection_probability.into()),
            (
                "mean_probability_on_origin",
                self.mean_probability_on_origin.into(),
            ),
            (
                "mean_anonymity_set_size",
                self.mean_anonymity_set_size.into(),
            ),
            ("mean_entropy_bits", self.mean_entropy_bits.into()),
        ])
    }
}

impl ToJson for crate::LandscapeRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol)),
            ("adversary_fraction", self.adversary_fraction.into()),
            ("detection_probability", self.detection_probability.into()),
            ("mean_messages", self.mean_messages.into()),
            ("mean_latency_ms", self.mean_latency_ms.into()),
        ])
    }
}

impl ToJson for crate::FloodDeanonRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::from(self.n)),
            ("adversary_fraction", self.adversary_fraction.into()),
            ("first_spy", self.first_spy.to_json()),
            ("jordan_center", self.jordan_center.to_json()),
        ])
    }
}

impl ToJson for crate::DandelionRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("adversary_fraction", Json::from(self.adversary_fraction)),
            ("stem_probability", self.stem_probability.into()),
            ("detection_probability", self.detection_probability.into()),
            ("mean_stem_length", self.mean_stem_length.into()),
        ])
    }
}

impl ToJson for crate::DcNetCostRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("k", Json::from(self.k)),
            ("explicit_messages", self.explicit_messages.into()),
            ("keyed_messages", self.keyed_messages.into()),
            ("keyed_bytes", self.keyed_bytes.into()),
            (
                "idle_bytes_with_reservation",
                self.idle_bytes_with_reservation.into(),
            ),
            (
                "idle_bytes_without_reservation",
                self.idle_bytes_without_reservation.into(),
            ),
        ])
    }
}

impl ToJson for crate::ThreePhaseRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("k", Json::from(self.k)),
            ("d", self.d.into()),
            ("phase1", self.phase1.into()),
            ("phase2", self.phase2.into()),
            ("phase3", self.phase3.into()),
            ("total", self.total.into()),
            ("coverage", self.coverage.into()),
        ])
    }
}

impl ToJson for crate::MessageOverheadResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::from(self.n)),
            (
                "adaptive_diffusion_messages",
                self.adaptive_diffusion_messages.into(),
            ),
            ("flood_messages", self.flood_messages.into()),
            ("flexible_messages", self.flexible_messages.into()),
            ("overhead_ratio", self.overhead_ratio.into()),
        ])
    }
}

impl ToJson for crate::PrivacyBoundsRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("k", Json::from(self.k)),
            ("d", self.d.into()),
            ("adversary_fraction", self.adversary_fraction.into()),
            ("summary", self.summary.to_json()),
            ("group_bound", self.group_bound.into()),
            ("ideal", self.ideal.into()),
        ])
    }
}

impl ToJson for crate::GroupOverlapRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("group_size", Json::from(self.group_size)),
            ("overlap_degree", self.overlap_degree.into()),
            ("naive_worst_case", self.naive_worst_case.into()),
            ("smoothed_worst_case", self.smoothed_worst_case.into()),
            ("ideal", self.ideal.into()),
        ])
    }
}

impl ToJson for crate::LatencyRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol)),
            ("t50_ms", self.t50_ms.into()),
            ("t90_ms", self.t90_ms.into()),
            ("t100_ms", self.t100_ms.into()),
            ("messages", self.messages.into()),
        ])
    }
}

impl ToJson for crate::DissentStartupRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("k", Json::from(self.k)),
            ("startup_seconds", self.startup_seconds.into()),
            ("messages", self.messages.into()),
            ("bytes", self.bytes.into()),
            ("serial_steps", self.serial_steps.into()),
        ])
    }
}

impl ToJson for crate::FairnessRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol)),
            ("jain_index", self.jain_index.into()),
            ("gini", self.gini.into()),
            (
                "mean_inclusion_delay_ms",
                self.mean_inclusion_delay_ms.into(),
            ),
            ("orphaned_fraction", self.orphaned_fraction.into()),
        ])
    }
}

impl ToJson for crate::ElectionAblationRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("strategy", Json::from(self.strategy)),
            ("summary", self.summary.to_json()),
        ])
    }
}

/// Writes one experiment report to `path`.
///
/// The document layout keeps `wall_clock_ms` on its own line so that
/// determinism checks can compare everything else byte for byte:
///
/// ```json
/// {
///   "experiment": "fig1_landscape",
///   "threads": 4,
///   "params": { ... },
///   "wall_clock_ms": 123.456,
///   "rows": [ ... ]
/// }
/// ```
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_report(
    path: &Path,
    experiment: &str,
    threads: usize,
    params: Json,
    rows: Json,
    wall_clock: Duration,
) -> std::io::Result<()> {
    let report = Json::Obj(vec![
        ("experiment".to_string(), Json::from(experiment)),
        ("threads".to_string(), Json::from(threads)),
        ("params".to_string(), params),
        (
            "wall_clock_ms".to_string(),
            Json::Num(wall_clock.as_secs_f64() * 1e3),
        ),
        ("rows".to_string(), rows),
    ]);
    let mut file = std::fs::File::create(path)?;
    file.write_all(report.to_pretty_string().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize_as_json() {
        assert_eq!(Json::Null.to_pretty_string(), "null\n");
        assert_eq!(Json::from(true).to_pretty_string(), "true\n");
        assert_eq!(Json::from(3u64).to_pretty_string(), "3\n");
        assert_eq!(Json::from(-5i64).to_pretty_string(), "-5\n");
        assert_eq!(Json::from(1.5).to_pretty_string(), "1.5\n");
        // Whole floats print without a fractional part but stay valid JSON.
        assert_eq!(Json::from(2.0).to_pretty_string(), "2\n");
        assert_eq!(Json::Num(f64::NAN).to_pretty_string(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).to_pretty_string(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let tricky = "a\"b\\c\nd\te\u{1}";
        assert_eq!(
            Json::from(tricky).to_pretty_string(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n"
        );
    }

    #[test]
    fn objects_and_arrays_pretty_print_one_key_per_line() {
        let value = Json::obj([
            ("name", Json::from("x")),
            ("items", Json::Arr(vec![Json::from(1u64), Json::from(2u64)])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj([("k", Json::from(0.25))])),
        ]);
        let expected = "{\n  \"name\": \"x\",\n  \"items\": [\n    1,\n    2\n  ],\n  \"empty\": [],\n  \"nested\": {\n    \"k\": 0.25\n  }\n}\n";
        assert_eq!(value.to_pretty_string(), expected);
    }

    #[test]
    fn serialization_is_deterministic() {
        let rows = crate::group_overlap(&[3, 5], &[1, 2]);
        let a = Json::rows(&rows).to_pretty_string();
        let b = Json::rows(&rows).to_pretty_string();
        assert_eq!(a, b);
        assert!(a.contains("\"group_size\": 3"));
    }

    #[test]
    fn write_report_produces_the_documented_layout() {
        let dir = std::env::temp_dir().join("fnp_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_report(
            &path,
            "unit_test",
            2,
            Json::obj([("n", Json::from(10u64))]),
            Json::Arr(vec![]),
            Duration::from_millis(5),
        )
        .unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("{\n  \"experiment\": \"unit_test\""));
        assert!(contents.contains("\n  \"wall_clock_ms\": 5"));
        assert!(contents.contains("\n  \"rows\": []"));
        assert!(contents.ends_with("}\n"));
        std::fs::remove_file(&path).unwrap();
    }
}
