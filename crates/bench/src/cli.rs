//! Shared command-line parsing for the experiment binaries.
//!
//! Every binary in `src/bin/` understands the same small flag set (no
//! external argument-parsing dependency — the build is offline):
//!
//! * `--json <path>` — additionally write the rows, parameters and
//!   wall-clock timing as pretty-printed JSON (see [`crate::json`]).
//! * `--threads <n>` — worker threads for the [`crate::TrialRunner`]
//!   (`0` or omitted = all cores; the `FNP_THREADS` environment variable
//!   is the session-wide default).
//! * `--n <nodes>` — override the overlay size (where the experiment has
//!   one).
//! * `--runs <r>` — override the per-cell repetition count (where the
//!   experiment has one).
//! * `--large-n <nodes>` — override the overlay size of a binary's
//!   dedicated large-scale leg (currently only `bench_baseline`'s
//!   single-flood-trial timing), independently of `--n`.
//! * `--rates <r1,r2,…>` — override the arrival rates (transactions per
//!   second) of a steady-state experiment; each rate must be a finite,
//!   strictly positive number.
//!
//! Unknown flags abort with a usage message: a typo silently ignored is an
//! experiment silently misconfigured.

use crate::TrialRunner;
use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration, Instant};

/// Parsed command-line arguments of one experiment binary.
#[derive(Clone, Debug, Default)]
pub struct BinArgs {
    /// Where to write the JSON report, if requested.
    pub json: Option<PathBuf>,
    /// Worker-thread count (`0` = automatic).
    pub threads: usize,
    /// Overlay-size override.
    pub n: Option<usize>,
    /// Repetition-count override.
    pub runs: Option<usize>,
    /// Overlay-size override for a binary's large-scale leg.
    pub large_n: Option<usize>,
    /// Arrival-rate override (transactions per second) for steady-state
    /// experiments.
    pub rates: Option<Vec<f64>>,
}

/// Why [`BinArgs::try_parse_from`] stopped parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseError {
    /// `--help`/`-h` was given; print usage and exit successfully.
    HelpRequested,
    /// The arguments are invalid; print the message plus usage and exit
    /// with status 2.
    Invalid(String),
}

impl BinArgs {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn parse() -> Self {
        match Self::try_parse_from(std::env::args().skip(1)) {
            Ok(parsed) => parsed,
            Err(ParseError::HelpRequested) => {
                usage();
                exit(0);
            }
            Err(ParseError::Invalid(message)) => {
                eprintln!("error: {message}");
                usage();
                exit(2);
            }
        }
    }

    /// The fallible core of [`BinArgs::parse`], separated so the rejection
    /// paths are unit-testable without spawning a process.
    fn try_parse_from(mut args: impl Iterator<Item = String>) -> Result<Self, ParseError> {
        let mut parsed = Self::default();
        while let Some(flag) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .ok_or_else(|| ParseError::Invalid(format!("{flag} requires a value")))
            };
            match flag.as_str() {
                "--json" => parsed.json = Some(PathBuf::from(value("--json")?)),
                "--threads" => parsed.threads = parse_number(&value("--threads")?, "--threads")?,
                "--n" => parsed.n = Some(parse_positive(&value("--n")?, "--n")?),
                "--runs" => parsed.runs = Some(parse_positive(&value("--runs")?, "--runs")?),
                "--large-n" => {
                    parsed.large_n = Some(parse_positive(&value("--large-n")?, "--large-n")?);
                }
                "--rates" => parsed.rates = Some(parse_rates(&value("--rates")?)?),
                "--help" | "-h" => return Err(ParseError::HelpRequested),
                other => {
                    return Err(ParseError::Invalid(format!("unknown argument {other:?}")));
                }
            }
        }
        Ok(parsed)
    }

    /// The [`TrialRunner`] these arguments select.
    #[must_use]
    pub fn runner(&self) -> TrialRunner {
        TrialRunner::new(self.threads)
    }

    /// The overlay size, falling back to the experiment's default.
    #[must_use]
    pub fn n_or(&self, default: usize) -> usize {
        self.n.unwrap_or(default)
    }

    /// The repetition count, falling back to the experiment's default.
    #[must_use]
    pub fn runs_or(&self, default: usize) -> usize {
        self.runs.unwrap_or(default)
    }

    /// The large-scale-leg overlay size, falling back to the binary's
    /// default.
    #[must_use]
    pub fn large_n_or(&self, default: usize) -> usize {
        self.large_n.unwrap_or(default)
    }

    /// The arrival rates, falling back to the experiment's defaults.
    #[must_use]
    pub fn rates_or(&self, default: &[f64]) -> Vec<f64> {
        self.rates.clone().unwrap_or_else(|| default.to_vec())
    }
}

fn parse_number(text: &str, flag: &str) -> Result<usize, ParseError> {
    text.parse().map_err(|_| {
        ParseError::Invalid(format!(
            "{flag} expects a non-negative integer, got {text:?}"
        ))
    })
}

/// Like [`parse_number`], but additionally rejects zero: `--n 0` or
/// `--runs 0` would silently produce an empty/degenerate experiment.
fn parse_positive(text: &str, flag: &str) -> Result<usize, ParseError> {
    match parse_number(text, flag)? {
        0 => Err(ParseError::Invalid(format!(
            "{flag} expects a positive integer, got 0"
        ))),
        value => Ok(value),
    }
}

/// Parses a comma-separated arrival-rate list, rejecting anything
/// [`fnp_netsim::validate_rate`] rejects (NaN, infinities, zero, negative)
/// — the same convention as `--n 0`: a degenerate rate silently accepted
/// is an experiment silently misconfigured.
fn parse_rates(text: &str) -> Result<Vec<f64>, ParseError> {
    let mut rates = Vec::new();
    for part in text.split(',') {
        let rate: f64 = part
            .trim()
            .parse()
            .map_err(|_| ParseError::Invalid(format!("--rates expects numbers, got {part:?}")))?;
        fnp_netsim::validate_rate(rate)
            .map_err(|error| ParseError::Invalid(format!("--rates: {error}")))?;
        rates.push(rate);
    }
    if rates.is_empty() {
        return Err(ParseError::Invalid(
            "--rates expects at least one rate".to_string(),
        ));
    }
    Ok(rates)
}

fn usage() {
    eprintln!(
        "usage: <experiment> [--json <path>] [--threads <n>] [--n <nodes>] [--runs <r>] \
         [--large-n <nodes>] [--rates <r1,r2,…>]\n\
         \n\
         --json <path>     also write rows + wall-clock timing as JSON\n\
         --threads <n>     trial worker threads (0 = all cores)\n\
         --n <nodes>       overlay size override, must be positive (where applicable)\n\
         --runs <r>        repetitions override, must be positive (where applicable)\n\
         --large-n <nodes> large-scale-leg overlay size, must be positive (where applicable)\n\
         --rates <list>    steady-state arrival rates in tx/s, comma-separated, each finite \
         and positive (where applicable)"
    );
}

/// Runs `body` (the experiment driver) while timing it, and writes the JSON
/// report afterwards if `--json` was given.
///
/// Returns the rows so the binary can print its human-readable table. The
/// wall clock covers only the driver call — not table printing — so the
/// recorded timing is the number a perf trajectory should track.
pub fn with_report<T>(
    args: &BinArgs,
    experiment: &str,
    params: crate::json::Json,
    rows_to_json: impl FnOnce(&T) -> crate::json::Json,
    body: impl FnOnce() -> T,
) -> T {
    let started = Instant::now();
    let rows = body();
    let elapsed = started.elapsed();
    if let Some(path) = &args.json {
        let report_rows = rows_to_json(&rows);
        crate::json::write_report(
            path,
            experiment,
            args.runner().threads(),
            params,
            report_rows,
            elapsed,
        )
        .unwrap_or_else(|error| {
            eprintln!("error: failed to write {}: {error}", path.display());
            exit(1);
        });
        eprintln!(
            "wrote {} ({} threads, {:.1} ms)",
            path.display(),
            args.runner().threads(),
            as_millis(elapsed)
        );
    }
    rows
}

fn as_millis(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn try_parse(args: &[&str]) -> Result<BinArgs, ParseError> {
        BinArgs::try_parse_from(args.iter().map(|s| s.to_string()))
    }

    fn parse(args: &[&str]) -> BinArgs {
        try_parse(args).expect("arguments should parse")
    }

    fn rejection(args: &[&str]) -> String {
        match try_parse(args) {
            Err(ParseError::Invalid(message)) => message,
            other => panic!("expected a rejection for {args:?}, got {other:?}"),
        }
    }

    #[test]
    fn empty_args_are_defaults() {
        let args = parse(&[]);
        assert_eq!(args.json, None);
        assert_eq!(args.threads, 0);
        assert_eq!(args.n, None);
        assert_eq!(args.runs, None);
        assert_eq!(args.large_n, None);
        assert_eq!(args.n_or(500), 500);
        assert_eq!(args.runs_or(10), 10);
        assert_eq!(args.large_n_or(1_000_000), 1_000_000);
        assert!(args.runner().threads() >= 1);
    }

    #[test]
    fn all_flags_parse() {
        let args = parse(&[
            "--json",
            "out.json",
            "--threads",
            "4",
            "--n",
            "200",
            "--runs",
            "3",
            "--large-n",
            "100000",
        ]);
        assert_eq!(args.json, Some(PathBuf::from("out.json")));
        assert_eq!(args.threads, 4);
        assert_eq!(args.runner().threads(), 4);
        assert_eq!(args.n_or(500), 200);
        assert_eq!(args.runs_or(10), 3);
        assert_eq!(args.large_n_or(1_000_000), 100_000);
    }

    #[test]
    fn zero_n_and_zero_runs_are_rejected() {
        // Regression: `--n 0` / `--runs 0` used to be accepted and produced
        // empty or degenerate experiments.
        assert!(rejection(&["--n", "0"]).contains("--n expects a positive integer"));
        assert!(rejection(&["--runs", "0"]).contains("--runs expects a positive integer"));
        assert!(rejection(&["--large-n", "0"]).contains("--large-n expects a positive integer"));
        // `--threads 0` stays legal: it means "all cores".
        assert_eq!(parse(&["--threads", "0"]).threads, 0);
    }

    #[test]
    fn rates_parse_as_a_comma_separated_list() {
        let args = parse(&["--rates", "2,8.5, 100"]);
        assert_eq!(args.rates, Some(vec![2.0, 8.5, 100.0]));
        assert_eq!(args.rates_or(&[1.0]), vec![2.0, 8.5, 100.0]);
        assert_eq!(parse(&[]).rates_or(&[2.0, 8.0]), vec![2.0, 8.0]);
    }

    #[test]
    fn degenerate_rates_are_rejected() {
        // Matching the `--n 0` convention: zero, negative and non-finite
        // rates abort parsing instead of producing an empty experiment.
        assert!(rejection(&["--rates", "0"]).contains("strictly positive"));
        assert!(rejection(&["--rates", "2,-1"]).contains("strictly positive"));
        assert!(rejection(&["--rates", "NaN"]).contains("not a finite number"));
        assert!(rejection(&["--rates", "inf"]).contains("not a finite number"));
        assert!(rejection(&["--rates", "fast"]).contains("expects numbers"));
        assert!(rejection(&["--rates", ""]).contains("expects numbers"));
        assert!(rejection(&["--rates"]).contains("--rates requires a value"));
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(rejection(&["--n", "many"]).contains("non-negative integer"));
        assert!(rejection(&["--runs", "-3"]).contains("non-negative integer"));
        assert!(rejection(&["--threads", "x"]).contains("--threads"));
    }

    #[test]
    fn missing_values_and_unknown_flags_are_rejected() {
        assert!(rejection(&["--n"]).contains("--n requires a value"));
        assert!(rejection(&["--json"]).contains("--json requires a value"));
        assert!(rejection(&["--frobnicate"]).contains("unknown argument"));
    }

    #[test]
    fn help_is_not_an_error() {
        assert!(matches!(
            try_parse(&["--help"]),
            Err(ParseError::HelpRequested)
        ));
        assert!(matches!(try_parse(&["-h"]), Err(ParseError::HelpRequested)));
    }
}
