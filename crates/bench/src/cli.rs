//! Shared command-line parsing for the experiment binaries.
//!
//! Every binary in `src/bin/` understands the same small flag set (no
//! external argument-parsing dependency — the build is offline):
//!
//! * `--json <path>` — additionally write the rows, parameters and
//!   wall-clock timing as pretty-printed JSON (see [`crate::json`]).
//! * `--threads <n>` — worker threads for the [`crate::TrialRunner`]
//!   (`0` or omitted = all cores; the `FNP_THREADS` environment variable
//!   is the session-wide default).
//! * `--n <nodes>` — override the overlay size (where the experiment has
//!   one).
//! * `--runs <r>` — override the per-cell repetition count (where the
//!   experiment has one).
//!
//! Unknown flags abort with a usage message: a typo silently ignored is an
//! experiment silently misconfigured.

use crate::TrialRunner;
use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration, Instant};

/// Parsed command-line arguments of one experiment binary.
#[derive(Clone, Debug, Default)]
pub struct BinArgs {
    /// Where to write the JSON report, if requested.
    pub json: Option<PathBuf>,
    /// Worker-thread count (`0` = automatic).
    pub threads: usize,
    /// Overlay-size override.
    pub n: Option<usize>,
    /// Repetition-count override.
    pub runs: Option<usize>,
}

impl BinArgs {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    fn parse_from(mut args: impl Iterator<Item = String>) -> Self {
        let mut parsed = Self::default();
        while let Some(flag) = args.next() {
            let mut value = |flag: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("error: {flag} requires a value");
                    usage();
                    exit(2);
                })
            };
            match flag.as_str() {
                "--json" => parsed.json = Some(PathBuf::from(value("--json"))),
                "--threads" => parsed.threads = parse_number(&value("--threads"), "--threads"),
                "--n" => parsed.n = Some(parse_number(&value("--n"), "--n")),
                "--runs" => parsed.runs = Some(parse_number(&value("--runs"), "--runs")),
                "--help" | "-h" => {
                    usage();
                    exit(0);
                }
                other => {
                    eprintln!("error: unknown argument {other:?}");
                    usage();
                    exit(2);
                }
            }
        }
        parsed
    }

    /// The [`TrialRunner`] these arguments select.
    #[must_use]
    pub fn runner(&self) -> TrialRunner {
        TrialRunner::new(self.threads)
    }

    /// The overlay size, falling back to the experiment's default.
    #[must_use]
    pub fn n_or(&self, default: usize) -> usize {
        self.n.unwrap_or(default)
    }

    /// The repetition count, falling back to the experiment's default.
    #[must_use]
    pub fn runs_or(&self, default: usize) -> usize {
        self.runs.unwrap_or(default)
    }
}

fn parse_number(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects a non-negative integer, got {text:?}");
        usage();
        exit(2);
    })
}

fn usage() {
    eprintln!(
        "usage: <experiment> [--json <path>] [--threads <n>] [--n <nodes>] [--runs <r>]\n\
         \n\
         --json <path>   also write rows + wall-clock timing as JSON\n\
         --threads <n>   trial worker threads (0 = all cores)\n\
         --n <nodes>     overlay size override (where applicable)\n\
         --runs <r>      repetitions override (where applicable)"
    );
}

/// Runs `body` (the experiment driver) while timing it, and writes the JSON
/// report afterwards if `--json` was given.
///
/// Returns the rows so the binary can print its human-readable table. The
/// wall clock covers only the driver call — not table printing — so the
/// recorded timing is the number a perf trajectory should track.
pub fn with_report<T>(
    args: &BinArgs,
    experiment: &str,
    params: crate::json::Json,
    rows_to_json: impl FnOnce(&T) -> crate::json::Json,
    body: impl FnOnce() -> T,
) -> T {
    let started = Instant::now();
    let rows = body();
    let elapsed = started.elapsed();
    if let Some(path) = &args.json {
        let report_rows = rows_to_json(&rows);
        crate::json::write_report(
            path,
            experiment,
            args.runner().threads(),
            params,
            report_rows,
            elapsed,
        )
        .unwrap_or_else(|error| {
            eprintln!("error: failed to write {}: {error}", path.display());
            exit(1);
        });
        eprintln!(
            "wrote {} ({} threads, {:.1} ms)",
            path.display(),
            args.runner().threads(),
            as_millis(elapsed)
        );
    }
    rows
}

fn as_millis(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BinArgs {
        BinArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn empty_args_are_defaults() {
        let args = parse(&[]);
        assert_eq!(args.json, None);
        assert_eq!(args.threads, 0);
        assert_eq!(args.n, None);
        assert_eq!(args.runs, None);
        assert_eq!(args.n_or(500), 500);
        assert_eq!(args.runs_or(10), 10);
        assert!(args.runner().threads() >= 1);
    }

    #[test]
    fn all_flags_parse() {
        let args = parse(&[
            "--json",
            "out.json",
            "--threads",
            "4",
            "--n",
            "200",
            "--runs",
            "3",
        ]);
        assert_eq!(args.json, Some(PathBuf::from("out.json")));
        assert_eq!(args.threads, 4);
        assert_eq!(args.runner().threads(), 4);
        assert_eq!(args.n_or(500), 200);
        assert_eq!(args.runs_or(10), 3);
    }
}
