//! Experiment E10 (§II, §V-C): dissemination latency of the four protocols,
//! quantifying the fairness cost (time to reach the miners) that privacy
//! mechanisms pay.

fn main() {
    let n = 500;
    let runs = 5;
    println!("E10 / §II — dissemination latency ({n} nodes, {runs} runs per protocol)\n");
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12}",
        "protocol", "t50% (ms)", "t90% (ms)", "t100% (ms)", "messages"
    );
    for row in fnp_bench::latency(n, runs, 8) {
        println!(
            "{:<20} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            row.protocol, row.t50_ms, row.t90_ms, row.t100_ms, row.messages
        );
    }
}
