//! Experiment E10 (§II, §V-C): dissemination latency of the four protocols,
//! quantifying the fairness cost (time to reach the miners) that privacy
//! mechanisms pay.

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let n = args.n_or(500);
    let runs = args.runs_or(5);
    let base_seed: u64 = 8;
    println!("E10 / §II — dissemination latency ({n} nodes, {runs} runs per protocol)\n");
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12}",
        "protocol", "t50% (ms)", "t90% (ms)", "t100% (ms)", "messages"
    );
    let params = Json::obj([
        ("n", Json::from(n)),
        ("runs", Json::from(runs)),
        ("base_seed", Json::from(base_seed)),
    ]);
    let rows = with_report(
        &args,
        "tab4_latency",
        params,
        |rows| Json::rows(rows),
        || fnp_bench::latency_with(&runner, n, runs, base_seed),
    );
    for row in &rows {
        println!(
            "{:<20} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            row.protocol, row.t50_ms, row.t90_ms, row.t100_ms, row.messages
        );
    }
}
