//! Maintains `BENCH_baseline.json`: the repo's recorded perf trajectory.
//!
//! Runs a fixed, small `fig1_landscape`-sized workload twice — once
//! single-threaded, once on 4 worker threads — verifies that both runs
//! produce byte-identical rows (the `TrialRunner` determinism contract),
//! and **appends** one trajectory entry (keyed by git revision, host info
//! and workload params; re-running the same key updates that entry in
//! place) with both wall-clock timings plus the speedup. Earlier entries
//! are preserved, so the file accumulates one point per perf PR instead of
//! remembering only the latest; a pre-trajectory single-snapshot file is
//! migrated into entry 0 on first contact. See `docs/BENCHMARKING.md` for
//! the recording procedure.
//!
//! Every entry also records a **steady-state leg**: the fig6
//! heavy-traffic grid (Poisson arrivals, overlapping broadcasts, mempool
//! replay) at reduced size, run at 1 and `--threads` workers with the rows
//! asserted byte-identical — the determinism contract extended to
//! multi-transaction sessions.
//!
//! Besides the fig1 workload, every entry records a **large-n leg**: one
//! flood trial over a `--large-n`-node overlay (default one million),
//! untraced, with a per-phase breakdown — overlay build, diameter
//! estimate and broadcast each report wall-clock *and* bytes allocated
//! (via a counting global allocator). The overlay finalize and the
//! diameter BFS split across `--threads` scoped workers inside the single
//! trial (byte-identical results at any thread count). This is the repo's
//! evidence that a million-node trial completes on commodity hardware; CI
//! smoke-tests a reduced leg and diffs everything but the wall-clock and
//! allocation figures.
//!
//! Usage: `bench_baseline [--json <path>] [--threads <n>] [--n <nodes>]
//! [--runs <r>] [--large-n <nodes>]` — `--threads` sets the parallel
//! leg's worker count and the large-n leg's intra-trial worker count
//! (default 4); the sequential leg is always 1 thread. Default output
//! path: `BENCH_baseline.json`.

// The reporting paths cast between usize/u64/f64 for JSON rows; every
// remaining cast site must either be provably lossless or carry an
// explicit allow with the reason.
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::cast_sign_loss)]

use fnp_bench::cli::BinArgs;
use fnp_bench::json::Json;
use fnp_bench::{TrialArena, TrialRunner};
use fnp_netsim::{NodeId, SimConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Bytes handed out by the global allocator since process start (frees are
/// not subtracted: the interesting figure for a perf leg is allocation
/// *traffic*, not peak footprint).
static ALLOCATED_BYTES: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapper that counts allocated bytes, so the large-n
/// phase breakdown can report per-phase allocation traffic alongside
/// wall-clock.
struct CountingAllocator;

// SAFETY: every operation is forwarded verbatim to the system allocator,
// which upholds the `GlobalAlloc` contract; the only addition is a relaxed
// counter increment with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        // SAFETY: forwarded under the caller's own `alloc` contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by this allocator (which delegates to
        // `System`) with the same `layout`, as the caller guarantees.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED_BYTES.fetch_add(new_size, Ordering::Relaxed);
        // SAFETY: forwarded under the caller's own `realloc` contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Total bytes allocated so far; phase figures are deltas of this.
fn allocated_bytes() -> usize {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

const DEFAULT_PARALLEL_THREADS: usize = 4;
const DEFAULT_LARGE_N: usize = 1_000_000;

/// Slot length (bytes) of the DC-net crypto leg.
const DCNET_SLOT_LEN: usize = 512;
/// Group sizes exercised by the DC-net crypto leg.
const DCNET_GROUP_SIZES: [usize; 4] = [8, 16, 32, 64];
/// Rounds per measurement scale as `DCNET_ROUND_BUDGET / k²`, keeping the
/// total pad bytes per cell roughly constant across group sizes.
const DCNET_ROUND_BUDGET: u64 = 65_536;
/// Timing repetitions per DC-net cell; the minimum is recorded (the noise
/// on a shared single-core host is strictly additive).
const DCNET_REPS: usize = 5;

/// Short git revision of the working tree (with a `-dirty` suffix when
/// uncommitted changes produced the numbers), or `"unknown"` outside a git
/// checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Loads the existing trajectory from `path`, migrating the pre-trajectory
/// single-snapshot layout into entry 0. A missing file starts an empty
/// trajectory; an unreadable or unrecognisable one **aborts** — the whole
/// point of this binary is to preserve the recorded history, so it must
/// never rewrite a file it could not fully understand.
fn load_trajectory(path: &Path) -> Vec<Json> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => return Vec::new(),
        Err(error) => {
            eprintln!("error: cannot read {}: {error}", path.display());
            std::process::exit(1);
        }
    };
    let document = Json::parse(&text).unwrap_or_else(|error| {
        eprintln!(
            "error: {} is not valid JSON ({error}); refusing to overwrite the recorded \
             trajectory — fix the file (or deliberately delete it) and re-run",
            path.display()
        );
        std::process::exit(1);
    });
    match document.get("trajectory") {
        Some(Json::Arr(entries)) => entries.clone(),
        Some(_) => {
            eprintln!(
                "error: the \"trajectory\" key of {} is not an array; refusing to overwrite \
                 the recorded history — fix the file and re-run",
                path.display()
            );
            std::process::exit(1);
        }
        // Old single-snapshot format (no trajectory, but an experiment
        // header): keep it as the first point.
        None if document.get("experiment").is_some() => {
            eprintln!("migrating pre-trajectory {} into entry 0", path.display());
            vec![document]
        }
        None => {
            eprintln!(
                "error: {} has neither a \"trajectory\" nor an \"experiment\" key; refusing to \
                 overwrite it — move the file aside and re-run",
                path.display()
            );
            std::process::exit(1);
        }
    }
}

/// FNV-1a 64-bit hash, used to pin the (deterministic) result rows at
/// constant size instead of embedding the full row payload in every
/// trajectory entry.
fn fnv1a64(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs the large-n leg: one untraced flood broadcast over a fresh
/// `large_n`-node standard overlay, returning the JSON section for the
/// trajectory entry. Each phase (overlay build, diameter estimate, flood
/// broadcast) reports wall-clock and allocation traffic; the overlay's CSR
/// finalize and the diameter BFS fan out over `intra_threads` scoped
/// workers with byte-identical results at any thread count.
fn large_n_leg(large_n: usize, base_seed: u64, intra_threads: usize) -> Json {
    println!(
        "large-n leg — single flood trial over {large_n} nodes \
         ({intra_threads} intra-trial threads)"
    );
    let mut arena = TrialArena::new();

    let overlay_allocated = allocated_bytes();
    let overlay_started = Instant::now();
    let graph =
        fnp_bench::standard_overlay_threaded_in(&mut arena, large_n, base_seed, intra_threads);
    let overlay_ms = overlay_started.elapsed().as_secs_f64() * 1e3;
    let overlay_alloc_bytes = allocated_bytes() - overlay_allocated;

    let diameter_allocated = allocated_bytes();
    let diameter_started = Instant::now();
    let (diameter, estimator) = graph
        .diameter_estimate_with_threads(intra_threads)
        .expect("standard overlays are connected");
    let diameter_ms = diameter_started.elapsed().as_secs_f64() * 1e3;
    let diameter_alloc_bytes = allocated_bytes() - diameter_allocated;

    let flood_allocated = allocated_bytes();
    let trial_started = Instant::now();
    let metrics = fnp_gossip::run_flood_in(
        &mut arena,
        graph,
        NodeId::new(0),
        1,
        SimConfig {
            seed: base_seed,
            ..SimConfig::default()
        },
    );
    let flood_ms = trial_started.elapsed().as_secs_f64() * 1e3;
    let flood_alloc_bytes = allocated_bytes() - flood_allocated;

    assert!(
        (metrics.coverage() - 1.0).abs() < f64::EPSILON,
        "large-n flood must reach every node, covered {:.4}",
        metrics.coverage()
    );
    println!("  overlay build : {overlay_ms:>10.1} ms  ({overlay_alloc_bytes:>12} B allocated)");
    println!(
        "  diameter      : {diameter} ({estimator} estimator, {diameter_ms:.1} ms, \
         {diameter_alloc_bytes} B allocated)"
    );
    println!(
        "  flood trial   : {flood_ms:>10.1} ms  ({flood_alloc_bytes:>12} B allocated, \
         {} messages, coverage {:.2})",
        metrics.messages_sent,
        metrics.coverage()
    );

    Json::obj([
        ("n", Json::from(large_n)),
        ("seed", Json::from(base_seed)),
        ("intra_trial_threads", Json::from(intra_threads)),
        ("overlay_build_ms", Json::from(overlay_ms)),
        ("overlay_alloc_bytes", Json::from(overlay_alloc_bytes)),
        ("diameter", Json::from(diameter)),
        ("diameter_estimator", Json::from(estimator.to_string())),
        ("diameter_ms", Json::from(diameter_ms)),
        ("diameter_alloc_bytes", Json::from(diameter_alloc_bytes)),
        ("flood_wall_clock_ms", Json::from(flood_ms)),
        ("flood_alloc_bytes", Json::from(flood_alloc_bytes)),
        ("messages", Json::from(metrics.messages_sent)),
        ("coverage", Json::from(metrics.coverage())),
    ])
}

/// Overlay size of the steady-state leg.
const STEADY_N: usize = 120;
/// Miner count of the steady-state leg.
const STEADY_MINERS: usize = 12;
/// Runs per cell of the steady-state leg.
const STEADY_RUNS: usize = 2;
/// Poisson arrival rates (tx/s) of the steady-state leg.
const STEADY_RATES: [f64; 2] = [2.0, 6.0];

/// Runs the steady-state leg: the fig6 heavy-traffic grid (Poisson
/// arrivals, overlapping broadcasts, mempool replay) at reduced size, once
/// sequentially and once on `parallel_threads` workers. Asserts the rows
/// are byte-identical across thread counts — the overlapping-broadcast
/// sessions lease per-transaction lanes from the worker arenas, which is
/// exactly the machinery this leg pins — and returns the JSON section for
/// the trajectory entry.
fn steady_leg(base_seed: u64, parallel_threads: usize) -> Json {
    let horizon = 3 * fnp_netsim::SECOND;
    println!(
        "steady leg — fig6 heavy-traffic grid ({STEADY_N} nodes, rates {STEADY_RATES:?} tx/s, \
         {STEADY_RUNS} runs per cell, 1 vs {parallel_threads} threads)"
    );

    let sequential_started = Instant::now();
    let sequential_rows = fnp_bench::steady_state_with(
        &TrialRunner::sequential(),
        STEADY_N,
        STEADY_MINERS,
        STEADY_RUNS,
        &STEADY_RATES,
        horizon,
        base_seed,
    );
    let sequential_ms = sequential_started.elapsed().as_secs_f64() * 1e3;

    let parallel_started = Instant::now();
    let parallel_rows = fnp_bench::steady_state_with(
        &TrialRunner::new(parallel_threads),
        STEADY_N,
        STEADY_MINERS,
        STEADY_RUNS,
        &STEADY_RATES,
        horizon,
        base_seed,
    );
    let parallel_ms = parallel_started.elapsed().as_secs_f64() * 1e3;

    let sequential_json = Json::rows(&sequential_rows).to_pretty_string();
    let parallel_json = Json::rows(&parallel_rows).to_pretty_string();
    assert_eq!(
        sequential_json, parallel_json,
        "steady-state parallel rows diverged from the sequential run"
    );

    let speedup = sequential_ms / parallel_ms;
    println!("  sequential: {sequential_ms:>10.1} ms");
    println!("  {parallel_threads} threads : {parallel_ms:>10.1} ms  (speedup {speedup:.2}x)");
    println!("  rows: byte-identical across thread counts");

    Json::obj([
        (
            "params",
            Json::obj([
                ("n", Json::from(STEADY_N)),
                ("miner_count", Json::from(STEADY_MINERS)),
                ("runs", Json::from(STEADY_RUNS)),
                (
                    "rates",
                    Json::Arr(STEADY_RATES.iter().map(|&r| Json::from(r)).collect()),
                ),
                ("horizon_us", Json::from(horizon)),
                ("base_seed", Json::from(base_seed)),
            ]),
        ),
        ("sequential_wall_clock_ms", Json::from(sequential_ms)),
        ("parallel_wall_clock_ms", Json::from(parallel_ms)),
        ("speedup", Json::from(speedup)),
        ("rows_identical", Json::from(true)),
        (
            "rows_fnv1a64",
            Json::from(format!("{:016x}", fnv1a64(&sequential_json))),
        ),
    ])
}

/// Runs the DC-net crypto leg: keyed rounds through the fused pooled path
/// (multi-block keystream XORed straight into pooled slot buffers) versus
/// the unfused pre-fusion reference lane (fresh single-block pad and slot
/// allocations per member, separate XOR passes, clone-then-XOR combine).
/// Both lanes fold their combined slot bytes into an FNV-1a digest that
/// must agree — the speedup is only meaningful if the lanes do identical
/// DC-net work.
fn dcnet_leg(base_seed: u64) -> Json {
    println!(
        "dcnet leg — fused vs unfused keyed rounds (slot {DCNET_SLOT_LEN} B, min of \
         {DCNET_REPS} reps)"
    );
    let mut rows = Vec::new();
    for &k in &DCNET_GROUP_SIZES {
        let k_u64 = u64::try_from(k).expect("group size fits in u64");
        let rounds = (DCNET_ROUND_BUDGET / (k_u64 * k_u64)).max(1);
        let table = fnp_bench::bench_pad_key_table(k, base_seed);
        let participants = fnp_bench::bench_keyed_participants(&table);
        // Warm-up pass: faults the key schedules and pool buffers in, and
        // pins the lanes' byte-identity before any timing happens.
        let warm_fused = fnp_bench::run_fused_keyed_rounds(&participants, DCNET_SLOT_LEN, 4);
        let warm_unfused = fnp_bench::run_unfused_keyed_rounds(&table, DCNET_SLOT_LEN, 4);
        assert_eq!(warm_fused, warm_unfused, "lane digests diverged at k={k}");

        let mut fused_ms = f64::MAX;
        let mut unfused_ms = f64::MAX;
        let mut digest = 0u64;
        for _ in 0..DCNET_REPS {
            let started = Instant::now();
            digest = fnp_bench::run_fused_keyed_rounds(&participants, DCNET_SLOT_LEN, rounds);
            fused_ms = fused_ms.min(started.elapsed().as_secs_f64() * 1e3);

            let started = Instant::now();
            let unfused_digest =
                fnp_bench::run_unfused_keyed_rounds(&table, DCNET_SLOT_LEN, rounds);
            unfused_ms = unfused_ms.min(started.elapsed().as_secs_f64() * 1e3);
            assert_eq!(digest, unfused_digest, "lane digests diverged at k={k}");
        }
        let speedup = unfused_ms / fused_ms;
        println!(
            "  k={k:>2}: fused {fused_ms:>7.1} ms  unfused {unfused_ms:>7.1} ms  \
             speedup {speedup:.2}x  ({rounds} rounds)"
        );
        rows.push(Json::obj([
            ("k", Json::from(k)),
            ("slot_len", Json::from(DCNET_SLOT_LEN)),
            ("rounds", Json::from(rounds)),
            ("digest_fnv1a64", Json::from(format!("{digest:016x}"))),
            ("fused_wall_clock_ms", Json::from(fused_ms)),
            ("unfused_wall_clock_ms", Json::from(unfused_ms)),
            ("speedup", Json::from(speedup)),
        ]));
    }
    Json::obj([
        ("reps", Json::from(DCNET_REPS)),
        ("digests_identical", Json::from(true)),
        ("rows", Json::Arr(rows)),
    ])
}

fn main() {
    let args = BinArgs::parse();
    let n = args.n_or(200);
    let runs = args.runs_or(4);
    let large_n = args.large_n_or(DEFAULT_LARGE_N);
    let parallel_threads = if args.threads == 0 {
        DEFAULT_PARALLEL_THREADS
    } else {
        args.threads
    };
    let fractions = [0.1, 0.2, 0.3];
    let base_seed: u64 = 1;
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_baseline.json"));

    println!(
        "bench_baseline — fig1_landscape workload ({n} nodes, {runs} runs per cell, \
         1 vs {parallel_threads} threads)"
    );

    let sequential_started = Instant::now();
    let sequential_rows =
        fnp_bench::landscape_with(&TrialRunner::sequential(), n, runs, &fractions, base_seed);
    let sequential_ms = sequential_started.elapsed().as_secs_f64() * 1e3;

    let parallel_started = Instant::now();
    let parallel_rows = fnp_bench::landscape_with(
        &TrialRunner::new(parallel_threads),
        n,
        runs,
        &fractions,
        base_seed,
    );
    let parallel_ms = parallel_started.elapsed().as_secs_f64() * 1e3;

    // The determinism contract, checked on the real workload at full
    // serialisation fidelity.
    let sequential_json = Json::rows(&sequential_rows).to_pretty_string();
    let parallel_json = Json::rows(&parallel_rows).to_pretty_string();
    assert_eq!(
        sequential_json, parallel_json,
        "parallel rows diverged from the sequential run"
    );

    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let speedup = sequential_ms / parallel_ms;
    println!("sequential: {sequential_ms:>10.1} ms");
    println!("{parallel_threads} threads : {parallel_ms:>10.1} ms  (speedup {speedup:.2}x on {host_threads} host cores)");
    println!("rows: byte-identical across thread counts");

    let large_n_section = large_n_leg(large_n, base_seed, parallel_threads);
    let dcnet_section = dcnet_leg(base_seed);
    let steady_section = steady_leg(base_seed, parallel_threads);

    let entry = Json::obj([
        ("git_rev", Json::from(git_rev())),
        (
            "host",
            Json::obj([
                ("os", Json::from(std::env::consts::OS)),
                ("arch", Json::from(std::env::consts::ARCH)),
                ("threads", Json::from(host_threads)),
            ]),
        ),
        // The simulator storage layout this point was recorded with.
        ("layout", Json::from("csr-bitset-wheel")),
        (
            "params",
            Json::obj([
                ("n", Json::from(n)),
                ("runs", Json::from(runs)),
                (
                    "fractions",
                    Json::Arr(fractions.iter().map(|&f| Json::from(f)).collect()),
                ),
                ("base_seed", Json::from(base_seed)),
                ("large_n", Json::from(large_n)),
                (
                    "dcnet",
                    Json::obj([
                        (
                            "group_sizes",
                            Json::Arr(DCNET_GROUP_SIZES.iter().map(|&k| Json::from(k)).collect()),
                        ),
                        ("slot_len", Json::from(DCNET_SLOT_LEN)),
                        ("round_budget", Json::from(DCNET_ROUND_BUDGET)),
                    ]),
                ),
            ]),
        ),
        ("sequential_wall_clock_ms", Json::from(sequential_ms)),
        ("parallel_threads", Json::from(parallel_threads)),
        ("parallel_wall_clock_ms", Json::from(parallel_ms)),
        ("speedup", Json::from(speedup)),
        ("rows_identical", Json::from(true)),
        // The rows themselves are deterministic and regenerable at any
        // revision; a digest pins byte-identity at constant file size.
        (
            "rows_fnv1a64",
            Json::from(format!("{:016x}", fnv1a64(&sequential_json))),
        ),
        // One untraced flood trial at large n — the "million-node trial
        // completes" evidence (see docs/BENCHMARKING.md).
        ("large_n", large_n_section),
        // Fused vs unfused keyed DC-net rounds — the pad-pipeline speedup
        // this trajectory point was recorded under (see docs/BENCHMARKING.md).
        ("dcnet", dcnet_section),
        // The fig6 heavy-traffic grid at reduced size — sustained Poisson
        // arrivals with overlapping broadcasts (see docs/BENCHMARKING.md).
        ("steady", steady_section),
    ]);

    let mut trajectory = load_trajectory(&path);
    // Entries are keyed by (git_rev, host, params): re-running the same
    // workload at the same revision on the same host updates that point in
    // place instead of accumulating duplicates while iterating on a
    // change, while a run with overridden --n/--runs records its own point.
    let key = |e: &Json| {
        (
            e.get("git_rev").cloned(),
            e.get("host").cloned(),
            e.get("params").cloned(),
        )
    };
    let entry_key = key(&entry);
    if let Some(existing) = trajectory
        .iter_mut()
        .find(|e| e.get("git_rev").is_some() && key(e) == entry_key)
    {
        eprintln!("updating existing trajectory entry for this (git_rev, host, params)");
        *existing = entry;
    } else {
        trajectory.push(entry);
    }
    let points = trajectory.len();
    let report = Json::obj([
        ("experiment", Json::from("bench_baseline")),
        ("workload", Json::from("fig1_landscape")),
        ("trajectory", Json::Arr(trajectory)),
    ]);
    std::fs::write(&path, report.to_pretty_string())
        .unwrap_or_else(|error| panic!("failed to write {}: {error}", path.display()));
    println!("wrote {} ({points} trajectory points)", path.display());
}
