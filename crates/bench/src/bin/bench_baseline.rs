//! Produces `BENCH_baseline.json`: the first point of the repo's recorded
//! perf trajectory.
//!
//! Runs a fixed, small `fig1_landscape`-sized workload twice — once
//! single-threaded, once on 4 worker threads — verifies that both runs
//! produce byte-identical rows (the `TrialRunner` determinism contract),
//! and writes both wall-clock timings plus the speedup into one snapshot
//! file. Later perf PRs re-run this binary and compare against the
//! committed snapshot.
//!
//! Usage: `bench_baseline [--json <path>] [--threads <n>] [--n <nodes>]
//! [--runs <r>]` — `--threads` sets the parallel leg's worker count
//! (default 4); the sequential leg is always 1 thread. Default output
//! path: `BENCH_baseline.json`.

use fnp_bench::cli::BinArgs;
use fnp_bench::json::Json;
use fnp_bench::TrialRunner;
use std::path::PathBuf;
use std::time::Instant;

const DEFAULT_PARALLEL_THREADS: usize = 4;

fn main() {
    let args = BinArgs::parse();
    let n = args.n_or(200);
    let runs = args.runs_or(4);
    let parallel_threads = if args.threads == 0 {
        DEFAULT_PARALLEL_THREADS
    } else {
        args.threads
    };
    let fractions = [0.1, 0.2, 0.3];
    let base_seed: u64 = 1;
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_baseline.json"));

    println!(
        "bench_baseline — fig1_landscape workload ({n} nodes, {runs} runs per cell, \
         1 vs {parallel_threads} threads)"
    );

    let sequential_started = Instant::now();
    let sequential_rows =
        fnp_bench::landscape_with(&TrialRunner::sequential(), n, runs, &fractions, base_seed);
    let sequential_ms = sequential_started.elapsed().as_secs_f64() * 1e3;

    let parallel_started = Instant::now();
    let parallel_rows = fnp_bench::landscape_with(
        &TrialRunner::new(parallel_threads),
        n,
        runs,
        &fractions,
        base_seed,
    );
    let parallel_ms = parallel_started.elapsed().as_secs_f64() * 1e3;

    // The determinism contract, checked on the real workload at full
    // serialisation fidelity.
    let sequential_json = Json::rows(&sequential_rows).to_pretty_string();
    let parallel_json = Json::rows(&parallel_rows).to_pretty_string();
    assert_eq!(
        sequential_json, parallel_json,
        "parallel rows diverged from the sequential run"
    );

    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let speedup = sequential_ms / parallel_ms;
    println!("sequential: {sequential_ms:>10.1} ms");
    println!("{parallel_threads} threads : {parallel_ms:>10.1} ms  (speedup {speedup:.2}x on {host_threads} host cores)");
    println!("rows: byte-identical across thread counts");

    let report = Json::obj([
        ("experiment", Json::from("bench_baseline")),
        ("workload", Json::from("fig1_landscape")),
        (
            "params",
            Json::obj([
                ("n", Json::from(n)),
                ("runs", Json::from(runs)),
                (
                    "fractions",
                    Json::Arr(fractions.iter().map(|&f| Json::from(f)).collect()),
                ),
                ("base_seed", Json::from(base_seed)),
            ]),
        ),
        ("host_threads", Json::from(host_threads)),
        ("sequential_wall_clock_ms", Json::from(sequential_ms)),
        ("parallel_threads", Json::from(parallel_threads)),
        ("parallel_wall_clock_ms", Json::from(parallel_ms)),
        ("speedup", Json::from(speedup)),
        ("rows_identical", Json::from(true)),
        ("rows", Json::rows(&sequential_rows)),
    ]);
    std::fs::write(&path, report.to_pretty_string())
        .unwrap_or_else(|error| panic!("failed to write {}: {error}", path.display()));
    println!("wrote {}", path.display());
}
