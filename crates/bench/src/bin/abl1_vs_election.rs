//! Ablation A1 (§IV-B): the hash-based virtual-source election versus the
//! ablated variant in which the originator keeps the virtual-source role.

fn main() {
    println!("A1 / §IV-B — virtual-source election ablation\n");
    println!("1,000-node overlay, adversary fraction 0.2, first-spy estimator\n");
    println!(
        "{:<24} {:>12} {:>18} {:>16}",
        "election", "P[detect]", "anonymity set", "entropy (bits)"
    );
    for row in fnp_bench::election_ablation(fnp_bench::PAPER_NETWORK_SIZE, 0.2, 20, 21) {
        println!(
            "{:<24} {:>12.3} {:>18.1} {:>16.2}",
            row.strategy,
            row.summary.detection_probability,
            row.summary.mean_anonymity_set_size,
            row.summary.mean_entropy_bits
        );
    }
    println!(
        "\nThe hash-based election decorrelates the diffusion centre from the true \
         sender without any extra messages; keeping the originator as the virtual \
         source gives the attacker back that correlation."
    );
}
