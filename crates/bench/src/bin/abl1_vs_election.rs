//! Ablation A1 (§IV-B): the hash-based virtual-source election versus the
//! ablated variant in which the originator keeps the virtual-source role.

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let n = args.n_or(fnp_bench::PAPER_NETWORK_SIZE);
    let runs = args.runs_or(20);
    let adversary_fraction = 0.2;
    let base_seed: u64 = 21;
    println!("A1 / §IV-B — virtual-source election ablation\n");
    println!("{n}-node overlay, adversary fraction {adversary_fraction}, first-spy estimator\n");
    println!(
        "{:<24} {:>12} {:>18} {:>16}",
        "election", "P[detect]", "anonymity set", "entropy (bits)"
    );
    let params = Json::obj([
        ("n", Json::from(n)),
        ("runs", Json::from(runs)),
        ("adversary_fraction", Json::from(adversary_fraction)),
        ("base_seed", Json::from(base_seed)),
    ]);
    let rows = with_report(
        &args,
        "abl1_vs_election",
        params,
        |rows| Json::rows(rows),
        || fnp_bench::election_ablation_with(&runner, n, adversary_fraction, runs, base_seed),
    );
    for row in &rows {
        println!(
            "{:<24} {:>12.3} {:>18.1} {:>16.2}",
            row.strategy,
            row.summary.detection_probability,
            row.summary.mean_anonymity_set_size,
            row.summary.mean_entropy_bits
        );
    }
    println!(
        "\nThe hash-based election decorrelates the diffusion centre from the true \
         sender without any extra messages; keeping the originator as the virtual \
         source gives the attacker back that correlation."
    );
}
