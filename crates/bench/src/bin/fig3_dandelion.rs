//! Experiment E3 (paper Fig. 3, §III-A): Dandelion's stem/fluff privacy as
//! a function of the adversary fraction and the stem-continue probability,
//! showing that its protection degrades once the adversary controls a
//! large fraction of nodes (the motivation for the cryptographic phase 1).

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let n = args.n_or(500);
    let runs = args.runs_or(10);
    let fractions = [0.05, 0.15, 0.25, 0.35, 0.5];
    let stem_probabilities = [0.5, 0.9];
    let base_seed: u64 = 3;
    println!("E3 / Fig. 3 — Dandelion first-spy privacy ({n} nodes, {runs} runs per cell)\n");
    println!(
        "{:<12} {:>8} {:>12} {:>16}",
        "stem prob", "phi", "P[detect]", "mean stem len"
    );
    let params = Json::obj([
        ("n", Json::from(n)),
        ("runs", Json::from(runs)),
        (
            "fractions",
            Json::Arr(fractions.iter().map(|&f| Json::from(f)).collect()),
        ),
        (
            "stem_probabilities",
            Json::Arr(stem_probabilities.iter().map(|&p| Json::from(p)).collect()),
        ),
        ("base_seed", Json::from(base_seed)),
    ]);
    let rows = with_report(
        &args,
        "fig3_dandelion",
        params,
        |rows| Json::rows(rows),
        || {
            fnp_bench::dandelion_privacy_with(
                &runner,
                n,
                &fractions,
                &stem_probabilities,
                runs,
                base_seed,
            )
        },
    );
    for row in &rows {
        println!(
            "{:<12.2} {:>8.2} {:>12.3} {:>16.1}",
            row.stem_probability,
            row.adversary_fraction,
            row.detection_probability,
            row.mean_stem_length
        );
    }
}
