//! Experiment E3 (paper Fig. 3, §III-A): Dandelion's stem/fluff privacy as
//! a function of the adversary fraction and the stem-continue probability,
//! showing that its protection degrades once the adversary controls a
//! large fraction of nodes (the motivation for the cryptographic phase 1).

fn main() {
    let n = 500;
    let runs = 10;
    println!("E3 / Fig. 3 — Dandelion first-spy privacy ({n} nodes, {runs} runs per cell)\n");
    println!(
        "{:<12} {:>8} {:>12} {:>16}",
        "stem prob", "phi", "P[detect]", "mean stem len"
    );
    for row in fnp_bench::dandelion_privacy(n, &[0.05, 0.15, 0.25, 0.35, 0.5], &[0.5, 0.9], runs, 3)
    {
        println!(
            "{:<12.2} {:>8.2} {:>12.3} {:>16.1}",
            row.stem_probability,
            row.adversary_fraction,
            row.detection_probability,
            row.mean_stem_length
        );
    }
}
