//! Experiments E4 and E9 (paper Fig. 4, §III-B, §V-A): the O(k²) per-round
//! message cost of the DC-net constructions and the byte savings of the
//! 32-bit length-reservation optimisation for idle rounds.

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let ks = [3, 4, 5, 6, 8, 10, 12, 16];
    let slot = 512;
    let base_seed: u64 = 4;
    println!("E4+E9 / Fig. 4 — DC-net round cost (slot = {slot} bytes)\n");
    println!(
        "{:<4} {:>18} {:>14} {:>14} {:>22} {:>24}",
        "k",
        "explicit msgs/rnd",
        "keyed msgs/rnd",
        "keyed bytes",
        "idle bytes (reserved)",
        "idle bytes (full slot)"
    );
    let params = Json::obj([
        ("ks", Json::Arr(ks.iter().map(|&k| Json::from(k)).collect())),
        ("slot_len", Json::from(slot)),
        ("base_seed", Json::from(base_seed)),
    ]);
    let rows = with_report(
        &args,
        "fig4_dcnet_cost",
        params,
        |rows| Json::rows(rows),
        || fnp_bench::dcnet_cost_with(&runner, &ks, slot, base_seed),
    );
    for row in &rows {
        println!(
            "{:<4} {:>18} {:>14} {:>14} {:>22} {:>24}",
            row.k,
            row.explicit_messages,
            row.keyed_messages,
            row.keyed_bytes,
            row.idle_bytes_with_reservation,
            row.idle_bytes_without_reservation
        );
    }
    println!("\nBoth variants grow quadratically in k; the reservation optimisation");
    println!("cuts idle-round traffic by the slot/12 factor discussed in §V-A.");
}
