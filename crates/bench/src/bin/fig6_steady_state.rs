//! Experiment E13 (fig6): steady-state heavy traffic — Poisson transaction
//! arrivals, overlapping broadcasts and a shared mempool drained by an
//! exponential block process.
//!
//! The single-broadcast experiments measure each protocol in isolation;
//! this driver measures them **under load**: many wallets inject
//! transactions into one overlay at a sustained rate, the broadcasts
//! overlap in flight, and every transaction's first miner delivery feeds a
//! mempool that miners keep draining into blocks. Reported per
//! protocol × rate cell: throughput, delivery-latency percentiles,
//! messages per transaction, peak in-flight concurrency, mempool occupancy
//! and eviction-survivor inclusion, and the first-spy detection rate under
//! overlapping traffic.
//!
//! Usage: `fig6_steady_state [--json <path>] [--threads <t>] [--n <nodes>]
//! [--runs <r>] [--rates <r1,r2,...>]`. Rows are byte-identical at any
//! `--threads` count.

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;
use fnp_netsim::SECOND;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let n = args.n_or(200);
    let miner_count = 20.min(n / 4).max(1);
    let runs = args.runs_or(3);
    let rates = args.rates_or(&[1.0, 4.0]);
    let horizon = 5 * SECOND;
    let base_seed: u64 = 13;
    println!("E13 / fig6 — steady-state heavy traffic, overlapping broadcasts\n");
    println!(
        "{n}-node overlay, {miner_count} miners, {}s arrival window, rates {rates:?} tx/s, \
         {runs} runs per cell\n",
        horizon / SECOND
    );
    println!(
        "{:<20} {:>6} {:>5} {:>6} {:>9} {:>9} {:>9} {:>8} {:>5} {:>6} {:>7} {:>8}",
        "protocol",
        "tx/s",
        "txs",
        "cover",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "msgs/tx",
        "peak",
        "pool",
        "incl",
        "spy"
    );
    let params = Json::obj([
        ("n", Json::from(n)),
        ("miner_count", Json::from(miner_count)),
        ("runs", Json::from(runs)),
        (
            "rates",
            Json::Arr(rates.iter().map(|&r| Json::from(r)).collect()),
        ),
        ("horizon_us", Json::from(horizon)),
        ("base_seed", Json::from(base_seed)),
    ]);
    let rows = with_report(
        &args,
        "fig6_steady_state",
        params,
        |rows| Json::rows(rows),
        || fnp_bench::steady_state_with(&runner, n, miner_count, runs, &rates, horizon, base_seed),
    );
    for row in &rows {
        println!(
            "{:<20} {:>6.1} {:>5} {:>6.3} {:>9.1} {:>9.1} {:>9.1} {:>8.1} {:>5} {:>6} {:>7.3} {:>8.3}",
            row.protocol,
            row.rate_per_second,
            row.injected,
            row.delivered_fraction,
            row.p50_delivery_ms,
            row.p95_delivery_ms,
            row.p99_delivery_ms,
            row.mean_messages_per_tx,
            row.peak_concurrent,
            row.mempool_peak_len,
            row.included_fraction,
            row.first_spy_detection
        );
    }
    println!(
        "\nAt a fixed rate every protocol faces the same arrival schedule (paired seeds); \
         privacy mechanisms pay for anonymity with tail latency and mempool dwell time, \
         and the first-spy column shows whether overlapping traffic helps or hurts them."
    );
}
