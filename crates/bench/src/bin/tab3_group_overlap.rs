//! Experiment E8 (§IV-C): origin-probability skew introduced by overlapping
//! DC-net groups under naive group selection, and its removal by the
//! smoothing policy (the paper's A/B/C example generalised).

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let group_sizes = [3, 5, 8, 10];
    let overlap_degrees = [1, 2, 3, 4];
    println!("E8 / §IV-C — overlapping-group origin-probability skew\n");
    println!(
        "{:<12} {:<10} {:>14} {:>16} {:>10}",
        "group size", "overlaps", "naive worst", "smoothed worst", "ideal"
    );
    let params = Json::obj([
        (
            "group_sizes",
            Json::Arr(group_sizes.iter().map(|&s| Json::from(s)).collect()),
        ),
        (
            "overlap_degrees",
            Json::Arr(overlap_degrees.iter().map(|&o| Json::from(o)).collect()),
        ),
    ]);
    let rows = with_report(
        &args,
        "tab3_group_overlap",
        params,
        |rows| Json::rows(rows),
        || fnp_bench::group_overlap_with(&runner, &group_sizes, &overlap_degrees),
    );
    for row in &rows {
        println!(
            "{:<12} {:<10} {:>14.3} {:>16.3} {:>10.3}",
            row.group_size,
            row.overlap_degree,
            row.naive_worst_case,
            row.smoothed_worst_case,
            row.ideal
        );
    }
    println!("\nThe paper's example is the first row: worst-case 1/2 instead of 1/3.");
}
