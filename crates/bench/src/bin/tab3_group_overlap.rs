//! Experiment E8 (§IV-C): origin-probability skew introduced by overlapping
//! DC-net groups under naive group selection, and its removal by the
//! smoothing policy (the paper's A/B/C example generalised).

fn main() {
    println!("E8 / §IV-C — overlapping-group origin-probability skew\n");
    println!(
        "{:<12} {:<10} {:>14} {:>16} {:>10}",
        "group size", "overlaps", "naive worst", "smoothed worst", "ideal"
    );
    for row in fnp_bench::group_overlap(&[3, 5, 8, 10], &[1, 2, 3, 4]) {
        println!(
            "{:<12} {:<10} {:>14.3} {:>16.3} {:>10.3}",
            row.group_size,
            row.overlap_degree,
            row.naive_worst_case,
            row.smoothed_worst_case,
            row.ideal
        );
    }
    println!("\nThe paper's example is the first row: worst-case 1/2 instead of 1/3.");
}
