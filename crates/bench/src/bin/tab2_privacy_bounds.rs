//! Experiment E7 (§V-B): the attacker's detection probability against the
//! flexible protocol, compared with the 1/k floor guaranteed by the DC-net
//! phase and the 1/n perfect-obfuscation target.

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let n = args.n_or(500);
    let runs = args.runs_or(10);
    let ks = [3, 5, 10];
    let ds = [4];
    let fractions = [0.1, 0.2, 0.3];
    let base_seed: u64 = 7;
    println!(
        "E7 / §V-B — privacy bounds of the flexible protocol ({n} nodes, {runs} runs per cell)\n"
    );
    println!(
        "{:<4} {:<4} {:>8} {:>12} {:>14} {:>10} {:>10}",
        "k", "d", "phi", "P[detect]", "anonymity set", "1/k bound", "1/n ideal"
    );
    let params = Json::obj([
        ("n", Json::from(n)),
        ("runs", Json::from(runs)),
        ("ks", Json::Arr(ks.iter().map(|&k| Json::from(k)).collect())),
        ("ds", Json::Arr(ds.iter().map(|&d| Json::from(d)).collect())),
        (
            "fractions",
            Json::Arr(fractions.iter().map(|&f| Json::from(f)).collect()),
        ),
        ("base_seed", Json::from(base_seed)),
    ]);
    let rows = with_report(
        &args,
        "tab2_privacy_bounds",
        params,
        |rows| Json::rows(rows),
        || fnp_bench::privacy_bounds_with(&runner, n, &ks, &ds, &fractions, runs, base_seed),
    );
    for row in &rows {
        println!(
            "{:<4} {:<4} {:>8.2} {:>12.3} {:>14.1} {:>10.3} {:>10.4}",
            row.k,
            row.d,
            row.adversary_fraction,
            row.summary.detection_probability,
            row.summary.mean_anonymity_set_size,
            row.group_bound,
            row.ideal
        );
    }
}
