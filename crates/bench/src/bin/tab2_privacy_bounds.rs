//! Experiment E7 (§V-B): the attacker's detection probability against the
//! flexible protocol, compared with the 1/k floor guaranteed by the DC-net
//! phase and the 1/n perfect-obfuscation target.

fn main() {
    let n = 500;
    let runs = 10;
    println!(
        "E7 / §V-B — privacy bounds of the flexible protocol ({n} nodes, {runs} runs per cell)\n"
    );
    println!(
        "{:<4} {:<4} {:>8} {:>12} {:>14} {:>10} {:>10}",
        "k", "d", "phi", "P[detect]", "anonymity set", "1/k bound", "1/n ideal"
    );
    for row in fnp_bench::privacy_bounds(n, &[3, 5, 10], &[4], &[0.1, 0.2, 0.3], runs, 7) {
        println!(
            "{:<4} {:<4} {:>8.2} {:>12.3} {:>14.1} {:>10.3} {:>10.4}",
            row.k,
            row.d,
            row.adversary_fraction,
            row.summary.detection_probability,
            row.summary.mean_anonymity_set_size,
            row.group_bound,
            row.ideal
        );
    }
}
