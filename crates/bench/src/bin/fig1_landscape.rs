//! Experiment E1 (paper Fig. 1): the measured privacy–performance landscape.
//!
//! For each protocol and adversary fraction the table reports the first-spy
//! detection probability (privacy axis) and the message/latency cost
//! (performance axis), placing all four protocols in the plane the paper
//! sketches qualitatively.

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let n = args.n_or(500);
    let runs = args.runs_or(10);
    let fractions = [0.1, 0.2, 0.3];
    let base_seed: u64 = 1;
    println!("E1 / Fig. 1 — privacy-performance landscape ({n} nodes, {runs} runs per cell)\n");
    println!(
        "{:<20} {:>8} {:>12} {:>14} {:>14}",
        "protocol", "phi", "P[detect]", "messages", "t100% (ms)"
    );
    let params = Json::obj([
        ("n", Json::from(n)),
        ("runs", Json::from(runs)),
        (
            "fractions",
            Json::Arr(fractions.iter().map(|&f| Json::from(f)).collect()),
        ),
        ("base_seed", Json::from(base_seed)),
    ]);
    let rows = with_report(
        &args,
        "fig1_landscape",
        params,
        |rows| Json::rows(rows),
        || fnp_bench::landscape_with(&runner, n, runs, &fractions, base_seed),
    );
    for row in &rows {
        println!(
            "{:<20} {:>8.2} {:>12.3} {:>14.0} {:>14.0}",
            row.protocol,
            row.adversary_fraction,
            row.detection_probability,
            row.mean_messages,
            row.mean_latency_ms
        );
    }
    println!("\nLower-left is better privacy, lower-right is better performance;");
    println!("the flexible protocol should sit between the cryptographic and the");
    println!("topological extremes (point 2 of the paper's Fig. 1).");
}
