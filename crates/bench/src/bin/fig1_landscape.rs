//! Experiment E1 (paper Fig. 1): the measured privacy–performance landscape.
//!
//! For each protocol and adversary fraction the table reports the first-spy
//! detection probability (privacy axis) and the message/latency cost
//! (performance axis), placing all four protocols in the plane the paper
//! sketches qualitatively.

fn main() {
    let n = 500;
    let runs = 10;
    println!("E1 / Fig. 1 — privacy-performance landscape ({n} nodes, {runs} runs per cell)\n");
    println!(
        "{:<20} {:>8} {:>12} {:>14} {:>14}",
        "protocol", "phi", "P[detect]", "messages", "t100% (ms)"
    );
    for row in fnp_bench::landscape(n, runs, &[0.1, 0.2, 0.3], 1) {
        println!(
            "{:<20} {:>8.2} {:>12.3} {:>14.0} {:>14.0}",
            row.protocol,
            row.adversary_fraction,
            row.detection_probability,
            row.mean_messages,
            row.mean_latency_ms
        );
    }
    println!("\nLower-left is better privacy, lower-right is better performance;");
    println!("the flexible protocol should sit between the cryptographic and the");
    println!("topological extremes (point 2 of the paper's Fig. 1).");
}
