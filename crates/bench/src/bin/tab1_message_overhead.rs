//! Experiment E6 (§V-A): the paper's headline simulation — adaptive
//! diffusion needs ≈12 500 messages to reach all 1 000 peers versus ≈7 000
//! for flood-and-prune; the flexible protocol only pays the diffusion
//! premium for its first d rounds.

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::{Json, ToJson};

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let n = args.n_or(1000);
    let runs = args.runs_or(10);
    let base_seed: u64 = 6;
    println!("E6 / §V-A — message overhead on {n} peers ({runs} runs)\n");
    let params = Json::obj([
        ("n", Json::from(n)),
        ("runs", Json::from(runs)),
        ("base_seed", Json::from(base_seed)),
    ]);
    let result = with_report(
        &args,
        "tab1_message_overhead",
        params,
        |result: &fnp_bench::MessageOverheadResult| Json::Arr(vec![result.to_json()]),
        || fnp_bench::message_overhead_with(&runner, n, runs, base_seed),
    );
    println!(
        "flood-and-prune (all peers)     : {:>10.0} messages",
        result.flood_messages
    );
    println!(
        "adaptive diffusion (all peers)  : {:>10.0} messages",
        result.adaptive_diffusion_messages
    );
    println!(
        "flexible protocol (k=5, d=4)    : {:>10.0} messages",
        result.flexible_messages
    );
    println!(
        "adaptive-diffusion / flood ratio: {:>10.2}",
        result.overhead_ratio
    );
    println!("\npaper reference: ~12,500 vs ~7,000 messages (ratio ~1.8).");
}
