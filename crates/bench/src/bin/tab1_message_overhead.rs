//! Experiment E6 (§V-A): the paper's headline simulation — adaptive
//! diffusion needs ≈12 500 messages to reach all 1 000 peers versus ≈7 000
//! for flood-and-prune; the flexible protocol only pays the diffusion
//! premium for its first d rounds.

fn main() {
    let n = 1000;
    let runs = 10;
    println!("E6 / §V-A — message overhead on {n} peers ({runs} runs)\n");
    let result = fnp_bench::message_overhead(n, runs, 6);
    println!(
        "flood-and-prune (all peers)     : {:>10.0} messages",
        result.flood_messages
    );
    println!(
        "adaptive diffusion (all peers)  : {:>10.0} messages",
        result.adaptive_diffusion_messages
    );
    println!(
        "flexible protocol (k=5, d=4)    : {:>10.0} messages",
        result.flexible_messages
    );
    println!(
        "adaptive-diffusion / flood ratio: {:>10.2}",
        result.overhead_ratio
    );
    println!("\npaper reference: ~12,500 vs ~7,000 messages (ratio ~1.8).");
}
