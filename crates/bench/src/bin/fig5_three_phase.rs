//! Experiment E5 (paper Fig. 5, §IV-B): an end-to-end run of the flexible
//! three-phase protocol with the per-phase message breakdown across the
//! (k, d) parameter grid.

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let n = args.n_or(500);
    let runs = args.runs_or(5);
    let ks = [3, 5, 10];
    let ds = [2, 4, 8];
    let base_seed: u64 = 5;
    println!("E5 / Fig. 5 — three-phase breakdown ({n} nodes, {runs} runs per cell)\n");
    println!(
        "{:<4} {:<4} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "k", "d", "phase1", "phase2", "phase3", "total", "coverage"
    );
    let params = Json::obj([
        ("n", Json::from(n)),
        ("runs", Json::from(runs)),
        ("ks", Json::Arr(ks.iter().map(|&k| Json::from(k)).collect())),
        ("ds", Json::Arr(ds.iter().map(|&d| Json::from(d)).collect())),
        ("base_seed", Json::from(base_seed)),
    ]);
    let rows = with_report(
        &args,
        "fig5_three_phase",
        params,
        |rows| Json::rows(rows),
        || fnp_bench::three_phase_breakdown_with(&runner, n, &ks, &ds, runs, base_seed),
    );
    for row in &rows {
        println!(
            "{:<4} {:<4} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>9.1}%",
            row.k,
            row.d,
            row.phase1,
            row.phase2,
            row.phase3,
            row.total,
            row.coverage * 100.0
        );
    }
}
