//! Experiment E5 (paper Fig. 5, §IV-B): an end-to-end run of the flexible
//! three-phase protocol with the per-phase message breakdown across the
//! (k, d) parameter grid.

fn main() {
    let n = 500;
    let runs = 5;
    println!("E5 / Fig. 5 — three-phase breakdown ({n} nodes, {runs} runs per cell)\n");
    println!(
        "{:<4} {:<4} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "k", "d", "phase1", "phase2", "phase3", "total", "coverage"
    );
    for row in fnp_bench::three_phase_breakdown(n, &[3, 5, 10], &[2, 4, 8], runs, 5) {
        println!(
            "{:<4} {:<4} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>9.1}%",
            row.k,
            row.d,
            row.phase1,
            row.phase2,
            row.phase3,
            row.total,
            row.coverage * 100.0
        );
    }
}
