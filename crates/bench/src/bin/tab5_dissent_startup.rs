//! Experiment E11 (§III-B): startup latency and traffic of the Dissent-style
//! announcement shuffle, reproducing the claim that the announcement round
//! "becomes noticeably slow, e.g., 30 seconds, for group sizes of 8 to 12".

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let ks = [4, 6, 8, 10, 12, 16];
    let base_seed: u64 = 5;
    println!("E11 / §III-B — Dissent-style announcement startup cost\n");
    println!(
        "{:<6} {:>14} {:>12} {:>12} {:>14}",
        "k", "startup (s)", "messages", "bytes", "serial steps"
    );
    let params = Json::obj([
        ("ks", Json::Arr(ks.iter().map(|&k| Json::from(k)).collect())),
        ("base_seed", Json::from(base_seed)),
    ]);
    let rows = with_report(
        &args,
        "tab5_dissent_startup",
        params,
        |rows| Json::rows(rows),
        || fnp_bench::dissent_startup_with(&runner, &ks, base_seed),
    );
    for row in &rows {
        println!(
            "{:<6} {:>14.1} {:>12} {:>12} {:>14}",
            row.k, row.startup_seconds, row.messages, row.bytes, row.serial_steps
        );
    }
    println!(
        "\nThe paper's anchor is the 8–12 range: tens of seconds of startup latency, \
         which it argues is unacceptable for blockchain transaction dissemination."
    );
}
