//! Experiment E11 (§III-B): startup latency and traffic of the Dissent-style
//! announcement shuffle, reproducing the claim that the announcement round
//! "becomes noticeably slow, e.g., 30 seconds, for group sizes of 8 to 12".

fn main() {
    println!("E11 / §III-B — Dissent-style announcement startup cost\n");
    println!(
        "{:<6} {:>14} {:>12} {:>12} {:>14}",
        "k", "startup (s)", "messages", "bytes", "serial steps"
    );
    for row in fnp_bench::dissent_startup(&[4, 6, 8, 10, 12, 16], 5) {
        println!(
            "{:<6} {:>14.1} {:>12} {:>12} {:>14}",
            row.k, row.startup_seconds, row.messages, row.bytes, row.serial_steps
        );
    }
    println!(
        "\nThe paper's anchor is the 8–12 range: tens of seconds of startup latency, \
         which it argues is unacceptable for blockchain transaction dissemination."
    );
}
