//! Experiment E2 (paper Fig. 2, §I, §III-A): deanonymising plain
//! flood-and-prune with first-spy and Jordan-centre estimators as the
//! adversary fraction grows (the "≈20 % of nodes suffice" claim).

fn main() {
    let sizes = [250, 500, 1000];
    let fractions = [0.05, 0.1, 0.2, 0.3, 0.5];
    let runs = 10;
    println!("E2 / Fig. 2 — flood-and-prune deanonymisation ({runs} runs per cell)\n");
    println!(
        "{:<8} {:>8} {:>16} {:>18} {:>18}",
        "n", "phi", "first-spy P[det]", "jordan P[det]", "anonymity set"
    );
    for row in fnp_bench::flood_deanonymization(&sizes, &fractions, runs, 2) {
        println!(
            "{:<8} {:>8.2} {:>16.3} {:>18.3} {:>18.1}",
            row.n,
            row.adversary_fraction,
            row.first_spy.detection_probability,
            row.jordan_center.detection_probability,
            row.first_spy.mean_anonymity_set_size
        );
    }
}
