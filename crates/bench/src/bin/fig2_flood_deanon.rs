//! Experiment E2 (paper Fig. 2, §I, §III-A): deanonymising plain
//! flood-and-prune with first-spy and Jordan-centre estimators as the
//! adversary fraction grows (the "≈20 % of nodes suffice" claim).

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let sizes = match args.n {
        Some(n) => vec![n],
        None => vec![250, 500, 1000],
    };
    let fractions = [0.05, 0.1, 0.2, 0.3, 0.5];
    let runs = args.runs_or(10);
    let base_seed: u64 = 2;
    println!("E2 / Fig. 2 — flood-and-prune deanonymisation ({runs} runs per cell)\n");
    println!(
        "{:<8} {:>8} {:>16} {:>18} {:>18}",
        "n", "phi", "first-spy P[det]", "jordan P[det]", "anonymity set"
    );
    let params = Json::obj([
        (
            "sizes",
            Json::Arr(sizes.iter().map(|&n| Json::from(n)).collect()),
        ),
        (
            "fractions",
            Json::Arr(fractions.iter().map(|&f| Json::from(f)).collect()),
        ),
        ("runs", Json::from(runs)),
        ("base_seed", Json::from(base_seed)),
    ]);
    let rows = with_report(
        &args,
        "fig2_flood_deanon",
        params,
        |rows| Json::rows(rows),
        || fnp_bench::flood_deanonymization_with(&runner, &sizes, &fractions, runs, base_seed),
    );
    for row in &rows {
        println!(
            "{:<8} {:>8.2} {:>16.3} {:>18.3} {:>18.1}",
            row.n,
            row.adversary_fraction,
            row.first_spy.detection_probability,
            row.jordan_center.detection_probability,
            row.first_spy.mean_anonymity_set_size
        );
    }
}
