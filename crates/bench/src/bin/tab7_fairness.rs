//! Experiment E12 (§II): how each broadcast protocol's dissemination latency
//! translates into miner fee-income (un)fairness and transaction inclusion
//! delay.

fn main() {
    println!("E12 / §II — dissemination latency vs miner fee fairness\n");
    println!("1,000-node overlay, 100 equal-hash-rate miners, 5 s mean block interval\n");
    println!(
        "{:<20} {:>12} {:>10} {:>20} {:>12}",
        "protocol", "Jain index", "Gini", "inclusion delay (ms)", "orphaned"
    );
    for row in fnp_bench::fee_fairness(fnp_bench::PAPER_NETWORK_SIZE, 100, 5, 400, 9) {
        println!(
            "{:<20} {:>12.3} {:>10.3} {:>20.0} {:>12.3}",
            row.protocol,
            row.jain_index,
            row.gini,
            row.mean_inclusion_delay_ms,
            row.orphaned_fraction
        );
    }
    println!(
        "\nHigher Jain index (and lower Gini) = fee income proportional to hash rate; \
         privacy mechanisms pay for anonymity with inclusion delay and, if dissemination \
         is skewed, with fairness."
    );
}
