//! Experiment E12 (§II): how each broadcast protocol's dissemination latency
//! translates into miner fee-income (un)fairness and transaction inclusion
//! delay.

use fnp_bench::cli::{with_report, BinArgs};
use fnp_bench::json::Json;

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    let n = args.n_or(fnp_bench::PAPER_NETWORK_SIZE);
    let miner_count = 100.min(n / 2);
    let runs = args.runs_or(5);
    let races_per_run = 400;
    let base_seed: u64 = 9;
    println!("E12 / §II — dissemination latency vs miner fee fairness\n");
    println!("{n}-node overlay, {miner_count} equal-hash-rate miners, 5 s mean block interval\n");
    println!(
        "{:<20} {:>12} {:>10} {:>20} {:>12}",
        "protocol", "Jain index", "Gini", "inclusion delay (ms)", "orphaned"
    );
    let params = Json::obj([
        ("n", Json::from(n)),
        ("miner_count", Json::from(miner_count)),
        ("runs", Json::from(runs)),
        ("races_per_run", Json::from(races_per_run)),
        ("base_seed", Json::from(base_seed)),
    ]);
    let rows = with_report(
        &args,
        "tab7_fairness",
        params,
        |rows| Json::rows(rows),
        || fnp_bench::fee_fairness_with(&runner, n, miner_count, runs, races_per_run, base_seed),
    );
    for row in &rows {
        println!(
            "{:<20} {:>12.3} {:>10.3} {:>20.0} {:>12.3}",
            row.protocol,
            row.jain_index,
            row.gini,
            row.mean_inclusion_delay_ms,
            row.orphaned_fraction
        );
    }
    println!(
        "\nHigher Jain index (and lower Gini) = fee income proportional to hash rate; \
         privacy mechanisms pay for anonymity with inclusion delay and, if dissemination \
         is skewed, with fairness."
    );
}
