//! Deterministic replay: recorded simulator traces drive the bare cores.
//!
//! For each of the four protocols, a simulator run is recorded through
//! [`SimDriver::traced`] — every poll's input, pre-poll RNG state and
//! emitted effects, in delivery order — and then replayed through a fresh
//! set of bare [`ProtocolCore`]s with no simulator involved. The emitted
//! mailbox effects must match the recording event for event; any drift
//! between the sans-IO cores and the simulator path fails here with the
//! first diverging event.

use fnp_core::{FlexConfig, FlexNode, GroupKeyCache, GroupMembership};
use fnp_diffusion::{AdParams, AdaptiveDiffusionNode};
use fnp_gossip::{DandelionNode, DandelionParams, FloodNode, StemLine};
use fnp_groups::form_groups;
use fnp_netsim::{topology, Graph, NodeId, SimConfig, Simulator};
use fnp_proto::{replay_trace, SimDriver, TraceHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn overlay(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    topology::random_regular(n, 4, &mut rng).unwrap()
}

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn flood_replays_exactly() {
    let n = 60;
    let graph = overlay(n, 11);
    let trace = TraceHandle::new();
    let nodes = (0..n)
        .map(|_| SimDriver::traced(FloodNode::new(), trace.clone()))
        .collect();
    let mut sim = Simulator::new(graph.clone(), nodes, sim_config(11));
    sim.trigger(NodeId::new(3), |driver, ctx| {
        driver.drive(ctx, |node, view, out| node.start_broadcast(7, view, out));
    });
    let metrics = sim.run();
    assert_eq!(metrics.coverage(), 1.0);

    let events = trace.take();
    assert!(events.len() >= n, "every node should have been polled");
    let mut cores: Vec<FloodNode> = (0..n).map(|_| FloodNode::new()).collect();
    replay_trace(&mut cores, &graph, &events, |core, view, out| {
        core.start_broadcast(7, view, out)
    })
    .unwrap();
}

#[test]
fn replay_detects_divergence() {
    let n = 20;
    let graph = overlay(n, 12);
    let trace = TraceHandle::new();
    let nodes = (0..n)
        .map(|_| SimDriver::traced(FloodNode::new(), trace.clone()))
        .collect();
    let mut sim = Simulator::new(graph.clone(), nodes, sim_config(12));
    sim.trigger(NodeId::new(0), |driver, ctx| {
        driver.drive(ctx, |node, view, out| node.start_broadcast(7, view, out));
    });
    sim.run();

    // Replaying with a *different* origin entry point must be caught at
    // the first event.
    let events = trace.take();
    let mut cores: Vec<FloodNode> = (0..n).map(|_| FloodNode::new()).collect();
    let mismatch = replay_trace(&mut cores, &graph, &events, |core, view, out| {
        core.start_broadcast(8, view, out)
    })
    .unwrap_err();
    // The trace opens with every node's silent `Init` poll; the first
    // divergence is the origin trigger itself.
    let first_external = events
        .iter()
        .position(|event| matches!(event.input, fnp_proto::TracedInput::External))
        .unwrap();
    assert_eq!(mismatch.index, first_external);
    assert!(mismatch.to_string().contains("diverged"));
}

#[test]
fn dandelion_replays_exactly() {
    let n = 60;
    let graph = overlay(n, 21);
    let params = DandelionParams::default();
    let line = StemLine::random(n, &mut StdRng::seed_from_u64(22));
    let trace = TraceHandle::new();
    let nodes = (0..n)
        .map(|i| {
            SimDriver::traced(
                DandelionNode::new(params, line.successor(NodeId::new(i))),
                trace.clone(),
            )
        })
        .collect();
    let mut sim = Simulator::new(graph.clone(), nodes, sim_config(21));
    sim.trigger(NodeId::new(5), |driver, ctx| {
        driver.drive(ctx, |node, view, out| node.start_broadcast(9, view, out));
    });
    let metrics = sim.run();
    assert_eq!(metrics.coverage(), 1.0);

    let events = trace.take();
    let mut cores: Vec<DandelionNode> = (0..n)
        .map(|i| DandelionNode::new(params, line.successor(NodeId::new(i))))
        .collect();
    replay_trace(&mut cores, &graph, &events, |core, view, out| {
        core.start_broadcast(9, view, out)
    })
    .unwrap();
}

#[test]
fn adaptive_diffusion_replays_exactly() {
    let n = 60;
    let graph = overlay(n, 31);
    let params = AdParams {
        max_rounds: 32,
        ..AdParams::default()
    };
    let trace = TraceHandle::new();
    let nodes = (0..n)
        .map(|_| SimDriver::traced(AdaptiveDiffusionNode::new(params), trace.clone()))
        .collect();
    let mut sim = Simulator::new(graph.clone(), nodes, sim_config(31));
    sim.trigger(NodeId::new(2), |driver, ctx| {
        driver.drive(ctx, |node, view, out| node.start_broadcast(view, out));
    });
    sim.run();

    let events = trace.take();
    assert!(!events.is_empty());
    let mut cores: Vec<AdaptiveDiffusionNode> =
        (0..n).map(|_| AdaptiveDiffusionNode::new(params)).collect();
    replay_trace(&mut cores, &graph, &events, |core, view, out| {
        core.start_broadcast(view, out)
    })
    .unwrap();
}

/// Rebuilds the flexible protocol's group memberships exactly as the
/// harness does (same seed-derived setup RNG, same key cache), so the
/// replayed cores start from the same initial state as the recorded run.
fn flex_memberships(n: usize, config: FlexConfig, seed: u64) -> Vec<Option<GroupMembership>> {
    let mut setup_rng = StdRng::seed_from_u64(seed ^ 0xD1F7_BEEF);
    let all_nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let groups = form_groups(&all_nodes, config.k, &mut setup_rng).unwrap();
    let mut key_cache = GroupKeyCache::new(seed);
    let mut memberships: Vec<Option<GroupMembership>> = (0..n).map(|_| None).collect();
    for group in &groups {
        for (node, membership) in key_cache.memberships(group) {
            memberships[node.index()] = Some(membership);
        }
    }
    memberships
}

#[test]
fn flexible_protocol_replays_exactly() {
    let n = 60;
    let seed = 41;
    let graph = overlay(n, seed);
    let config = FlexConfig::default();
    let payload = b"replayed flexible broadcast".to_vec();

    let build_cores = || -> Vec<FlexNode> {
        flex_memberships(n, config, seed)
            .into_iter()
            .map(|membership| FlexNode::new(config, membership))
            .collect()
    };

    let trace = TraceHandle::new();
    let nodes = build_cores()
        .into_iter()
        .map(|core| SimDriver::traced(core, trace.clone()))
        .collect();
    let mut sim = Simulator::new(graph.clone(), nodes, sim_config(seed));
    let start_payload = payload.clone();
    sim.trigger(NodeId::new(7), |driver, ctx| {
        driver.drive(ctx, move |node, view, out| {
            node.start_broadcast(start_payload, view, out);
        });
    });
    let metrics = sim.run();
    assert_eq!(metrics.coverage(), 1.0);

    let events = trace.take();
    // All three phases appear in the trace's polls.
    assert!(events.len() > n);
    let mut cores = build_cores();
    replay_trace(&mut cores, &graph, &events, |core, view, out| {
        core.start_broadcast(payload.clone(), view, out)
    })
    .unwrap();
}
