//! Parallel trial execution must not change experiment results.
//!
//! The contract of `TrialRunner` (crates/netsim/src/runner.rs) is that a
//! run over any number of worker threads produces results **byte-identical**
//! to a forced single-threaded run: trials derive their seeds independently
//! and results are aggregated in plan order. These tests pin that contract
//! end-to-end through the experiment drivers — if a driver ever grows a
//! dependency on execution order (a shared RNG, an order-sensitive
//! accumulator), the row-level comparison here fails.
//!
//! Rows are compared through their `Debug` rendering, which for `f64`
//! prints the shortest round-trip representation — two renderings are equal
//! exactly when every field is bit-identical.

use fnp_bench::TrialRunner;

const THREAD_COUNTS: [usize; 2] = [2, 4];

fn assert_matches_sequential<R: std::fmt::Debug>(
    experiment: &str,
    run: impl Fn(&TrialRunner) -> R,
) {
    let sequential = format!("{:?}", run(&TrialRunner::sequential()));
    for threads in THREAD_COUNTS {
        let parallel = format!("{:?}", run(&TrialRunner::new(threads)));
        assert_eq!(
            parallel, sequential,
            "{experiment}: {threads}-thread run diverged from the sequential run"
        );
    }
}

#[test]
fn landscape_rows_are_identical_across_thread_counts() {
    assert_matches_sequential("landscape", |runner| {
        fnp_bench::landscape_with(runner, 60, 4, &[0.2], 11)
    });
}

#[test]
fn flood_deanonymization_rows_are_identical_across_thread_counts() {
    assert_matches_sequential("flood_deanonymization", |runner| {
        fnp_bench::flood_deanonymization_with(runner, &[80], &[0.1, 0.3], 4, 12)
    });
}

#[test]
fn dandelion_rows_are_identical_across_thread_counts() {
    assert_matches_sequential("dandelion_privacy", |runner| {
        fnp_bench::dandelion_privacy_with(runner, 70, &[0.2], &[0.5, 0.9], 4, 13)
    });
}

#[test]
fn dcnet_cost_rows_are_identical_across_thread_counts() {
    assert_matches_sequential("dcnet_cost", |runner| {
        fnp_bench::dcnet_cost_with(runner, &[3, 4, 6, 8, 12], 256, 14)
    });
}

#[test]
fn three_phase_rows_are_identical_across_thread_counts() {
    assert_matches_sequential("three_phase_breakdown", |runner| {
        fnp_bench::three_phase_breakdown_with(runner, 60, &[3], &[2, 4], 3, 15)
    });
}

#[test]
fn message_overhead_is_identical_across_thread_counts() {
    assert_matches_sequential("message_overhead", |runner| {
        fnp_bench::message_overhead_with(runner, 60, 4, 16)
    });
}

#[test]
fn latency_rows_are_identical_across_thread_counts() {
    assert_matches_sequential("latency", |runner| {
        fnp_bench::latency_with(runner, 60, 4, 17)
    });
}

#[test]
fn fee_fairness_rows_are_identical_across_thread_counts() {
    assert_matches_sequential("fee_fairness", |runner| {
        fnp_bench::fee_fairness_with(runner, 60, 15, 3, 50, 18)
    });
}

#[test]
fn steady_state_rows_are_identical_across_thread_counts() {
    // The steady-state grid multiplexes K overlapping broadcasts per trial
    // (shared session bookkeeping, per-transaction lanes, a mempool
    // replay) — the row must still be a pure function of the cell.
    assert_matches_sequential("steady_state", |runner| {
        fnp_bench::steady_state_with(runner, 50, 10, 2, &[2.0], 2 * fnp_netsim::SECOND, 22)
    });
}

#[test]
fn group_overlap_and_dissent_are_identical_across_thread_counts() {
    assert_matches_sequential("group_overlap", |runner| {
        fnp_bench::group_overlap_with(runner, &[3, 5, 8], &[1, 2])
    });
    assert_matches_sequential("dissent_startup", |runner| {
        fnp_bench::dissent_startup_with(runner, &[4, 6, 8], 19)
    });
}

#[test]
fn threaded_overlay_and_diameter_are_identical_across_thread_counts() {
    // The large-n bench leg has no trial-level parallelism, so it threads
    // *within* the trial instead: the overlay's CSR finalize and the
    // double-sweep diameter BFS split across workers. Both must stay
    // byte-identical to their sequential variants — the leg's figures land
    // in BENCH_baseline.json and are compared across commits. n is above
    // the exact-diameter cutoff (2048) so the double sweep actually runs.
    let mut arena = fnp_bench::TrialArena::new();
    let n = 3000;
    let sequential = fnp_bench::standard_overlay_in(&mut arena, n, 21);
    let sequential_diameter = sequential.diameter_estimate();
    for threads in THREAD_COUNTS {
        let overlay = fnp_bench::standard_overlay_threaded_in(&mut arena, n, 21, threads);
        assert_eq!(
            format!("{overlay:?}"),
            format!("{sequential:?}"),
            "standard overlay diverged at {threads} threads"
        );
        assert_eq!(
            overlay.diameter_estimate_with_threads(threads),
            sequential_diameter,
            "diameter estimate diverged at {threads} threads"
        );
    }
}

#[test]
fn json_reports_are_identical_across_thread_counts() {
    use fnp_bench::json::Json;
    let render = |runner: &TrialRunner| {
        Json::rows(&fnp_bench::landscape_with(runner, 60, 3, &[0.2], 20)).to_pretty_string()
    };
    let sequential = render(&TrialRunner::sequential());
    for threads in THREAD_COUNTS {
        assert_eq!(
            render(&TrialRunner::new(threads)),
            sequential,
            "JSON serialisation diverged at {threads} threads"
        );
    }
}
