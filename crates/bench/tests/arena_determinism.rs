//! Arena reuse must be observationally invisible.
//!
//! Each `TrialRunner` worker hands one reusable `TrialArena` (overlay
//! adjacency, node storage, event queue, metrics, hot lanes) to every trial
//! it executes; a trial therefore runs on storage *reset* from the previous
//! trial rather than freshly allocated. These tests pin the contract that
//! the reset is complete:
//!
//! * at the trial level, running trials A then B through one reused arena
//!   (including across protocol types, which exercises the type-erased
//!   pools) yields byte-identical metrics for B compared to a fresh arena;
//! * at the driver level, rows computed with per-worker arena reuse are
//!   byte-identical to rows computed with a brand-new arena per trial
//!   ([`TrialRunner::with_fresh_arenas`]), across {1, 2, 4} worker threads
//!   (each thread count distributes trials — and hence arena histories —
//!   differently over the workers).
//!
//! Rows are compared through their `Debug` rendering, which for `f64`
//! prints the shortest round-trip representation — two renderings are equal
//! exactly when every field is bit-identical.

use fnp_bench::{TrialArena, TrialRunner};
use fnp_core::{run_protocol, run_protocol_in, FlexConfig, ProtocolKind};
use fnp_netsim::{NodeId, SimConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn assert_reuse_matches_fresh<R: std::fmt::Debug>(
    experiment: &str,
    run: impl Fn(&TrialRunner) -> R,
) {
    let fresh = format!("{:?}", run(&TrialRunner::sequential().with_fresh_arenas()));
    for threads in THREAD_COUNTS {
        let reused = format!("{:?}", run(&TrialRunner::new(threads)));
        assert_eq!(
            reused, fresh,
            "{experiment}: {threads}-thread arena-reusing run diverged from fresh-arena run"
        );
    }
}

#[test]
fn trials_a_then_b_in_one_arena_match_fresh_arena_runs() {
    // One arena runs a chain of trials over *different* protocols, overlay
    // sizes and seeds — maximal cross-trial contamination surface (the
    // type-erased node/queue pools get checked out under changing types,
    // graphs shrink and grow). Every trial must match the same trial run on
    // a fresh arena.
    let kinds = [
        ("flood", ProtocolKind::Flood),
        (
            "dandelion",
            ProtocolKind::Dandelion(fnp_gossip::DandelionParams::default()),
        ),
        (
            "adaptive-diffusion",
            ProtocolKind::AdaptiveDiffusion(fnp_diffusion::AdParams {
                max_rounds: 48,
                ..fnp_diffusion::AdParams::default()
            }),
        ),
        ("flexible", ProtocolKind::Flexible(FlexConfig::default())),
    ];
    let mut arena = TrialArena::new();
    for (trial, &(label, kind)) in kinds.iter().chain(kinds.iter()).enumerate() {
        let n = [60, 80, 40][trial % 3];
        let seed = 100 + trial as u64;
        let config = SimConfig {
            seed,
            ..SimConfig::default()
        };
        let graph = fnp_bench::standard_overlay_in(&mut arena, n, seed);
        let reused = run_protocol_in(
            &mut arena,
            kind,
            graph,
            NodeId::new(trial % n),
            config.clone(),
        )
        .expect("protocol run");
        let fresh = run_protocol(
            kind,
            fnp_bench::standard_overlay(n, seed),
            NodeId::new(trial % n),
            config,
        )
        .expect("protocol run");
        assert_eq!(
            format!("{reused:?}"),
            format!("{fresh:?}"),
            "trial {trial} ({label}, n={n}) diverged in the reused arena"
        );
        arena.recycle_metrics(reused);
    }
}

#[test]
fn growing_then_shrinking_the_overlay_leaves_no_stale_state() {
    // The overlay grows, shrinks hard, and grows back — all under the SAME
    // protocol and seed, so every pooled buffer (adjacency lanes, node
    // vector, time-wheel, the overlay generator's scratch, the group-key
    // cache) is genuinely reused at a new size instead of being discarded
    // by a type mismatch. A stale lane from the 300-node trial leaking into
    // the following 50-node trial would diverge from the fresh-arena run.
    let sizes = [50usize, 300, 50, 300, 80];
    for kind in [
        ProtocolKind::Flood,
        ProtocolKind::Flexible(FlexConfig::default()),
    ] {
        let mut arena = TrialArena::new();
        for (trial, &n) in sizes.iter().enumerate() {
            let config = SimConfig {
                seed: 9,
                ..SimConfig::default()
            };
            let graph = fnp_bench::standard_overlay_in(&mut arena, n, 9);
            let origin = NodeId::new(n - 1);
            let reused = run_protocol_in(&mut arena, kind, graph, origin, config.clone())
                .expect("protocol run");
            let fresh = run_protocol(kind, fnp_bench::standard_overlay(n, 9), origin, config)
                .expect("protocol run");
            assert_eq!(
                format!("{reused:?}"),
                format!("{fresh:?}"),
                "trial {trial} ({kind}, n={n}) diverged after a grow/shrink cycle"
            );
            arena.recycle_metrics(reused);
        }
    }
}

#[test]
fn landscape_rows_match_fresh_arena_rows() {
    assert_reuse_matches_fresh("landscape", |runner| {
        fnp_bench::landscape_with(runner, 60, 4, &[0.2], 11)
    });
}

#[test]
fn flood_deanonymization_rows_match_fresh_arena_rows() {
    assert_reuse_matches_fresh("flood_deanonymization", |runner| {
        fnp_bench::flood_deanonymization_with(runner, &[80, 40], &[0.2], 3, 12)
    });
}

#[test]
fn three_phase_rows_match_fresh_arena_rows() {
    assert_reuse_matches_fresh("three_phase_breakdown", |runner| {
        fnp_bench::three_phase_breakdown_with(runner, 60, &[3], &[2, 4], 3, 15)
    });
}

#[test]
fn latency_rows_match_fresh_arena_rows() {
    assert_reuse_matches_fresh("latency", |runner| {
        fnp_bench::latency_with(runner, 60, 4, 17)
    });
}

#[test]
fn steady_state_rows_match_fresh_arena_rows() {
    // Steady-state trials lease per-transaction hot lanes from the arena's
    // pools and run four different node types through the type-erased node
    // storage; a stale lane or session left by a previous trial would show
    // up as a row difference against the fresh-arena run.
    assert_reuse_matches_fresh("steady_state", |runner| {
        fnp_bench::steady_state_with(runner, 50, 10, 2, &[2.0], 2 * fnp_netsim::SECOND, 22)
    });
}

#[test]
fn dandelion_rows_match_fresh_arena_rows() {
    assert_reuse_matches_fresh("dandelion_privacy", |runner| {
        fnp_bench::dandelion_privacy_with(runner, 70, &[0.2], &[0.5, 0.9], 3, 13)
    });
}
