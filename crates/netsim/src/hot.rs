//! Struct-of-arrays storage for the hot per-node protocol state.
//!
//! Protocol state machines mix two very different kinds of per-node data:
//! a few bytes that the event loop consults on *every* delivery (has this
//! node seen the broadcast? which phase is it in? which spread wave did it
//! process last?) and kilobytes of cold state touched rarely (key material,
//! payload buffers, group membership tables). Storing both in one
//! `Vec<Node>` interleaves them, so the hottest check of the whole
//! simulation — the duplicate-suppression test at the top of nearly every
//! message handler — drags a whole node struct through the cache.
//!
//! [`HotState`] splits the hot fields out into dense parallel lanes owned
//! by the [`Simulator`](crate::Simulator): one u64-word [`BitSet`] of seen
//! flags (64 nodes per cache word — the whole lane of a 10⁶-node overlay
//! fits in L2), one `Vec<u8>` of phase tags and one `Vec<u32>` of per-node
//! counters, indexed by [`NodeId::index`]. Protocols read and write *their own*
//! node's slots through the [`Context`](crate::Context) accessors
//! ([`Context::seen`](crate::Context::seen) and friends), preserving the
//! distributed-system abstraction: no state machine can peek at another
//! node's lanes mid-run. After a run the whole layout is inspectable via
//! [`Simulator::hot`](crate::Simulator::hot).
//!
//! The lanes are pure storage — moving a flag into a lane must not change
//! a single event, which the cross-crate determinism suites assert
//! byte-for-byte.

use crate::bits::BitSet;
use crate::node::NodeId;

/// Dense struct-of-arrays lanes for the hot per-node protocol fields.
///
/// One slot of every lane per simulated node; all lanes start zeroed
/// (`false` / `0`). What each lane *means* is up to the protocol:
/// flood-and-prune only uses the seen flag, the flexible broadcast uses the
/// phase tag for its flood switch and the counter for spread-wave
/// deduplication.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HotState {
    /// Seen/delivered flag per node, bit-packed.
    seen: BitSet,
    /// Protocol phase tag per node.
    phase: Vec<u8>,
    /// General-purpose per-node counter (spread-wave round, hop budget, …).
    counter: Vec<u32>,
}

impl HotState {
    /// Creates zeroed lanes for `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let mut state = Self::default();
        state.reset(n);
        state
    }

    /// Number of nodes covered by the lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether the lanes cover no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Re-zeroes every lane and resizes them to `n` nodes, reusing the
    /// existing allocations (this is what makes an arena reset cheap; see
    /// [`TrialArena`](crate::TrialArena)).
    pub fn reset(&mut self, n: usize) {
        self.seen.reset(n);
        reset_lane(&mut self.phase, n, 0);
        reset_lane(&mut self.counter, n, 0);
    }

    /// The seen flag of `node`.
    #[must_use]
    pub fn seen(&self, node: NodeId) -> bool {
        self.seen.get(node.index())
    }

    /// Sets the seen flag of `node`, returning the previous value.
    pub fn set_seen(&mut self, node: NodeId) -> bool {
        self.seen.set(node.index())
    }

    /// The phase tag of `node`.
    #[must_use]
    pub fn phase(&self, node: NodeId) -> u8 {
        self.phase[node.index()]
    }

    /// Sets the phase tag of `node`.
    pub fn set_phase(&mut self, node: NodeId, phase: u8) {
        self.phase[node.index()] = phase;
    }

    /// The counter slot of `node`.
    #[must_use]
    pub fn counter(&self, node: NodeId) -> u32 {
        self.counter[node.index()]
    }

    /// Sets the counter slot of `node`.
    pub fn set_counter(&mut self, node: NodeId, value: u32) {
        self.counter[node.index()] = value;
    }

    /// Number of nodes whose seen flag is set (hardware popcount over the
    /// bit-packed lane).
    #[must_use]
    pub fn seen_count(&self) -> usize {
        self.seen.count_ones()
    }
}

/// Zeroes `lane` and resizes it to `n` slots without shrinking its
/// allocation.
fn reset_lane<T: Copy>(lane: &mut Vec<T>, n: usize, zero: T) {
    lane.clear();
    lane.resize(n, zero);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_start_zeroed() {
        let hot = HotState::new(3);
        assert_eq!(hot.len(), 3);
        assert!(!hot.is_empty());
        for index in 0..3 {
            let node = NodeId::new(index);
            assert!(!hot.seen(node));
            assert_eq!(hot.phase(node), 0);
            assert_eq!(hot.counter(node), 0);
        }
        assert_eq!(hot.seen_count(), 0);
    }

    #[test]
    fn set_seen_returns_previous_value() {
        let mut hot = HotState::new(2);
        let node = NodeId::new(1);
        assert!(!hot.set_seen(node));
        assert!(hot.set_seen(node));
        assert!(hot.seen(node));
        assert!(!hot.seen(NodeId::new(0)));
        assert_eq!(hot.seen_count(), 1);
    }

    #[test]
    fn phase_and_counter_roundtrip() {
        let mut hot = HotState::new(2);
        hot.set_phase(NodeId::new(0), 7);
        hot.set_counter(NodeId::new(1), 42);
        assert_eq!(hot.phase(NodeId::new(0)), 7);
        assert_eq!(hot.phase(NodeId::new(1)), 0);
        assert_eq!(hot.counter(NodeId::new(1)), 42);
    }

    #[test]
    fn reset_rezeros_and_resizes() {
        let mut hot = HotState::new(4);
        hot.set_seen(NodeId::new(3));
        hot.set_phase(NodeId::new(2), 9);
        hot.set_counter(NodeId::new(1), 5);
        hot.reset(2);
        assert_eq!(hot.len(), 2);
        assert!(!hot.seen(NodeId::new(1)));
        assert_eq!(hot.phase(NodeId::new(1)), 0);
        assert_eq!(hot.counter(NodeId::new(1)), 0);
        // Growing again also yields zeroed slots.
        hot.reset(5);
        assert_eq!(hot.len(), 5);
        assert!(!hot.seen(NodeId::new(4)));
    }

    #[test]
    fn empty_state() {
        let hot = HotState::new(0);
        assert!(hot.is_empty());
        assert_eq!(hot.len(), 0);
    }
}
