//! Per-transaction hot-lane pool for multi-source simulation sessions.
//!
//! The simulator's own [`HotState`] lanes assume one broadcast per run: a
//! single seen bit, phase tag and counter per node. Under sustained traffic
//! many broadcasts overlap in flight, and their duplicate-suppression state
//! must not collide — node 7 having seen transaction 3 says nothing about
//! transaction 4. A [`LanePool`] hands out one full set of zeroed lanes per
//! *live* transaction and recycles it the moment the transaction's last
//! in-flight event drains, so the working set stays proportional to the
//! number of concurrently-active broadcasts, not to the total injected.
//!
//! The pool is pure storage, exactly like [`HotState`] itself: acquiring a
//! recycled lane set is observationally identical to acquiring a fresh one
//! (the steady-state determinism suites assert byte-identical rows across
//! thread counts and arena reuse).

use crate::hot::HotState;

/// A free-list pool of per-transaction [`HotState`] lane sets, all sized
/// for the same `n`-node overlay.
#[derive(Debug, Default)]
pub struct LanePool {
    n: usize,
    free: Vec<HotState>,
    /// High-water mark of simultaneously checked-out lane sets.
    peak_live: usize,
    live: usize,
}

impl LanePool {
    /// Creates an empty pool for an `n`-node overlay.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            free: Vec::new(),
            peak_live: 0,
            live: 0,
        }
    }

    /// Number of nodes each lane set covers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Checks out a zeroed lane set, reusing a recycled allocation when one
    /// is available.
    pub fn acquire(&mut self) -> HotState {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        match self.free.pop() {
            Some(mut lanes) => {
                lanes.reset(self.n);
                lanes
            }
            None => HotState::new(self.n),
        }
    }

    /// Returns a lane set to the pool. The contents are irrelevant — the
    /// next [`acquire`](Self::acquire) re-zeroes them.
    pub fn release(&mut self, lanes: HotState) {
        self.live = self.live.saturating_sub(1);
        self.free.push(lanes);
    }

    /// Highest number of lane sets simultaneously live so far — the
    /// concurrent-broadcast high-water mark of the session.
    #[must_use]
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Number of lane sets currently checked out.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn acquired_lanes_are_zeroed_even_after_reuse() {
        let mut pool = LanePool::new(4);
        let mut lanes = pool.acquire();
        lanes.set_seen(NodeId::new(2));
        lanes.set_phase(NodeId::new(1), 9);
        lanes.set_counter(NodeId::new(3), 7);
        pool.release(lanes);
        let reused = pool.acquire();
        assert_eq!(reused, HotState::new(4));
    }

    #[test]
    fn peak_live_tracks_the_high_water_mark() {
        let mut pool = LanePool::new(2);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.live(), 2);
        pool.release(a);
        let c = pool.acquire();
        assert_eq!(pool.live(), 2);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.peak_live(), 2);
    }

    #[test]
    fn pool_reuses_released_allocations() {
        let mut pool = LanePool::new(100);
        let a = pool.acquire();
        pool.release(a);
        assert_eq!(pool.free.len(), 1);
        let _b = pool.acquire();
        assert!(
            pool.free.is_empty(),
            "released lanes are reused, not leaked"
        );
        assert_eq!(pool.node_count(), 100);
    }
}
