//! Simulated time.
//!
//! The simulator measures time in integer **microseconds** ([`SimTime`]).
//! Integer timestamps keep the event queue ordering exact and the whole
//! simulation bit-for-bit reproducible under a fixed seed, which floating
//! point arrival times would not guarantee across platforms.

/// A point in simulated time, in microseconds since simulation start.
pub type SimTime = u64;

/// One millisecond in [`SimTime`] units.
pub const MILLISECOND: SimTime = 1_000;

/// One second in [`SimTime`] units.
pub const SECOND: SimTime = 1_000_000;

/// Converts a [`SimTime`] to fractional milliseconds (for reporting only).
pub fn as_millis(t: SimTime) -> f64 {
    t as f64 / MILLISECOND as f64
}

/// Converts fractional milliseconds to [`SimTime`], rounding to the nearest
/// microsecond.
pub fn from_millis(ms: f64) -> SimTime {
    // Float-to-int casts saturate: negatives and NaN clamp to 0 (the
    // `max` already handles the former), overlarge inputs to
    // `SimTime::MAX`. Both are the intended edge behaviours here.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        (ms * MILLISECOND as f64).round().max(0.0) as SimTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(SECOND, 1000 * MILLISECOND);
    }

    #[test]
    fn millis_round_trip() {
        assert_eq!(as_millis(1_500), 1.5);
        assert_eq!(from_millis(1.5), 1_500);
        assert_eq!(from_millis(as_millis(123_456)), 123_456);
    }

    #[test]
    fn negative_millis_clamp_to_zero() {
        assert_eq!(from_millis(-3.0), 0);
    }
}
