//! Dense u64-word bitsets for the simulator's hot membership lanes.
//!
//! BFS visited tracking, the flood coverage ("seen") lane and the CSR
//! graph's edge tombstones are all membership tests over a dense index
//! space. A `Vec<bool>` answers them one byte per element; a [`BitSet`]
//! packs 64 elements per word, so the whole lane of a 10⁶-node overlay is
//! ~122 KiB — small enough to stay cache-resident through an entire
//! breadth-first sweep, where the byte-per-flag layout thrashes. Population
//! counts (`count_ones`) come from the hardware popcount instead of a
//! byte-wise scan.
//!
//! Trailing bits beyond [`BitSet::len`] are kept zero at all times, so the
//! derived `PartialEq` compares sets by contents regardless of how they
//! were grown or reset.

/// Log₂ of the bits per storage word.
const WORD_SHIFT: usize = 6;
/// Bits per storage word.
const WORD_BITS: usize = 1 << WORD_SHIFT;

/// A fixed-length set of bits, packed 64 per word.
///
/// Indices run in `0..len`. All mutators keep the invariant that bits at
/// and beyond `len` are zero, which makes equality, cloning and
/// [`BitSet::count_ones`] independent of the allocation history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a set of `len` zero bits.
    #[must_use]
    pub fn new(len: usize) -> Self {
        let mut set = Self::default();
        set.reset(len);
        set
    }

    /// Re-zeroes the set and resizes it to `len` bits, reusing the word
    /// allocation (the cheap path of an arena reset).
    pub fn reset(&mut self, len: usize) {
        let words = len.div_ceil(WORD_BITS);
        self.words.clear();
        self.words.resize(words, 0);
        self.len = len;
    }

    /// Number of bits in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set covers no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index >> WORD_SHIFT] & (1u64 << (index & (WORD_BITS - 1))) != 0
    }

    /// Sets the bit at `index`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let word = &mut self.words[index >> WORD_SHIFT];
        let mask = 1u64 << (index & (WORD_BITS - 1));
        let previous = *word & mask != 0;
        *word |= mask;
        previous
    }

    /// Clears the bit at `index`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn clear(&mut self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let word = &mut self.words[index >> WORD_SHIFT];
        let mask = 1u64 << (index & (WORD_BITS - 1));
        let previous = *word & mask != 0;
        *word &= !mask;
        previous
    }

    /// Number of set bits, via per-word popcount.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Zeroes every bit, keeping the current length and allocation.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed_and_counts() {
        let mut set = BitSet::new(130);
        assert_eq!(set.len(), 130);
        assert!(!set.is_empty());
        assert_eq!(set.count_ones(), 0);
        assert!(!set.set(0));
        assert!(!set.set(63));
        assert!(!set.set(64));
        assert!(!set.set(129));
        assert_eq!(set.count_ones(), 4);
        assert!(set.set(129), "second set reports the previous value");
        assert_eq!(set.count_ones(), 4);
    }

    #[test]
    fn get_and_clear_round_trip() {
        let mut set = BitSet::new(70);
        set.set(69);
        assert!(set.get(69));
        assert!(!set.get(68));
        assert!(set.clear(69));
        assert!(!set.clear(69));
        assert!(!set.get(69));
    }

    #[test]
    fn reset_rezeros_and_equality_ignores_capacity() {
        let mut grown = BitSet::new(1000);
        for i in (0..1000).step_by(7) {
            grown.set(i);
        }
        grown.reset(65);
        assert_eq!(grown.count_ones(), 0);
        assert_eq!(grown, BitSet::new(65));
        grown.set(64);
        assert_eq!(grown.count_ones(), 1);
    }

    #[test]
    fn clear_all_keeps_length() {
        let mut set = BitSet::new(100);
        set.set(3);
        set.set(99);
        set.clear_all();
        assert_eq!(set.len(), 100);
        assert_eq!(set.count_ones(), 0);
    }

    #[test]
    fn empty_set() {
        let set = BitSet::new(0);
        assert!(set.is_empty());
        assert_eq!(set.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let set = BitSet::new(64);
        let _ = set.get(64);
    }
}
