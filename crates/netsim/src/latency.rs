//! Link-latency models.
//!
//! Message propagation delay is what the deanonymisation attacks of
//! Biryukov et al. exploit (observer nodes record *when* a transaction
//! first reaches them), so the simulator lets experiments choose how
//! latencies are drawn. All models are sampled per transmitted message.

use crate::node::NodeId;
use crate::time::{SimTime, MILLISECOND};
use rand::Rng;
use std::fmt;

/// Upper bound on the exponential jitter component, as a multiple of the
/// configured mean.
///
/// Raw inverse-CDF sampling from `u ∈ [f64::MIN_POSITIVE, 1.0)` can return
/// jitter up to `-ln(f64::MIN_POSITIVE) ≈ 708` times the mean (≈ 35 s on
/// the default 50 ms model), so a single unlucky draw silently poisons
/// every tail-latency row. The sample is therefore clamped at this
/// multiple of the mean; the probability mass above the cap is `e^{-20} ≈
/// 2·10⁻⁹`, so the distribution's mean shifts by far less than sampling
/// noise. The cap is also what makes every latency model *bounded* (see
/// [`LatencyModel::max_delay`]), which the simulator's time-wheel event
/// queue relies on to size its buckets.
pub const EXPONENTIAL_JITTER_CAP: u64 = 20;

/// A model for per-message link latency.
///
/// The enum form keeps experiment configurations declarative (and trivially
/// serialisable into experiment reports).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant {
        /// Fixed one-way delay.
        delay: SimTime,
    },
    /// Uniformly distributed delay in `[min, max]`.
    Uniform {
        /// Minimum one-way delay.
        min: SimTime,
        /// Maximum one-way delay (inclusive).
        max: SimTime,
    },
    /// Exponentially distributed delay with the given mean, shifted by a
    /// fixed propagation floor. This is the classical model for overlay
    /// links with queueing jitter.
    Exponential {
        /// Deterministic propagation floor added to every sample.
        floor: SimTime,
        /// Mean of the exponential jitter component.
        mean: SimTime,
    },
}

impl Default for LatencyModel {
    /// A latency profile resembling a wide-area overlay: 50 ms floor plus
    /// exponential jitter with a 50 ms mean.
    fn default() -> Self {
        LatencyModel::Exponential {
            floor: 50 * MILLISECOND,
            mean: 50 * MILLISECOND,
        }
    }
}

impl fmt::Display for LatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyModel::Constant { delay } => write!(f, "constant({delay}us)"),
            LatencyModel::Uniform { min, max } => write!(f, "uniform({min}..{max}us)"),
            LatencyModel::Exponential { floor, mean } => {
                write!(f, "exponential(floor={floor}us,mean={mean}us)")
            }
        }
    }
}

/// Error returned by [`LatencyModel::validate`] for ill-formed models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidLatencyModel {
    reason: String,
}

impl fmt::Display for InvalidLatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid latency model: {}", self.reason)
    }
}

impl std::error::Error for InvalidLatencyModel {}

impl LatencyModel {
    /// Checks the model parameters for internal consistency.
    ///
    /// The simulator validates the configured model before running, so a
    /// misconfigured experiment fails loudly at setup instead of silently
    /// sampling from a repaired distribution.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLatencyModel`] for a [`LatencyModel::Uniform`] with
    /// `min > max` (previously the bounds were silently swapped — a typo
    /// silently repaired is an experiment silently misconfigured).
    pub fn validate(&self) -> Result<(), InvalidLatencyModel> {
        match *self {
            LatencyModel::Uniform { min, max } if min > max => Err(InvalidLatencyModel {
                reason: format!("uniform bounds are reversed (min {min} > max {max})"),
            }),
            _ => Ok(()),
        }
    }

    /// The largest delay this model can ever return (all models are
    /// bounded; the exponential tail is clamped at
    /// [`EXPONENTIAL_JITTER_CAP`] times its mean).
    ///
    /// The simulator's time-wheel event queue derives its bucket width from
    /// this bound so that every in-flight message lands within one wheel
    /// rotation.
    #[must_use]
    pub fn max_delay(&self) -> SimTime {
        match *self {
            LatencyModel::Constant { delay } => delay.max(1),
            LatencyModel::Uniform { min, max } => max.max(min).max(1),
            LatencyModel::Exponential { floor, mean } => floor
                .saturating_add(mean.saturating_mul(EXPONENTIAL_JITTER_CAP))
                .max(1),
        }
    }

    /// Samples the one-way delay for a message from `from` to `to`.
    ///
    /// The endpoints are accepted (though unused by the current models) so
    /// that future per-link models keep the same call shape.
    ///
    /// # Panics
    ///
    /// Panics on a model rejected by [`LatencyModel::validate`].
    pub fn sample<R: Rng + ?Sized>(&self, _from: NodeId, _to: NodeId, rng: &mut R) -> SimTime {
        match *self {
            LatencyModel::Constant { delay } => delay.max(1),
            LatencyModel::Uniform { min, max } => {
                assert!(
                    min <= max,
                    "invalid latency model: uniform bounds are reversed (min {min} > max {max})"
                );
                rng.gen_range(min..=max).max(1)
            }
            LatencyModel::Exponential { floor, mean } => {
                // Inverse-CDF sampling; clamp the uniform draw away from 0
                // so ln() stays finite, then clamp the tail (see
                // EXPONENTIAL_JITTER_CAP).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let mean = mean as f64;
                let jitter = ((-u.ln()) * mean).min(EXPONENTIAL_JITTER_CAP as f64 * mean);
                saturating_time(floor as f64 + jitter)
            }
        }
    }
}

/// Rounds a non-negative f64 delay to a [`SimTime`], clamping to `≥ 1`.
fn saturating_time(value: f64) -> SimTime {
    // The input is floor + clamped jitter: non-negative and far below
    // 2^53, so the cast is exact after rounding.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        value.round().max(1.0) as SimTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nodes() -> (NodeId, NodeId) {
        (NodeId::new(0), NodeId::new(1))
    }

    #[test]
    fn constant_model_returns_fixed_delay() {
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = nodes();
        let model = LatencyModel::Constant { delay: 42 };
        for _ in 0..10 {
            assert_eq!(model.sample(a, b, &mut rng), 42);
        }
    }

    #[test]
    fn constant_zero_is_bumped_to_one() {
        // Zero-latency messages would break causality (a reply could arrive
        // at the same instant it was triggered), so the model enforces ≥ 1.
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = nodes();
        assert_eq!(
            LatencyModel::Constant { delay: 0 }.sample(a, b, &mut rng),
            1
        );
    }

    #[test]
    fn uniform_model_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let (a, b) = nodes();
        let model = LatencyModel::Uniform { min: 10, max: 20 };
        for _ in 0..1000 {
            let s = model.sample(a, b, &mut rng);
            assert!((10..=20).contains(&s));
        }
    }

    #[test]
    fn uniform_model_rejects_swapped_bounds() {
        let model = LatencyModel::Uniform { min: 20, max: 10 };
        let error = model.validate().unwrap_err();
        assert!(error.to_string().contains("min 20 > max 10"), "{error}");
        // Well-formed models (including min == max) pass.
        assert!(LatencyModel::Uniform { min: 10, max: 10 }
            .validate()
            .is_ok());
        assert!(LatencyModel::default().validate().is_ok());
        assert!(LatencyModel::Constant { delay: 0 }.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "uniform bounds are reversed")]
    fn sampling_swapped_bounds_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let (a, b) = nodes();
        let _ = LatencyModel::Uniform { min: 20, max: 10 }.sample(a, b, &mut rng);
    }

    #[test]
    fn exponential_model_respects_floor_and_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let (a, b) = nodes();
        let model = LatencyModel::Exponential {
            floor: 1000,
            mean: 500,
        };
        let samples: Vec<SimTime> = (0..20_000).map(|_| model.sample(a, b, &mut rng)).collect();
        assert!(samples.iter().all(|&s| s >= 1000));
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        // Expected mean = floor + mean = 1500; allow 5 % sampling error.
        assert!((mean - 1500.0).abs() < 75.0, "observed mean {mean}");
    }

    #[test]
    fn exponential_tail_stays_under_the_cap() {
        // Regression for the unbounded-tail bug: one unlucky draw used to
        // produce jitter up to ~708× the mean. A million samples must all
        // stay at or below floor + EXPONENTIAL_JITTER_CAP × mean.
        let mut rng = StdRng::seed_from_u64(5);
        let (a, b) = nodes();
        let (floor, mean) = (50, 100);
        let model = LatencyModel::Exponential { floor, mean };
        let cap = floor + EXPONENTIAL_JITTER_CAP * mean;
        assert_eq!(model.max_delay(), cap);
        for _ in 0..1_000_000 {
            let s = model.sample(a, b, &mut rng);
            assert!(s <= cap, "sample {s} exceeds cap {cap}");
        }
    }

    #[test]
    fn max_delay_bounds_every_model() {
        assert_eq!(LatencyModel::Constant { delay: 7 }.max_delay(), 7);
        assert_eq!(LatencyModel::Constant { delay: 0 }.max_delay(), 1);
        assert_eq!(LatencyModel::Uniform { min: 3, max: 9 }.max_delay(), 9);
        let mut rng = StdRng::seed_from_u64(6);
        let (a, b) = nodes();
        for model in [
            LatencyModel::Constant { delay: 250 },
            LatencyModel::Uniform { min: 10, max: 90 },
            LatencyModel::default(),
        ] {
            let bound = model.max_delay();
            for _ in 0..5_000 {
                assert!(model.sample(a, b, &mut rng) <= bound);
            }
        }
    }

    #[test]
    fn default_model_is_wide_area_profile() {
        match LatencyModel::default() {
            LatencyModel::Exponential { floor, mean } => {
                assert_eq!(floor, 50 * MILLISECOND);
                assert_eq!(mean, 50 * MILLISECOND);
            }
            other => panic!("unexpected default {other:?}"),
        }
    }

    #[test]
    fn sampling_is_deterministic_under_fixed_seed() {
        let (a, b) = nodes();
        let model = LatencyModel::default();
        let s1: Vec<SimTime> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| model.sample(a, b, &mut rng)).collect()
        };
        let s2: Vec<SimTime> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| model.sample(a, b, &mut rng)).collect()
        };
        assert_eq!(s1, s2);
    }

    #[test]
    fn display_is_informative() {
        assert!(LatencyModel::Constant { delay: 5 }
            .to_string()
            .contains('5'));
        assert!(LatencyModel::default().to_string().contains("exponential"));
    }
}
