//! Link-latency models.
//!
//! Message propagation delay is what the deanonymisation attacks of
//! Biryukov et al. exploit (observer nodes record *when* a transaction
//! first reaches them), so the simulator lets experiments choose how
//! latencies are drawn. All models are sampled per transmitted message.

use crate::node::NodeId;
use crate::time::{SimTime, MILLISECOND};
use rand::Rng;
use std::fmt;

/// A model for per-message link latency.
///
/// The enum form keeps experiment configurations declarative (and trivially
/// serialisable into experiment reports).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant {
        /// Fixed one-way delay.
        delay: SimTime,
    },
    /// Uniformly distributed delay in `[min, max]`.
    Uniform {
        /// Minimum one-way delay.
        min: SimTime,
        /// Maximum one-way delay (inclusive).
        max: SimTime,
    },
    /// Exponentially distributed delay with the given mean, shifted by a
    /// fixed propagation floor. This is the classical model for overlay
    /// links with queueing jitter.
    Exponential {
        /// Deterministic propagation floor added to every sample.
        floor: SimTime,
        /// Mean of the exponential jitter component.
        mean: SimTime,
    },
}

impl Default for LatencyModel {
    /// A latency profile resembling a wide-area overlay: 50 ms floor plus
    /// exponential jitter with a 50 ms mean.
    fn default() -> Self {
        LatencyModel::Exponential {
            floor: 50 * MILLISECOND,
            mean: 50 * MILLISECOND,
        }
    }
}

impl fmt::Display for LatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyModel::Constant { delay } => write!(f, "constant({delay}us)"),
            LatencyModel::Uniform { min, max } => write!(f, "uniform({min}..{max}us)"),
            LatencyModel::Exponential { floor, mean } => {
                write!(f, "exponential(floor={floor}us,mean={mean}us)")
            }
        }
    }
}

impl LatencyModel {
    /// Samples the one-way delay for a message from `from` to `to`.
    ///
    /// The endpoints are accepted (though unused by the current models) so
    /// that future per-link models keep the same call shape.
    pub fn sample<R: Rng + ?Sized>(&self, _from: NodeId, _to: NodeId, rng: &mut R) -> SimTime {
        match *self {
            LatencyModel::Constant { delay } => delay.max(1),
            LatencyModel::Uniform { min, max } => {
                let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
                rng.gen_range(lo..=hi).max(1)
            }
            LatencyModel::Exponential { floor, mean } => {
                // Inverse-CDF sampling; clamp the uniform draw away from 0
                // so ln() stays finite.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let jitter = (-u.ln()) * mean as f64;
                (floor as f64 + jitter).round().max(1.0) as SimTime
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nodes() -> (NodeId, NodeId) {
        (NodeId::new(0), NodeId::new(1))
    }

    #[test]
    fn constant_model_returns_fixed_delay() {
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = nodes();
        let model = LatencyModel::Constant { delay: 42 };
        for _ in 0..10 {
            assert_eq!(model.sample(a, b, &mut rng), 42);
        }
    }

    #[test]
    fn constant_zero_is_bumped_to_one() {
        // Zero-latency messages would break causality (a reply could arrive
        // at the same instant it was triggered), so the model enforces ≥ 1.
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = nodes();
        assert_eq!(
            LatencyModel::Constant { delay: 0 }.sample(a, b, &mut rng),
            1
        );
    }

    #[test]
    fn uniform_model_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let (a, b) = nodes();
        let model = LatencyModel::Uniform { min: 10, max: 20 };
        for _ in 0..1000 {
            let s = model.sample(a, b, &mut rng);
            assert!((10..=20).contains(&s));
        }
    }

    #[test]
    fn uniform_model_tolerates_swapped_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let (a, b) = nodes();
        let model = LatencyModel::Uniform { min: 20, max: 10 };
        let s = model.sample(a, b, &mut rng);
        assert!((10..=20).contains(&s));
    }

    #[test]
    fn exponential_model_respects_floor_and_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let (a, b) = nodes();
        let model = LatencyModel::Exponential {
            floor: 1000,
            mean: 500,
        };
        let samples: Vec<SimTime> = (0..20_000).map(|_| model.sample(a, b, &mut rng)).collect();
        assert!(samples.iter().all(|&s| s >= 1000));
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        // Expected mean = floor + mean = 1500; allow 5 % sampling error.
        assert!((mean - 1500.0).abs() < 75.0, "observed mean {mean}");
    }

    #[test]
    fn default_model_is_wide_area_profile() {
        match LatencyModel::default() {
            LatencyModel::Exponential { floor, mean } => {
                assert_eq!(floor, 50 * MILLISECOND);
                assert_eq!(mean, 50 * MILLISECOND);
            }
            other => panic!("unexpected default {other:?}"),
        }
    }

    #[test]
    fn sampling_is_deterministic_under_fixed_seed() {
        let (a, b) = nodes();
        let model = LatencyModel::default();
        let s1: Vec<SimTime> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| model.sample(a, b, &mut rng)).collect()
        };
        let s2: Vec<SimTime> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| model.sample(a, b, &mut rng)).collect()
        };
        assert_eq!(s1, s2);
    }

    #[test]
    fn display_is_informative() {
        assert!(LatencyModel::Constant { delay: 5 }
            .to_string()
            .contains('5'));
        assert!(LatencyModel::default().to_string().contains("exponential"));
    }
}
