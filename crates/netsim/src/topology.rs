//! Topology generators for the simulated peer-to-peer overlay.
//!
//! The paper's evaluation (§V-A) simulates dissemination over a network of
//! 1 000 peers; Bitcoin-like overlays are commonly modelled as roughly
//! regular random graphs with degree around 8 (each peer keeps 8 outbound
//! connections). This module provides that model plus the other standard
//! families used by the adaptive-diffusion and Dandelion papers the
//! protocol builds on: Erdős–Rényi, Watts–Strogatz, Barabási–Albert, rings,
//! lines, complete graphs, stars and regular trees.
//!
//! All generators are deterministic under a caller-provided RNG, and all of
//! them guarantee a *connected* result (retrying or patching where the raw
//! random model could produce disconnected graphs) because the dissemination
//! protocols need every node to be reachable.

use crate::graph::{Graph, GraphBuilder};
use crate::node::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// The topology families supported by the simulator.
///
/// The enum form (rather than free functions only) lets experiment configs
/// name a topology declaratively and sweep over families.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Topology {
    /// Random `degree`-regular graph (degree · n must be even).
    RandomRegular {
        /// Degree of every node.
        degree: usize,
    },
    /// Erdős–Rényi G(n, p) with edge probability `edge_probability`.
    ErdosRenyi {
        /// Independent probability of each possible edge.
        edge_probability: f64,
    },
    /// Watts–Strogatz small-world graph: ring lattice with `k` nearest
    /// neighbours, each edge rewired with probability `rewire_probability`.
    WattsStrogatz {
        /// Even number of lattice neighbours per node.
        k: usize,
        /// Probability of rewiring each lattice edge.
        rewire_probability: f64,
    },
    /// Barabási–Albert preferential attachment with `attachment` edges per
    /// new node.
    BarabasiAlbert {
        /// Edges added by every arriving node.
        attachment: usize,
    },
    /// Simple cycle over all nodes.
    Ring,
    /// Simple path (line graph) over all nodes.
    Line,
    /// Complete graph.
    Complete,
    /// Star: node 0 connected to every other node.
    Star,
    /// Complete `arity`-ary tree rooted at node 0.
    Tree {
        /// Children per internal node.
        arity: usize,
    },
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::RandomRegular { degree } => write!(f, "random-regular(d={degree})"),
            Topology::ErdosRenyi { edge_probability } => {
                write!(f, "erdos-renyi(p={edge_probability})")
            }
            Topology::WattsStrogatz {
                k,
                rewire_probability,
            } => {
                write!(f, "watts-strogatz(k={k},p={rewire_probability})")
            }
            Topology::BarabasiAlbert { attachment } => write!(f, "barabasi-albert(m={attachment})"),
            Topology::Ring => write!(f, "ring"),
            Topology::Line => write!(f, "line"),
            Topology::Complete => write!(f, "complete"),
            Topology::Star => write!(f, "star"),
            Topology::Tree { arity } => write!(f, "tree(arity={arity})"),
        }
    }
}

/// Error produced when a topology cannot be generated with the requested
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateTopologyError {
    /// The parameter combination is invalid (e.g. odd `n * degree` for a
    /// regular graph, degree ≥ n, zero nodes).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The randomised generator failed to produce a valid connected graph
    /// within its retry budget.
    GenerationFailed {
        /// Number of attempts made before giving up.
        attempts: usize,
    },
}

impl fmt::Display for GenerateTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateTopologyError::InvalidParameters { reason } => {
                write!(f, "invalid topology parameters: {reason}")
            }
            GenerateTopologyError::GenerationFailed { attempts } => {
                write!(
                    f,
                    "failed to generate a connected topology after {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for GenerateTopologyError {}

impl Topology {
    /// Generates a connected graph with `n` nodes from this topology family.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateTopologyError::InvalidParameters`] for impossible
    /// parameter combinations and [`GenerateTopologyError::GenerationFailed`]
    /// if the randomised construction repeatedly fails (pathological
    /// parameters such as extremely sparse Erdős–Rényi graphs).
    pub fn generate<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Graph, GenerateTopologyError> {
        match *self {
            Topology::RandomRegular { degree } => random_regular(n, degree, rng),
            Topology::ErdosRenyi { edge_probability } => erdos_renyi(n, edge_probability, rng),
            Topology::WattsStrogatz {
                k,
                rewire_probability,
            } => watts_strogatz(n, k, rewire_probability, rng),
            Topology::BarabasiAlbert { attachment } => barabasi_albert(n, attachment, rng),
            Topology::Ring => ring(n),
            Topology::Line => line(n),
            Topology::Complete => complete(n),
            Topology::Star => star(n),
            Topology::Tree { arity } => tree(n, arity),
        }
    }
}

fn invalid(reason: impl Into<String>) -> GenerateTopologyError {
    GenerateTopologyError::InvalidParameters {
        reason: reason.into(),
    }
}

fn require_nodes(n: usize) -> Result<(), GenerateTopologyError> {
    if n == 0 {
        Err(invalid("topology requires at least one node"))
    } else {
        Ok(())
    }
}

/// The line edges 0 – 1 – … – (n-1) as a builder, shared by [`line`] and
/// [`ring`].
fn line_builder(n: usize) -> GraphBuilder {
    let mut builder = GraphBuilder::new(n);
    for i in 1..n {
        builder.add_edge(NodeId::new(i - 1), NodeId::new(i));
    }
    builder
}

/// Simple path 0 – 1 – 2 – … – (n-1).
pub fn line(n: usize) -> Result<Graph, GenerateTopologyError> {
    require_nodes(n)?;
    Ok(line_builder(n).finalize())
}

/// Cycle over all `n` nodes (requires `n >= 3` to be a simple cycle; `n` of
/// 1 or 2 degenerate to a point / single edge).
pub fn ring(n: usize) -> Result<Graph, GenerateTopologyError> {
    require_nodes(n)?;
    let mut builder = line_builder(n);
    if n >= 3 {
        builder.add_edge(NodeId::new(n - 1), NodeId::new(0));
    }
    Ok(builder.finalize())
}

/// Complete graph on `n` nodes.
pub fn complete(n: usize) -> Result<Graph, GenerateTopologyError> {
    require_nodes(n)?;
    let mut builder = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            builder.add_edge(NodeId::new(i), NodeId::new(j));
        }
    }
    Ok(builder.finalize())
}

/// Star with node 0 as hub.
pub fn star(n: usize) -> Result<Graph, GenerateTopologyError> {
    require_nodes(n)?;
    let mut builder = GraphBuilder::new(n);
    for i in 1..n {
        builder.add_edge(NodeId::new(0), NodeId::new(i));
    }
    Ok(builder.finalize())
}

/// Complete `arity`-ary tree: node `i`'s children are `arity*i + 1 ..= arity*i + arity`.
pub fn tree(n: usize, arity: usize) -> Result<Graph, GenerateTopologyError> {
    require_nodes(n)?;
    if arity == 0 {
        return Err(invalid("tree arity must be at least 1"));
    }
    let mut builder = GraphBuilder::new(n);
    for i in 0..n {
        for c in 1..=arity {
            let child = arity * i + c;
            if child < n {
                builder.add_edge(NodeId::new(i), NodeId::new(child));
            }
        }
    }
    Ok(builder.finalize())
}

/// Erdős–Rényi G(n, p), retried until connected (up to 50 attempts).
pub fn erdos_renyi<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
) -> Result<Graph, GenerateTopologyError> {
    require_nodes(n)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(invalid(format!("edge probability {p} outside [0, 1]")));
    }
    const ATTEMPTS: usize = 50;
    for _ in 0..ATTEMPTS {
        let mut builder = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(p) {
                    builder.add_edge(NodeId::new(i), NodeId::new(j));
                }
            }
        }
        let g = builder.finalize();
        if g.is_connected() {
            return Ok(g);
        }
    }
    Err(GenerateTopologyError::GenerationFailed { attempts: ATTEMPTS })
}

/// Random `degree`-regular graph via the pairing/configuration model,
/// retried until simple and connected.
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    degree: usize,
    rng: &mut R,
) -> Result<Graph, GenerateTopologyError> {
    let mut graph = Graph::new(0);
    random_regular_into(&mut graph, n, degree, rng)?;
    Ok(graph)
}

/// Hasher for packed stub-pair keys: one splitmix64 finalizer round over
/// the `u64` key.
///
/// The repair delta map is only ever probed (`get`/`entry`) and cleared —
/// never iterated — so the hash function cannot influence any observable
/// output; it only sets the probe cost, and a single multiply-xor-shift
/// round beats SipHash by an order of magnitude on the repair loop's hot
/// lookups.
#[derive(Clone, Copy, Debug, Default)]
pub struct PairKeyHasher {
    state: u64,
}

impl Hasher for PairKeyHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by `u64` keys, which take `write_u64`).
        for &byte in bytes {
            self.state = (self.state ^ u64::from(byte)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, value: u64) {
        // splitmix64 finalizer: full avalanche in three rounds.
        let mut z = value.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.state = z ^ (z >> 31);
    }
}

/// Repair-delta map keyed by packed `(low, high)` stub pairs: how much the
/// live multiplicity of a key differs from the counting-sort snapshot taken
/// right after stub pairing. Signed, because swaps decrement keys the
/// snapshot counted. Only keys touched by a swap ever enter the map, so it
/// stays tiny even at n = 10⁶ (the snapshot itself is a sorted array, not a
/// hash map).
type PairDeltas = HashMap<u64, i32, BuildHasherDefault<PairKeyHasher>>;

/// How oversized a pooled scratch buffer may be, relative to the current
/// overlay's needs, before [`RegularScratch::clamp`] releases it. The
/// factor-of-4 headroom keeps steady-state sweeps reallocation-free while
/// bounding the residue a one-off million-node leg leaves in every worker.
const SCRATCH_CLAMP_FACTOR: usize = 4;

/// Reusable scratch buffers of the configuration-model generator.
///
/// One [`random_regular_into_with`] call for an `n`-node degree-`d` overlay
/// fills an `n·d`-element stub list, an `n·d/2`-element edge list and a
/// counting-sort multiplicity snapshot of the same order — tens of
/// megabytes of transient allocations per trial at n = 10⁶. Pooling the
/// scratch in a
/// [`TrialArena`](crate::TrialArena) (see
/// [`TrialArena::regular_scratch`](crate::TrialArena::regular_scratch))
/// turns that into a one-time cost per worker. The buffers carry no state
/// between calls: every use clears them first, so a dirty scratch is
/// indistinguishable from a fresh one. Each use also *clamps* capacity
/// afterwards (see [`RegularScratch::clamp`]), so one large-n trial does
/// not pin its peak footprint in the pool forever.
#[derive(Debug, Default)]
pub struct RegularScratch {
    stubs: Vec<u32>,
    edges: Vec<(u32, u32)>,
    /// Per-low-endpoint bucket boundaries of the multiplicity snapshot
    /// (`n + 1` prefix sums over edge keys, counting-sort style).
    key_offsets: Vec<u32>,
    /// Snapshot payload: one `(high, edge index)` entry per edge, bucketed
    /// by low endpoint and sorted within each bucket, so a key's snapshot
    /// multiplicity is a run length found by binary search.
    key_slots: Vec<(u32, u32)>,
    /// Indices of the initially-bad edges (self-loops, parallel runs), in
    /// ascending order — the repair loop's work list.
    bad: Vec<u32>,
    deltas: PairDeltas,
}

impl RegularScratch {
    /// Creates empty scratch buffers (allocated on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Releases excess capacity left by a larger previous overlay: any
    /// buffer holding more than `SCRATCH_CLAMP_FACTOR` (4×) times what a
    /// `stub_count`-stub generation needs is shrunk back to that need.
    ///
    /// Called by the generator after every run (the grow-then-shrink
    /// regression suite pins the behaviour); also callable directly when a
    /// harness wants to trim pooled workers between phases.
    pub fn clamp(&mut self, stub_count: usize) {
        if self.stubs.capacity() > SCRATCH_CLAMP_FACTOR * stub_count.max(1) {
            self.stubs.shrink_to(stub_count);
        }
        // `key_offsets` needs one slot per node plus one; node count is at
        // most the stub count, so the stub budget bounds it too.
        if self.key_offsets.capacity() > SCRATCH_CLAMP_FACTOR * (stub_count + 1) {
            self.key_offsets.shrink_to(stub_count + 1);
        }
        let edge_count = stub_count / 2;
        if self.edges.capacity() > SCRATCH_CLAMP_FACTOR * edge_count.max(1) {
            self.edges.shrink_to(edge_count);
        }
        if self.key_slots.capacity() > SCRATCH_CLAMP_FACTOR * edge_count.max(1) {
            self.key_slots.shrink_to(edge_count);
        }
        if self.bad.capacity() > SCRATCH_CLAMP_FACTOR * edge_count.max(1) {
            self.bad.shrink_to(edge_count);
        }
        if self.deltas.capacity() > SCRATCH_CLAMP_FACTOR * edge_count.max(1) {
            self.deltas.shrink_to(edge_count);
        }
    }

    /// Current capacity of the stub buffer (exposed for capacity-regression
    /// tests).
    #[must_use]
    pub fn stub_capacity(&self) -> usize {
        self.stubs.capacity()
    }
}

/// Like [`random_regular`], but regenerates into `graph`, reusing its
/// adjacency allocations (the overlay checkout path of a
/// [`TrialArena`](crate::TrialArena)).
///
/// Consumes the RNG exactly as [`random_regular`] does, so the generated
/// overlay is byte-identical regardless of which variant (or which recycled
/// graph) is used. On error `graph` is left cleared.
pub fn random_regular_into<R: Rng + ?Sized>(
    graph: &mut Graph,
    n: usize,
    degree: usize,
    rng: &mut R,
) -> Result<(), GenerateTopologyError> {
    random_regular_into_with(graph, n, degree, rng, &mut RegularScratch::new())
}

/// Like [`random_regular_into`], additionally reusing the caller's pooled
/// [`RegularScratch`] buffers — same RNG consumption, same overlay,
/// no per-call scratch allocations.
pub fn random_regular_into_with<R: Rng + ?Sized>(
    graph: &mut Graph,
    n: usize,
    degree: usize,
    rng: &mut R,
    scratch: &mut RegularScratch,
) -> Result<(), GenerateTopologyError> {
    random_regular_into_with_threads(graph, n, degree, rng, scratch, 1)
}

/// Like [`random_regular_into_with`], with the CSR finalize (per-span
/// neighbour sort) split across `threads` scoped worker threads.
///
/// The RNG consumption and the generated overlay are byte-identical at any
/// thread count — threads only parallelise the sort of independent spans,
/// whose result is unique. Intended for single-trial large-n legs where no
/// trial-level parallelism is available; `0` and `1` both mean sequential.
pub fn random_regular_into_with_threads<R: Rng + ?Sized>(
    graph: &mut Graph,
    n: usize,
    degree: usize,
    rng: &mut R,
    scratch: &mut RegularScratch,
    threads: usize,
) -> Result<(), GenerateTopologyError> {
    graph.reset(0);
    require_nodes(n)?;
    if degree == 0 && n > 1 {
        return Err(invalid("regular degree 0 cannot be connected"));
    }
    if degree >= n {
        return Err(invalid(format!(
            "degree {degree} must be smaller than n = {n}"
        )));
    }
    if (n * degree) % 2 != 0 {
        return Err(invalid(format!("n * degree = {} must be even", n * degree)));
    }
    if n == 1 {
        graph.reset(1);
        return Ok(());
    }

    let result = random_regular_attempts(graph, n, degree, rng, scratch, threads);
    // Capacity clamp: a pooled scratch must not pin the footprint of the
    // largest overlay it ever generated (the n = 10⁶ leg would otherwise
    // leave ~100 MB parked in every worker arena for the rest of the
    // process).
    scratch.clamp(n * degree);
    result
}

/// The retry loop of the configuration-model generator; see
/// [`random_regular_into_with_threads`] for the contract.
fn random_regular_attempts<R: Rng + ?Sized>(
    graph: &mut Graph,
    n: usize,
    degree: usize,
    rng: &mut R,
    scratch: &mut RegularScratch,
    threads: usize,
) -> Result<(), GenerateTopologyError> {
    const ATTEMPTS: usize = 50;
    for _ in 0..ATTEMPTS {
        // Configuration model: each node contributes `degree` stubs; a random
        // perfect matching over stubs yields an edge multiset which is then
        // repaired into a simple graph by double edge swaps (self-loops and
        // parallel edges are swapped against randomly chosen good edges).
        // The buffers come from `scratch` and are re-filled from zero, so
        // nothing of a previous call can leak into this one.
        let RegularScratch {
            stubs,
            edges,
            key_offsets,
            key_slots,
            bad,
            deltas,
        } = scratch;
        stubs.clear();
        stubs.extend((0..n).flat_map(|i| std::iter::repeat_n(to_u32(i), degree)));
        stubs.shuffle(rng);
        edges.clear();
        edges.extend(stubs.chunks_exact(2).map(|pair| (pair[0], pair[1])));

        // Multiplicity snapshot via counting sort, replacing the full hash
        // map (one insert per edge) that used to dominate the build at
        // n = 10⁶. Edge keys are bucketed by low endpoint; each bucket is
        // sorted by `(high, edge index)`, so a key's snapshot multiplicity
        // is a run length found by binary search, and the initially-bad
        // edges (self-loops, parallel runs) fall out of one linear walk.
        let split = |a: u32, b: u32| if a <= b { (a, b) } else { (b, a) };
        key_offsets.clear();
        key_offsets.resize(n + 1, 0);
        for &(a, b) in edges.iter() {
            key_offsets[split(a, b).0 as usize + 1] += 1;
        }
        for i in 0..n {
            key_offsets[i + 1] += key_offsets[i];
        }
        // The stub list is dead once the edge list exists; its first `n`
        // slots serve as the scatter cursors.
        let cursors = &mut stubs[..n];
        cursors.copy_from_slice(&key_offsets[..n]);
        key_slots.clear();
        key_slots.resize(edges.len(), (0, 0));
        for (index, &(a, b)) in edges.iter().enumerate() {
            let (low, high) = split(a, b);
            let slot = cursors[low as usize];
            cursors[low as usize] += 1;
            key_slots[slot as usize] = (high, to_u32(index));
        }
        bad.clear();
        for low in 0..n {
            let span = &mut key_slots[key_offsets[low] as usize..key_offsets[low + 1] as usize];
            span.sort_unstable();
            let mut i = 0;
            while i < span.len() {
                let high = span[i].0;
                let mut j = i + 1;
                while j < span.len() && span[j].0 == high {
                    j += 1;
                }
                if high == to_u32(low) || j - i > 1 {
                    bad.extend(span[i..j].iter().map(|&(_, index)| index));
                }
                i = j;
            }
        }
        // The old repair loop walked a forward cursor over *all* edges;
        // since a successful swap only ever installs good edges and
        // decrements other multiplicities, a good edge never turns bad and
        // the cursor only ever stopped at initially-bad indices. Visiting
        // the sorted bad list therefore reproduces the cursor's stop
        // sequence — and the RNG stream and swap choices — byte-identically,
        // without the O(E) scan.
        bad.sort_unstable();

        let key_offsets = &key_offsets[..];
        let key_slots = &key_slots[..];
        let key = |a: u32, b: u32| {
            let (low, high) = split(a, b);
            (u64::from(low) << 32) | u64::from(high)
        };
        // Live multiplicity of `(a, b)` = snapshot run length + swap delta.
        let current = |a: u32, b: u32, deltas: &PairDeltas| -> i64 {
            let (low, high) = split(a, b);
            let span = &key_slots
                [key_offsets[low as usize] as usize..key_offsets[low as usize + 1] as usize];
            let start = span.partition_point(|&(h, _)| h < high);
            let run = span[start..].partition_point(|&(h, _)| h == high);
            i64::from(to_u32(run)) + i64::from(deltas.get(&key(a, b)).copied().unwrap_or(0))
        };

        deltas.clear();
        let mut repaired = true;
        let mut budget = 200 * edges.len().max(1);
        'bad_edges: for &index in bad.iter() {
            let i = index as usize;
            loop {
                let (a, b) = edges[i];
                // The edge may have healed since the snapshot without being
                // visited: an earlier swap can overwrite this slot (as the
                // random partner) or drop this key's multiplicity below 2.
                if a != b && current(a, b, deltas) <= 1 {
                    break;
                }
                if budget == 0 {
                    repaired = false;
                    break 'bad_edges;
                }
                budget -= 1;
                let j = rng.gen_range(0..edges.len());
                if i == j {
                    continue;
                }
                let (c, d) = edges[j];
                // Propose (a, b), (c, d) -> (a, d), (c, b).
                if a == d || c == b {
                    continue;
                }
                let new_1 = key(a, d);
                let new_2 = key(c, b);
                if current(a, d, deltas) > 0 || current(c, b, deltas) > 0 || new_1 == new_2 {
                    continue;
                }
                // Apply the swap. Both installed edges are good (their keys
                // had live multiplicity 0 and distinct endpoints), so the
                // remaining bad-list entries stay the only repair candidates.
                *deltas.entry(key(a, b)).or_insert(0) -= 1;
                *deltas.entry(key(c, d)).or_insert(0) -= 1;
                *deltas.entry(new_1).or_insert(0) += 1;
                *deltas.entry(new_2).or_insert(0) += 1;
                edges[i] = (a, d);
                edges[j] = (c, b);
                break;
            }
        }
        if !repaired {
            continue;
        }

        // The repaired edge list is simple by construction; one counting-
        // sort pass builds the CSR adjacency directly from it (the
        // `build_from_pairs` validation re-checks simplicity and reports a
        // failed attempt rather than a corrupt graph if it were ever
        // violated).
        if graph.build_from_pairs(n, edges, false, threads) && graph.is_connected() {
            return Ok(());
        }
    }
    graph.reset(0);
    Err(GenerateTopologyError::GenerationFailed { attempts: ATTEMPTS })
}

/// Converts a node index to its `u32` stub form; network sizes are bounded
/// far below `u32::MAX`.
fn to_u32(value: usize) -> u32 {
    u32::try_from(value).expect("node index exceeds u32 range")
}

/// Watts–Strogatz small-world graph, patched to stay connected.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    rewire_probability: f64,
    rng: &mut R,
) -> Result<Graph, GenerateTopologyError> {
    require_nodes(n)?;
    if k % 2 != 0 {
        return Err(invalid(format!(
            "lattice neighbour count k = {k} must be even"
        )));
    }
    if k >= n {
        return Err(invalid(format!("k = {k} must be smaller than n = {n}")));
    }
    if !(0.0..=1.0).contains(&rewire_probability) {
        return Err(invalid(format!(
            "rewire probability {rewire_probability} outside [0, 1]"
        )));
    }

    const ATTEMPTS: usize = 50;
    for _ in 0..ATTEMPTS {
        // Start from the ring lattice (finalized in one pass; the rewiring
        // below mutates the CSR graph through its tombstone machinery).
        let mut builder = GraphBuilder::new(n);
        for i in 0..n {
            for offset in 1..=(k / 2) {
                let j = (i + offset) % n;
                builder.add_edge(NodeId::new(i), NodeId::new(j));
            }
        }
        let mut g = builder.finalize();
        // Rewire each lattice edge (i, i+offset) with the given probability.
        for i in 0..n {
            for offset in 1..=(k / 2) {
                let j = (i + offset) % n;
                if !rng.gen_bool(rewire_probability) {
                    continue;
                }
                // Pick a new endpoint distinct from i and not already adjacent.
                let candidate = NodeId::new(rng.gen_range(0..n));
                if candidate.index() == i || g.has_edge(NodeId::new(i), candidate) {
                    continue;
                }
                if g.remove_edge(NodeId::new(i), NodeId::new(j)) {
                    g.add_edge(NodeId::new(i), candidate);
                }
            }
        }
        if g.is_connected() {
            return Ok(g);
        }
    }
    Err(GenerateTopologyError::GenerationFailed { attempts: ATTEMPTS })
}

/// Barabási–Albert preferential attachment graph.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    attachment: usize,
    rng: &mut R,
) -> Result<Graph, GenerateTopologyError> {
    require_nodes(n)?;
    if attachment == 0 {
        return Err(invalid("attachment count must be at least 1"));
    }
    if attachment >= n {
        return Err(invalid(format!(
            "attachment count {attachment} must be smaller than n = {n}"
        )));
    }

    // The whole construction works on the flat edge/endpoint lists — the
    // graph itself is only materialised once, at the end. A new node's
    // edges can never duplicate (its targets are distinct and it had no
    // prior edges), so the deferred finalize sees a simple edge list.
    let mut builder = GraphBuilder::new(n);
    // Seed clique over the first `attachment + 1` nodes keeps the start
    // connected; pushing pairs in (i, j) order matches the edge iteration
    // order the endpoints list was historically seeded from.
    let seed = attachment + 1;
    // Degree-proportional sampling via a repeated-endpoints list.
    let mut endpoints: Vec<usize> = Vec::new();
    for i in 0..seed {
        for j in (i + 1)..seed {
            builder.add_edge(NodeId::new(i), NodeId::new(j));
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for new_node in seed..n {
        // BTreeSet: edge insertion order must be deterministic for a given
        // RNG seed (HashSet iteration order is randomized per process).
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0usize;
        while targets.len() < attachment && guard < 10_000 {
            guard += 1;
            let target = *endpoints
                .as_slice()
                .choose(rng)
                .expect("endpoint list is never empty after seeding");
            if target != new_node {
                targets.insert(target);
            }
        }
        for &target in &targets {
            builder.add_edge(NodeId::new(new_node), NodeId::new(target));
            endpoints.push(new_node);
            endpoints.push(target);
        }
    }
    let g = builder.finalize();
    debug_assert!(g.is_connected());
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scratch_clamp_releases_large_trial_capacity() {
        // Grow-then-shrink-then-grow: a pooled scratch that served a
        // million-node leg (synthesised here by reserving its footprint
        // directly, to keep the test fast) must shed that capacity after
        // the next small generation instead of pinning it in the worker
        // arena for the rest of the process.
        let mut scratch = RegularScratch::new();
        scratch.stubs.reserve(1_000_000);
        scratch.edges.reserve(500_000);
        scratch.key_offsets.reserve(1_000_001);
        scratch.key_slots.reserve(500_000);
        scratch.bad.reserve(500_000);
        scratch.deltas.reserve(500_000);
        let large_stub_capacity = scratch.stub_capacity();
        assert!(large_stub_capacity >= 1_000_000);

        let mut graph = Graph::new(0);
        let (n, degree) = (100, 8);
        random_regular_into_with(&mut graph, n, degree, &mut rng(3), &mut scratch).unwrap();
        assert!(graph.is_connected());
        let need = n * degree;
        assert!(
            scratch.stub_capacity() <= SCRATCH_CLAMP_FACTOR * need,
            "stub capacity {} not clamped to {need}-stub scale",
            scratch.stub_capacity()
        );
        assert!(scratch.edges.capacity() <= SCRATCH_CLAMP_FACTOR * (need / 2));
        assert!(scratch.key_offsets.capacity() <= SCRATCH_CLAMP_FACTOR * (need + 1));
        assert!(scratch.key_slots.capacity() <= SCRATCH_CLAMP_FACTOR * (need / 2));
        assert!(scratch.bad.capacity() <= SCRATCH_CLAMP_FACTOR * (need / 2));
        assert!(scratch.deltas.capacity() <= SCRATCH_CLAMP_FACTOR * (need / 2));

        // Growing again after the clamp still works, and a right-sized
        // large trial retains its capacity for reuse.
        random_regular_into_with(&mut graph, 2_000, degree, &mut rng(4), &mut scratch).unwrap();
        assert!(graph.is_connected());
        assert!(scratch.stub_capacity() >= 2_000 * degree);
        assert!(scratch.stub_capacity() <= SCRATCH_CLAMP_FACTOR * 2_000 * degree);
    }

    #[test]
    fn random_regular_into_matches_random_regular() {
        // The into-variant must consume the RNG identically and produce the
        // same overlay, even when regenerating into a dirty recycled graph.
        let fresh = random_regular(60, 4, &mut rng(9)).unwrap();
        let mut recycled = complete(10).unwrap();
        random_regular_into(&mut recycled, 60, 4, &mut rng(9)).unwrap();
        assert_eq!(fresh, recycled);

        // Errors clear the target graph.
        let mut target = complete(5).unwrap();
        assert!(random_regular_into(&mut target, 7, 3, &mut rng(1)).is_err());
        assert_eq!(target.node_count(), 0);
    }

    #[test]
    fn pooled_scratch_is_invisible_in_the_generated_overlay() {
        // A scratch dirtied by a previous generation — including one of a
        // *larger* overlay, the stale-buffer hazard — must not change the
        // result or the RNG consumption.
        let fresh = random_regular(60, 4, &mut rng(9)).unwrap();
        let mut scratch = RegularScratch::new();
        let mut graph = Graph::new(0);
        random_regular_into_with(&mut graph, 200, 6, &mut rng(3), &mut scratch).unwrap();
        random_regular_into_with(&mut graph, 60, 4, &mut rng(9), &mut scratch).unwrap();
        assert_eq!(fresh, graph);
        // And the RNG stream continues identically after either variant.
        let mut r1 = rng(9);
        let mut r2 = rng(9);
        random_regular(60, 4, &mut r1).unwrap();
        random_regular_into_with(&mut graph, 60, 4, &mut r2, &mut scratch).unwrap();
        assert_eq!(r1.gen_range(0..u64::MAX), r2.gen_range(0..u64::MAX));
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn line_and_ring_shapes() {
        let l = line(5).unwrap();
        assert_eq!(l.edge_count(), 4);
        assert_eq!(l.diameter(), Some(4));

        let r = ring(5).unwrap();
        assert_eq!(r.edge_count(), 5);
        assert_eq!(r.diameter(), Some(2));
    }

    #[test]
    fn ring_small_cases() {
        assert_eq!(ring(1).unwrap().edge_count(), 0);
        assert_eq!(ring(2).unwrap().edge_count(), 1);
        assert_eq!(ring(3).unwrap().edge_count(), 3);
    }

    #[test]
    fn complete_and_star_shapes() {
        let c = complete(6).unwrap();
        assert_eq!(c.edge_count(), 15);
        assert_eq!(c.diameter(), Some(1));

        let s = star(6).unwrap();
        assert_eq!(s.edge_count(), 5);
        assert_eq!(s.degree(NodeId::new(0)), 5);
        assert_eq!(s.diameter(), Some(2));
    }

    #[test]
    fn tree_shape() {
        let t = tree(7, 2).unwrap();
        assert_eq!(t.edge_count(), 6);
        assert!(t.is_connected());
        assert_eq!(t.degree(NodeId::new(0)), 2);
        assert_eq!(
            t.neighbors(NodeId::new(1)),
            &[NodeId::new(0), NodeId::new(3), NodeId::new(4)]
        );
    }

    #[test]
    fn tree_rejects_zero_arity() {
        assert!(matches!(
            tree(5, 0),
            Err(GenerateTopologyError::InvalidParameters { .. })
        ));
    }

    #[test]
    fn zero_nodes_rejected() {
        assert!(line(0).is_err());
        assert!(complete(0).is_err());
        assert!(erdos_renyi(0, 0.5, &mut rng(1)).is_err());
    }

    #[test]
    fn random_regular_produces_regular_connected_graphs() {
        let mut r = rng(11);
        for (n, d) in [(10, 3), (50, 4), (100, 8)] {
            let g = random_regular(n, d, &mut r).unwrap();
            assert!(g.is_connected());
            for node in g.nodes() {
                assert_eq!(
                    g.degree(node),
                    d,
                    "node {node} in {n}-node {d}-regular graph"
                );
            }
        }
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        let mut r = rng(1);
        assert!(random_regular(5, 3, &mut r).is_err(), "odd n*d");
        assert!(random_regular(5, 5, &mut r).is_err(), "degree >= n");
        assert!(random_regular(5, 0, &mut r).is_err(), "degree 0");
    }

    #[test]
    fn erdos_renyi_connected_and_sized() {
        let mut r = rng(2);
        let g = erdos_renyi(80, 0.1, &mut r).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.node_count(), 80);
        // Expected edges ≈ p * n(n-1)/2 = 316; allow a generous band.
        assert!(
            g.edge_count() > 150 && g.edge_count() < 550,
            "{}",
            g.edge_count()
        );
    }

    #[test]
    fn erdos_renyi_rejects_bad_probability() {
        let mut r = rng(3);
        assert!(erdos_renyi(10, 1.5, &mut r).is_err());
        assert!(erdos_renyi(10, -0.1, &mut r).is_err());
    }

    #[test]
    fn erdos_renyi_sparse_fails_gracefully() {
        let mut r = rng(4);
        let result = erdos_renyi(100, 0.0, &mut r);
        assert!(matches!(
            result,
            Err(GenerateTopologyError::GenerationFailed { .. })
        ));
    }

    #[test]
    fn watts_strogatz_connected_with_expected_edge_count() {
        let mut r = rng(5);
        let g = watts_strogatz(100, 6, 0.1, &mut r).unwrap();
        assert!(g.is_connected());
        // Rewiring never changes the edge count (only endpoints).
        assert_eq!(g.edge_count(), 100 * 3);
    }

    #[test]
    fn watts_strogatz_rejects_bad_parameters() {
        let mut r = rng(6);
        assert!(watts_strogatz(10, 3, 0.1, &mut r).is_err(), "odd k");
        assert!(watts_strogatz(10, 10, 0.1, &mut r).is_err(), "k >= n");
        assert!(watts_strogatz(10, 4, 1.2, &mut r).is_err(), "p > 1");
    }

    #[test]
    fn barabasi_albert_is_connected_and_skewed() {
        let mut r = rng(7);
        let g = barabasi_albert(200, 3, &mut r).unwrap();
        assert!(g.is_connected());
        let (min, max) = g.degree_bounds().unwrap();
        assert!(min >= 1);
        // Preferential attachment produces hubs far above the minimum degree.
        assert!(max >= 10, "expected a hub, max degree was {max}");
    }

    #[test]
    fn barabasi_albert_rejects_bad_parameters() {
        let mut r = rng(8);
        assert!(barabasi_albert(5, 0, &mut r).is_err());
        assert!(barabasi_albert(5, 5, &mut r).is_err());
    }

    #[test]
    fn enum_generate_dispatches_each_family() {
        let mut r = rng(9);
        let families = [
            Topology::RandomRegular { degree: 4 },
            Topology::ErdosRenyi {
                edge_probability: 0.15,
            },
            Topology::WattsStrogatz {
                k: 4,
                rewire_probability: 0.2,
            },
            Topology::BarabasiAlbert { attachment: 2 },
            Topology::Ring,
            Topology::Line,
            Topology::Complete,
            Topology::Star,
            Topology::Tree { arity: 3 },
        ];
        for family in families {
            let g = family
                .generate(40, &mut r)
                .unwrap_or_else(|e| panic!("{family}: {e}"));
            assert_eq!(g.node_count(), 40);
            assert!(g.is_connected(), "{family} must be connected");
        }
    }

    #[test]
    fn generation_is_deterministic_under_a_fixed_seed() {
        let g1 = Topology::RandomRegular { degree: 6 }
            .generate(60, &mut rng(42))
            .unwrap();
        let g2 = Topology::RandomRegular { degree: 6 }
            .generate(60, &mut rng(42))
            .unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Topology::Ring.to_string(), "ring");
        assert_eq!(
            Topology::RandomRegular { degree: 8 }.to_string(),
            "random-regular(d=8)"
        );
        assert!(Topology::WattsStrogatz {
            k: 4,
            rewire_probability: 0.1
        }
        .to_string()
        .contains("watts-strogatz"));
    }

    #[test]
    fn error_display() {
        let err = GenerateTopologyError::InvalidParameters { reason: "x".into() };
        assert!(err.to_string().contains("invalid"));
        let err = GenerateTopologyError::GenerationFailed { attempts: 3 };
        assert!(err.to_string().contains('3'));
    }
}
