//! Per-worker allocation reuse across simulation trials.
//!
//! Every experiment trial used to build its world from scratch: an overlay
//! [`Graph`] (one `Vec` per node), a node-state vector, a fresh event-queue
//! time-wheel, zeroed [`Metrics`] and hot-field lanes — and drop the lot at the
//! end of the trial. Over a multi-thousand-trial sweep that rebuild churn
//! dominates the allocator profile while the *shapes* of consecutive trials
//! are identical (same `n`, same degree, same protocol).
//!
//! A [`TrialArena`] is the fix: each [`TrialRunner`](crate::TrialRunner)
//! worker owns one arena and hands it to every trial it executes
//! ([`TrialRunner::run_with_arena`](crate::TrialRunner::run_with_arena)).
//! Finished simulations return their storage to the arena
//! ([`Simulator::into_parts_in`](crate::Simulator::into_parts_in)); the
//! next trial checks the same buffers out again, *reset* rather than
//! reallocated. Because every checkout fully re-zeroes the storage
//! (`Graph::reset`, `Metrics::reset`, `HotState::reset`, cleared queue and
//! node vectors), a reused arena is observationally identical to a fresh
//! one — the arena-reuse determinism suite asserts byte-identical rows.
//!
//! The event-queue and node-vector pools are type-erased (`Box<dyn Any>`)
//! because their element types are protocol-specific; a checkout under a
//! different type simply falls back to a fresh allocation. Arenas are
//! intentionally *not* `Send`: each worker thread builds its own and never
//! shares it.

use crate::graph::Graph;
use crate::hot::HotState;
use crate::metrics::Metrics;
use crate::topology::RegularScratch;
use crate::wheel::{TimeWheel, WheelItem};
use std::any::Any;

/// Reusable per-worker storage for simulation trials.
///
/// See the [module documentation](self) for the lifecycle. All checkouts
/// return storage that is indistinguishable from freshly allocated (same
/// contents, possibly more capacity); all returns accept storage in any
/// state and clear what must be cleared.
#[derive(Debug, Default)]
pub struct TrialArena {
    graph: Option<Graph>,
    metrics: Option<Metrics>,
    hot: Option<HotState>,
    /// Cleared event-queue time-wheel of the previous trial, type-erased
    /// (`TimeWheel<Event<M>>` for whatever `M` ran last).
    queue: Option<Box<dyn Any>>,
    /// Cleared node-state vector of the previous trial, type-erased
    /// (`Vec<N>` for whatever protocol ran last).
    nodes: Option<Box<dyn Any>>,
    /// Scratch buffers of the configuration-model overlay generator.
    regular_scratch: Option<RegularScratch>,
    /// Opaque per-worker extension slot for harness-level caches (e.g. the
    /// group-key cache in `fnp-core`) that live upstream of this crate.
    extension: Option<Box<dyn Any>>,
}

impl TrialArena {
    /// Creates an empty arena. The first trial allocates; later trials
    /// reuse.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a graph of `n` isolated nodes, reusing the pooled
    /// adjacency storage when available.
    #[must_use]
    pub fn graph(&mut self, n: usize) -> Graph {
        match self.graph.take() {
            Some(mut graph) => {
                graph.reset(n);
                graph
            }
            None => Graph::new(n),
        }
    }

    /// Returns a graph to the pool for the next checkout.
    pub fn store_graph(&mut self, graph: Graph) {
        self.graph = Some(graph);
    }

    /// Checks out zeroed metrics for an `n`-node run, reusing pooled
    /// counter storage when available.
    #[must_use]
    pub fn metrics(&mut self, n: usize) -> Metrics {
        match self.metrics.take() {
            Some(mut metrics) => {
                metrics.reset(n);
                metrics
            }
            None => Metrics::new(n),
        }
    }

    /// Returns metrics to the pool. Call this once a trial has finished
    /// aggregating (the metrics are reset at the next checkout, so any
    /// content is fine).
    pub fn recycle_metrics(&mut self, metrics: Metrics) {
        self.metrics = Some(metrics);
    }

    /// Checks out zeroed hot-state lanes for `n` nodes.
    #[must_use]
    pub fn hot(&mut self, n: usize) -> HotState {
        match self.hot.take() {
            Some(mut hot) => {
                hot.reset(n);
                hot
            }
            None => HotState::new(n),
        }
    }

    /// Returns hot-state lanes to the pool.
    pub fn store_hot(&mut self, hot: HotState) {
        self.hot = Some(hot);
    }

    /// Checks out an empty event-queue time-wheel, reusing the pooled one
    /// when the previous trial used the same event type. The simulator
    /// re-arms the wheel (bucket width, window) for its latency model
    /// before use, so a pooled wheel only contributes its allocations.
    pub(crate) fn take_queue<T: WheelItem + 'static>(&mut self) -> TimeWheel<T> {
        match self.queue.take() {
            Some(boxed) => match boxed.downcast::<TimeWheel<T>>() {
                Ok(wheel) => {
                    debug_assert_eq!(wheel.len(), 0, "pooled wheels are stored cleared");
                    *wheel
                }
                Err(_) => TimeWheel::empty(),
            },
            None => TimeWheel::empty(),
        }
    }

    /// Returns an event-queue time-wheel to the pool (cleared here; any
    /// events still queued — e.g. after an early-stopped run — are
    /// dropped).
    pub(crate) fn store_queue<T: WheelItem + 'static>(&mut self, mut queue: TimeWheel<T>) {
        queue.clear();
        self.queue = Some(Box::new(queue));
    }

    /// Checks out an empty node-state vector, reusing the pooled allocation
    /// when the previous trial ran the same protocol type.
    #[must_use]
    pub fn take_nodes<T: 'static>(&mut self) -> Vec<T> {
        take_typed_vec(&mut self.nodes)
    }

    /// Returns a node-state vector to the pool (cleared here).
    pub fn store_nodes<T: 'static>(&mut self, mut nodes: Vec<T>) {
        nodes.clear();
        self.nodes = Some(Box::new(nodes));
    }

    /// Checks out the pooled scratch buffers of the configuration-model
    /// overlay generator (see
    /// [`random_regular_into_with`](crate::topology::random_regular_into_with)).
    /// The generator clears them before use, so a dirty checkout is
    /// indistinguishable from [`RegularScratch::new`].
    #[must_use]
    pub fn regular_scratch(&mut self) -> RegularScratch {
        self.regular_scratch.take().unwrap_or_default()
    }

    /// Returns overlay-generator scratch buffers to the pool.
    pub fn store_regular_scratch(&mut self, scratch: RegularScratch) {
        self.regular_scratch = Some(scratch);
    }

    /// Checks out the opaque per-worker extension slot.
    ///
    /// Higher layers (the `fnp-core` harness) pool caches here whose types
    /// this crate cannot name — e.g. derived group-key material reused
    /// across trials. The caller downcasts; a `None` or a mismatched type
    /// simply means "build a fresh cache".
    #[must_use]
    pub fn take_extension(&mut self) -> Option<Box<dyn Any>> {
        self.extension.take()
    }

    /// Returns the opaque extension slot contents to the pool.
    pub fn store_extension(&mut self, extension: Box<dyn Any>) {
        self.extension = Some(extension);
    }
}

/// Takes the pooled vector out of `slot` if it holds a `Vec<T>`; otherwise
/// (empty pool or a different element type) returns a fresh vector.
fn take_typed_vec<T: 'static>(slot: &mut Option<Box<dyn Any>>) -> Vec<T> {
    match slot.take() {
        Some(boxed) => match boxed.downcast::<Vec<T>>() {
            Ok(vec) => {
                debug_assert!(vec.is_empty(), "pooled vectors are stored cleared");
                *vec
            }
            Err(_) => Vec::new(),
        },
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn graph_checkout_is_clean_and_reuses_storage() {
        let mut arena = TrialArena::new();
        let mut graph = arena.graph(3);
        graph.add_edge(NodeId::new(0), NodeId::new(1));
        arena.store_graph(graph);

        let reused = arena.graph(3);
        assert_eq!(reused.node_count(), 3);
        assert_eq!(reused.edge_count(), 0);
        assert_eq!(reused, Graph::new(3));
    }

    #[test]
    fn metrics_checkout_is_zeroed() {
        let mut arena = TrialArena::new();
        let mut metrics = arena.metrics(2);
        metrics.record_send("x", 10);
        metrics.record_delivery(NodeId::new(1), 5);
        arena.recycle_metrics(metrics);

        let reused = arena.metrics(4);
        assert_eq!(reused.messages_sent, 0);
        assert_eq!(reused.delivered_count(), 0);
        assert_eq!(reused.delivered_at.len(), 4);
        assert_eq!(reused.messages_of_kind("x"), 0);
        assert!(reused.messages_by_kind().is_empty());
    }

    #[test]
    fn hot_checkout_is_zeroed() {
        let mut arena = TrialArena::new();
        let mut hot = arena.hot(2);
        hot.set_seen(NodeId::new(0));
        arena.store_hot(hot);
        let reused = arena.hot(3);
        assert_eq!(reused, HotState::new(3));
    }

    #[test]
    fn node_pool_reuses_matching_type_and_drops_mismatches() {
        let mut arena = TrialArena::new();
        let mut nodes: Vec<u64> = arena.take_nodes();
        nodes.extend([1, 2, 3]);
        let capacity = nodes.capacity();
        arena.store_nodes(nodes);

        // Same type: the allocation comes back (cleared).
        let reused: Vec<u64> = arena.take_nodes();
        assert!(reused.is_empty());
        assert_eq!(reused.capacity(), capacity);
        arena.store_nodes(reused);

        // Different type: fresh vector, no panic.
        let other: Vec<String> = arena.take_nodes();
        assert!(other.is_empty());
    }

    #[test]
    fn scratch_and_extension_pools_round_trip() {
        let mut arena = TrialArena::new();
        // Scratch: a dirty store comes back as-is (the generator clears it).
        let scratch = arena.regular_scratch();
        arena.store_regular_scratch(scratch);
        let _again = arena.regular_scratch();

        // Extension slot: opaque round trip with caller-side downcasting.
        assert!(arena.take_extension().is_none());
        arena.store_extension(Box::new(vec![1u8, 2, 3]));
        let boxed = arena.take_extension().expect("stored extension");
        assert_eq!(*boxed.downcast::<Vec<u8>>().unwrap(), vec![1, 2, 3]);
        assert!(arena.take_extension().is_none(), "take empties the slot");
    }

    #[test]
    fn queue_pool_behaves_like_node_pool() {
        #[derive(Debug)]
        struct Tick(u64);
        impl WheelItem for Tick {
            fn key(&self) -> (u64, u64) {
                (self.0, 0)
            }
        }
        #[derive(Debug)]
        struct Tock;
        impl WheelItem for Tock {
            fn key(&self) -> (u64, u64) {
                (0, 0)
            }
        }

        let mut arena = TrialArena::new();
        let mut queue: TimeWheel<Tick> = arena.take_queue();
        queue.reset(10);
        queue.push(Tick(9));
        arena.store_queue(queue);
        // Same event type: the wheel comes back, cleared.
        let mut reused: TimeWheel<Tick> = arena.take_queue();
        assert_eq!(reused.len(), 0);
        assert!(reused.pop().is_none());
        arena.store_queue(reused);
        // Different event type: fresh wheel, no panic.
        let mut mismatched: TimeWheel<Tock> = arena.take_queue();
        assert_eq!(mismatched.len(), 0);
        assert!(mismatched.pop().is_none());
    }
}
