//! Node churn: temporary outages injected into a simulation run.
//!
//! Peer-to-peer overlays are never static — nodes crash, disconnect and
//! rejoin — and the paper's protocol has to keep its delivery guarantee
//! (Phase 3) and its privacy floor under such churn. The schedule defined
//! here is deliberately simple and fully deterministic: a set of
//! per-node outage intervals fixed before the run starts. While a node is
//! down it neither receives messages nor fires timers; messages addressed to
//! it during an outage are dropped (and counted under the
//! `"dropped-offline"` metric counter), exactly like a crashed TCP peer.
//!
//! Churn is attached to a run through [`crate::sim::SimConfig::churn`]; an
//! empty schedule (the default) has zero overhead.

use crate::node::NodeId;
use crate::time::SimTime;

/// One outage: `node` is unreachable during `[from, until)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeOutage {
    /// The affected node.
    pub node: NodeId,
    /// First instant at which the node is down.
    pub from: SimTime,
    /// First instant at which the node is back up (exclusive end).
    pub until: SimTime,
}

impl NodeOutage {
    /// Whether the outage covers time `at`.
    pub fn covers(&self, at: SimTime) -> bool {
        at >= self.from && at < self.until
    }

    /// Length of the outage.
    pub fn duration(&self) -> SimTime {
        self.until.saturating_sub(self.from)
    }
}

/// A deterministic churn schedule: a collection of node outages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnSchedule {
    outages: Vec<NodeOutage>,
}

impl ChurnSchedule {
    /// An empty schedule (no churn).
    pub fn none() -> Self {
        Self::default()
    }

    /// A schedule built from explicit outages.
    pub fn from_outages(outages: impl IntoIterator<Item = NodeOutage>) -> Self {
        Self {
            outages: outages.into_iter().collect(),
        }
    }

    /// Adds one outage.
    pub fn add(&mut self, node: NodeId, from: SimTime, until: SimTime) -> &mut Self {
        self.outages.push(NodeOutage { node, from, until });
        self
    }

    /// A schedule taking a random `fraction` of the `n` nodes down for
    /// `[from, until)`, excluding the nodes in `protected` (typically the
    /// broadcast originator, whose crash would make delivery trivially
    /// impossible).
    pub fn random_fraction<R: rand::Rng + ?Sized>(
        n: usize,
        fraction: f64,
        from: SimTime,
        until: SimTime,
        protected: &[NodeId],
        rng: &mut R,
    ) -> Self {
        use rand::seq::SliceRandom;
        let mut candidates: Vec<NodeId> = (0..n)
            .map(NodeId::new)
            .filter(|node| !protected.contains(node))
            .collect();
        candidates.shuffle(rng);
        // `fraction` is clamped into [0, 1], so the product lies in [0, n]:
        // non-negative and exactly representable for any feasible overlay.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let count = ((fraction.clamp(0.0, 1.0)) * n as f64).round() as usize;
        let outages = candidates
            .into_iter()
            .take(count)
            .map(|node| NodeOutage { node, from, until })
            .collect();
        Self { outages }
    }

    /// Number of scheduled outages.
    pub fn len(&self) -> usize {
        self.outages.len()
    }

    /// Whether the schedule contains no outages.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// The scheduled outages.
    pub fn outages(&self) -> &[NodeOutage] {
        &self.outages
    }

    /// Whether `node` is down at time `at`.
    pub fn is_down(&self, node: NodeId, at: SimTime) -> bool {
        self.outages
            .iter()
            .any(|outage| outage.node == node && outage.covers(at))
    }

    /// The distinct nodes that suffer at least one outage.
    pub fn affected_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.outages.iter().map(|o| o.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn outage_covers_its_half_open_interval() {
        let outage = NodeOutage {
            node: NodeId::new(1),
            from: 10,
            until: 20,
        };
        assert!(!outage.covers(9));
        assert!(outage.covers(10));
        assert!(outage.covers(19));
        assert!(!outage.covers(20));
        assert_eq!(outage.duration(), 10);
    }

    #[test]
    fn schedule_answers_is_down_per_node_and_time() {
        let mut schedule = ChurnSchedule::none();
        schedule
            .add(NodeId::new(2), 100, 200)
            .add(NodeId::new(2), 300, 400);
        schedule.add(NodeId::new(5), 0, 50);
        assert!(schedule.is_down(NodeId::new(2), 150));
        assert!(!schedule.is_down(NodeId::new(2), 250));
        assert!(schedule.is_down(NodeId::new(2), 350));
        assert!(schedule.is_down(NodeId::new(5), 0));
        assert!(!schedule.is_down(NodeId::new(3), 150));
        assert_eq!(schedule.len(), 3);
        assert_eq!(
            schedule.affected_nodes(),
            vec![NodeId::new(2), NodeId::new(5)]
        );
    }

    #[test]
    fn empty_schedule_reports_everyone_up() {
        let schedule = ChurnSchedule::none();
        assert!(schedule.is_empty());
        assert!(!schedule.is_down(NodeId::new(0), 0));
        assert!(schedule.affected_nodes().is_empty());
    }

    #[test]
    fn random_fraction_spares_protected_nodes() {
        let mut rng = StdRng::seed_from_u64(3);
        let protected = [NodeId::new(0), NodeId::new(1)];
        let schedule = ChurnSchedule::random_fraction(50, 0.3, 10, 100, &protected, &mut rng);
        assert_eq!(schedule.len(), 15);
        for node in &protected {
            assert!(!schedule.affected_nodes().contains(node));
        }
        for outage in schedule.outages() {
            assert_eq!(outage.from, 10);
            assert_eq!(outage.until, 100);
        }
    }

    #[test]
    fn from_outages_roundtrips() {
        let outages = vec![
            NodeOutage {
                node: NodeId::new(1),
                from: 0,
                until: 10,
            },
            NodeOutage {
                node: NodeId::new(2),
                from: 5,
                until: 15,
            },
        ];
        let schedule = ChurnSchedule::from_outages(outages.clone());
        assert_eq!(schedule.outages(), outages.as_slice());
    }
}
