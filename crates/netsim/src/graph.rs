//! Undirected graphs representing the peer-to-peer overlay.
//!
//! The overlay of a blockchain network is an undirected graph: an edge means
//! the two peers maintain a TCP connection and relay transactions to each
//! other. [`Graph`] stores the adjacency structure and offers the handful of
//! graph algorithms the protocols and adversary estimators need: breadth-
//! first search, connectivity, eccentricity/diameter, shortest-path trees
//! and degree statistics.
//!
//! # CSR layout
//!
//! Adjacency lives in a flat compressed-sparse-row layout instead of one
//! heap `Vec` per node: `offsets` gives each node a contiguous *span* of
//! the shared `targets` array, and the live prefix of every span is the
//! node's sorted neighbour list. Neighbour iteration is one pointer plus a
//! length — no per-node heap indirection — which turns the large-n BFS
//! sweeps from latency-bound pointer chases into bandwidth-bound scans.
//!
//! Graphs are built through a [`GraphBuilder`] (or the pooled equivalent
//! the topology generators use): edges accumulate in a flat pair list and
//! one *finalize* pass scatters them into span slots with a counting sort
//! by source, then sorts each span. Mutation after finalize still works:
//! `remove_edge` compacts the live prefix and marks the freed tail slot in
//! a per-edge *tombstone* bitmap, and `add_edge` reuses a tombstoned slot
//! when both endpoints have one (falling back to a full rebuild that
//! leaves every span some slack). `reset` drops all spans and tombstones.
//!
//! Because the live prefixes stay sorted, neighbour iteration order — and
//! therefore every downstream simulation event — is identical to the old
//! `Vec<Vec<NodeId>>` representation; the CSR reference suite checks the
//! two representations operation-for-operation.

use crate::bits::BitSet;
use crate::node::NodeId;
use std::collections::VecDeque;
use std::fmt;

/// Largest node count for which [`Graph::diameter_estimate`] still runs the
/// exact all-pairs-BFS computation.
///
/// Below this threshold (which covers every network size in the paper's
/// evaluation) the reported diameter is byte-identical to the historical
/// exact output; above it, a double-sweep estimate is used, because exact
/// O(n·(n+m)) is a multi-hour computation at n = 10⁶.
pub const EXACT_DIAMETER_MAX_NODES: usize = 2048;

/// Number of deterministic probe nodes for the sampled-eccentricity
/// refinement of [`Graph::diameter_estimate`].
const DIAMETER_ECCENTRICITY_SAMPLES: usize = 8;

/// Smallest BFS frontier worth splitting across worker threads; below this
/// the spawn/join overhead dominates the expansion work.
const PARALLEL_FRONTIER_MIN: usize = 4096;

/// Smallest span-sort workload worth splitting across worker threads.
const PARALLEL_SORT_MIN_SLOTS: usize = 1 << 12;

/// Which algorithm produced a [`Graph::diameter_estimate`] figure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiameterEstimator {
    /// All-pairs BFS: the figure is the exact diameter.
    Exact,
    /// Double-sweep (2-BFS) plus sampled-eccentricity refinement: the
    /// figure is a lower bound on the diameter — exact on trees, and
    /// typically exact or off by one on the random overlay families the
    /// experiments use.
    DoubleSweep,
}

impl fmt::Display for DiameterEstimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiameterEstimator::Exact => write!(f, "exact"),
            DiameterEstimator::DoubleSweep => write!(f, "double-sweep"),
        }
    }
}

/// Converts a CSR slot count or degree to its stored `u32` form.
///
/// The largest experiment leg (10⁶ nodes, degree 8) uses ~8·10⁶ slots, so
/// `u32` spans are ample; the check guards against silent truncation if a
/// future workload outgrows them.
fn to_u32(value: usize) -> u32 {
    u32::try_from(value).expect("CSR slot index exceeds u32 range")
}

/// An undirected simple graph over nodes `0..n`.
///
/// Self-loops and parallel edges are rejected at insertion time; neighbour
/// lists are kept sorted so that neighbour iteration order is deterministic,
/// which in turn keeps whole simulations reproducible under a fixed seed.
/// See the [module documentation](self) for the flat CSR representation.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Span starts: node `i` owns slots `offsets[i]..offsets[i+1]` of
    /// `targets`. Length `n + 1`.
    offsets: Vec<u32>,
    /// Live neighbour count per node: the sorted live prefix of the span.
    live: Vec<u32>,
    /// Flat neighbour storage, all spans back to back.
    targets: Vec<NodeId>,
    /// Tombstone bitmap over `targets` slots: a set bit marks a dead slot
    /// (freed by `remove_edge`, or span slack left by a rebuild). Dead
    /// slots always form the tail of their span.
    tombstones: BitSet,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            live: vec![0; n],
            targets: Vec::new(),
            tombstones: BitSet::new(0),
            edge_count: 0,
        }
    }

    /// Resets the graph to `n` isolated nodes, reusing the flat CSR
    /// allocations of the previous population (the cheap path of a
    /// [`TrialArena`](crate::TrialArena) checkout). All spans and their
    /// tombstones are dropped — this is where tombstoned slots from a
    /// churned trial are compacted away.
    ///
    /// The result is indistinguishable from `Graph::new(n)`.
    pub fn reset(&mut self, n: usize) {
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        self.live.clear();
        self.live.resize(n, 0);
        self.targets.clear();
        self.tombstones.reset(0);
        self.edge_count = 0;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.live.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// The span bounds of `node`: (start slot, live length, span capacity).
    fn span(&self, node: usize) -> (usize, usize, usize) {
        let start = self.offsets[node] as usize;
        let cap = self.offsets[node + 1] as usize - start;
        (start, self.live[node] as usize, cap)
    }

    /// Returns `true` if the edge `{a, b}` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a.index() >= self.node_count() {
            return false;
        }
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// Returns `true` if the edge was inserted, `false` if it already existed
    /// or is a self-loop.
    ///
    /// When both endpoints' spans have a tombstoned slot the edge is
    /// inserted in place; otherwise the CSR arrays are rebuilt with slack so
    /// that subsequent insertions amortise.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert!(
            a.index() < self.node_count() && b.index() < self.node_count(),
            "edge endpoints {a:?}, {b:?} out of range for graph of {} nodes",
            self.node_count()
        );
        if a == b || self.has_edge(a, b) {
            return false;
        }
        let (_, live_a, cap_a) = self.span(a.index());
        let (_, live_b, cap_b) = self.span(b.index());
        if live_a < cap_a && live_b < cap_b {
            self.insert_into_span(a.index(), b);
            self.insert_into_span(b.index(), a);
            self.edge_count += 1;
        } else {
            let mut pairs = self.collect_pairs();
            pairs.push((to_u32(a.index()), to_u32(b.index())));
            // `build_from_pairs` recounts the edges (including the new one).
            let built = self.build_from_pairs(self.node_count(), &pairs, true, 1);
            debug_assert!(built, "rebuild of a validated edge set cannot fail");
        }
        true
    }

    /// Inserts `value` into the sorted live prefix of `node`'s span,
    /// consuming one tombstoned slot. The caller has checked capacity.
    fn insert_into_span(&mut self, node: usize, value: NodeId) {
        let (start, len, cap) = self.span(node);
        debug_assert!(len < cap, "insert_into_span requires a free slot");
        debug_assert!(
            self.tombstones.get(start + len),
            "the slot past the live prefix must be tombstoned"
        );
        let span = &mut self.targets[start..start + len + 1];
        let pos = span[..len].binary_search(&value).unwrap_err();
        span.copy_within(pos..len, pos + 1);
        span[pos] = value;
        self.live[node] += 1;
        self.tombstones.clear(start + len);
    }

    /// Removes the undirected edge `{a, b}` if present; returns whether an
    /// edge was removed. The freed slot of each endpoint's span is
    /// tombstoned (and reused by a later [`Graph::add_edge`]).
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if !self.has_edge(a, b) {
            return false;
        }
        self.remove_from_span(a.index(), b);
        self.remove_from_span(b.index(), a);
        self.edge_count -= 1;
        true
    }

    /// Removes `value` from the sorted live prefix of `node`'s span,
    /// tombstoning the freed tail slot. The caller has checked presence.
    fn remove_from_span(&mut self, node: usize, value: NodeId) {
        let (start, len, _) = self.span(node);
        let span = &mut self.targets[start..start + len];
        let pos = span
            .binary_search(&value)
            .expect("remove_from_span requires a present edge");
        span.copy_within(pos + 1..len, pos);
        self.live[node] -= 1;
        self.tombstones.set(start + len - 1);
    }

    /// Returns the sorted neighbour list of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let (start, len, _) = self.span(node.index());
        &self.targets[start..start + len]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.live[node.index()] as usize
    }

    /// Iterator over all undirected edges, each reported once with
    /// `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(|a| {
            self.neighbors(a)
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// The current edge set as flat index pairs (each edge once, `a < b`).
    fn collect_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::with_capacity(self.edge_count + 1);
        for (a, b) in self.edges() {
            pairs.push((to_u32(a.index()), to_u32(b.index())));
        }
        pairs
    }

    /// Rebuilds the CSR arrays from an edge list via counting sort by
    /// source, reusing the existing allocations.
    ///
    /// Each pair is one undirected edge; order and orientation are
    /// irrelevant. With `slack`, every span gets ~50% spare tombstoned
    /// capacity so later `add_edge` calls amortise; without it the layout
    /// is exact (the finalize path of the topology generators). `threads`
    /// parallelises the per-span sort; the sorted result is identical at
    /// any thread count.
    ///
    /// Returns `false` (leaving the graph empty over `n` nodes) if the
    /// list contains a self-loop or duplicate edge.
    pub(crate) fn build_from_pairs(
        &mut self,
        n: usize,
        pairs: &[(u32, u32)],
        slack: bool,
        threads: usize,
    ) -> bool {
        self.reset(n);
        // Pass 1: count live degrees.
        for &(a, b) in pairs {
            self.live[a as usize] += 1;
            self.live[b as usize] += 1;
        }
        // Span capacities (with optional slack) -> prefix-summed offsets.
        let mut total = 0usize;
        for i in 0..n {
            self.offsets[i] = to_u32(total);
            let deg = self.live[i] as usize;
            let cap = if slack { deg + deg / 2 + 1 } else { deg };
            total += cap;
        }
        self.offsets[n] = to_u32(total);
        self.targets.clear();
        self.targets.resize(total, NodeId::new(0));
        // Pass 2: scatter both directions of every edge, advancing the
        // offsets as cursors, then rewind them by the live counts.
        for &(a, b) in pairs {
            let (a, b) = (a as usize, b as usize);
            self.targets[self.offsets[a] as usize] = NodeId::new(b);
            self.offsets[a] += 1;
            self.targets[self.offsets[b] as usize] = NodeId::new(a);
            self.offsets[b] += 1;
        }
        for i in 0..n {
            self.offsets[i] -= self.live[i];
        }
        // Pass 3: sort each live span (optionally across threads).
        sort_spans(&self.offsets, &self.live, &mut self.targets, threads);
        // Validate simplicity: sorted spans make duplicates adjacent.
        for i in 0..n {
            let (start, len, _) = self.span(i);
            let span = &self.targets[start..start + len];
            if span.windows(2).any(|w| w[0] == w[1]) || span.binary_search(&NodeId::new(i)).is_ok()
            {
                self.reset(n);
                return false;
            }
        }
        // Tombstone the slack tail of every span.
        self.tombstones.reset(total);
        if slack {
            for i in 0..n {
                let (start, len, cap) = self.span(i);
                for slot in start + len..start + cap {
                    self.tombstones.set(slot);
                }
            }
        }
        self.edge_count = pairs.len();
        true
    }

    /// Breadth-first distances (in hops) from `source`.
    ///
    /// Unreachable nodes get `None`.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<usize>> {
        let mut scratch = BfsScratch::default();
        self.bfs_levels(source, 1, &mut scratch);
        scratch
            .dist
            .iter()
            .map(|&d| (d != UNREACHED).then_some(d as usize))
            .collect()
    }

    /// Breadth-first shortest-path tree rooted at `source`: for every node,
    /// the predecessor on one shortest path (the root and unreachable nodes
    /// get `None`).
    pub fn bfs_tree(&self, source: NodeId) -> Vec<Option<NodeId>> {
        let mut parent = vec![None; self.node_count()];
        let mut visited = BitSet::new(self.node_count());
        let mut queue = VecDeque::new();
        visited.set(source.index());
        queue.push_back(source);
        while let Some(current) = queue.pop_front() {
            for &next in self.neighbors(current) {
                if !visited.set(next.index()) {
                    parent[next.index()] = Some(current);
                    queue.push_back(next);
                }
            }
        }
        parent
    }

    /// Returns `true` if every node is reachable from every other node.
    ///
    /// The empty graph and the single-node graph are considered connected.
    pub fn is_connected(&self) -> bool {
        if self.node_count() <= 1 {
            return true;
        }
        let mut scratch = BfsScratch::default();
        let (reached, _) = self.bfs_levels(NodeId::new(0), 1, &mut scratch);
        reached == self.node_count()
    }

    /// Eccentricity of `node`: the maximum BFS distance to any reachable
    /// node. Returns `None` if some node is unreachable.
    pub fn eccentricity(&self, node: NodeId) -> Option<usize> {
        let mut scratch = BfsScratch::default();
        self.eccentricity_with(node, &mut scratch)
    }

    fn eccentricity_with(&self, node: NodeId, scratch: &mut BfsScratch) -> Option<usize> {
        let (reached, levels) = self.bfs_levels(node, 1, scratch);
        (reached == self.node_count()).then_some(levels)
    }

    /// Graph diameter: the maximum eccentricity over all nodes, or `None` if
    /// the graph is disconnected (or empty).
    ///
    /// Runs one BFS per node — O(n·(n+m)) — which is fine for the network
    /// sizes the paper's evaluation uses (≈ 1 000 peers). The BFS scratch
    /// (distance lane, visited bitset, frontier buffers) is shared across
    /// all n sweeps.
    pub fn diameter(&self) -> Option<usize> {
        if self.node_count() == 0 {
            return None;
        }
        let mut scratch = BfsScratch::default();
        let mut diameter = 0usize;
        for node in self.nodes() {
            diameter = diameter.max(self.eccentricity_with(node, &mut scratch)?);
        }
        Some(diameter)
    }

    /// Graph diameter, or a tight lower-bound estimate when the graph is
    /// too large for the exact algorithm; reports which estimator ran.
    ///
    /// Up to [`EXACT_DIAMETER_MAX_NODES`] nodes this is exactly
    /// [`Graph::diameter`] (one BFS per node). Beyond that it switches to a
    /// double sweep — BFS from node 0 to find a peripheral node `u`, then
    /// BFS from `u` — refined by the eccentricities of the second sweep's
    /// endpoint and a deterministic stride of probe nodes. The result is a
    /// lower bound on the true diameter at O(1) BFS passes instead of
    /// O(n), and `None` for disconnected (or empty) graphs either way.
    pub fn diameter_estimate(&self) -> Option<(usize, DiameterEstimator)> {
        self.diameter_estimate_with_threads(1)
    }

    /// [`Graph::diameter_estimate`] with the double-sweep BFS frontiers
    /// split across `threads` worker threads (level-synchronous expansion,
    /// deterministic per-chunk merge order).
    ///
    /// The reported figure is byte-identical at any thread count: frontier
    /// chunks only *read* the shared visited set during expansion, and the
    /// merge consumes their candidate buffers in chunk order, which
    /// reproduces the sequential discovery order exactly. `threads == 0`
    /// and `threads == 1` both mean sequential; the exact small-n path
    /// ignores the thread count.
    pub fn diameter_estimate_with_threads(
        &self,
        threads: usize,
    ) -> Option<(usize, DiameterEstimator)> {
        let n = self.node_count();
        if n == 0 {
            return None;
        }
        if n <= EXACT_DIAMETER_MAX_NODES {
            return self.diameter().map(|d| (d, DiameterEstimator::Exact));
        }
        let mut scratch = BfsScratch::default();
        // Double sweep: the farthest node from an arbitrary start sits on
        // the periphery, so its eccentricity approximates the diameter
        // from below (exactly, on trees).
        let (u, _) = self.farthest_from(NodeId::new(0), threads, &mut scratch)?;
        let (w, mut best) = self.farthest_from(u, threads, &mut scratch)?;
        // Sampled-eccentricity refinement: more sources can only raise the
        // lower bound. The probe set (second sweep's endpoint plus a fixed
        // stride over node indices) is deterministic, so repeated calls on
        // the same graph report the same figure.
        let stride = (n / DIAMETER_ECCENTRICITY_SAMPLES).max(1);
        for probe in std::iter::once(w).chain((0..n).step_by(stride).map(NodeId::new)) {
            let (_, eccentricity) = self.farthest_from(probe, threads, &mut scratch)?;
            best = best.max(eccentricity);
        }
        Some((best, DiameterEstimator::DoubleSweep))
    }

    /// The node farthest from `source` (lowest index on ties) and its BFS
    /// distance, or `None` if any node is unreachable.
    fn farthest_from(
        &self,
        source: NodeId,
        threads: usize,
        scratch: &mut BfsScratch,
    ) -> Option<(NodeId, usize)> {
        let (reached, _) = self.bfs_levels(source, threads, scratch);
        if reached != self.node_count() {
            return None;
        }
        let mut result = (source, 0u32);
        for (index, &distance) in scratch.dist.iter().enumerate() {
            if distance > result.1 {
                result = (NodeId::new(index), distance);
            }
        }
        Some((result.0, result.1 as usize))
    }

    /// Level-synchronous BFS from `source` into `scratch.dist`
    /// (`u32::MAX` = unreached). Returns `(reached nodes, max distance)`.
    ///
    /// With `threads > 1`, frontiers at least [`PARALLEL_FRONTIER_MIN`]
    /// long are split into contiguous chunks expanded concurrently. The
    /// visited bitset is frozen during expansion (threads only read it and
    /// write thread-private candidate buffers) and the merge walks the
    /// buffers in chunk order, so the next frontier — and the distances —
    /// come out identical to the sequential sweep at any thread count.
    fn bfs_levels(
        &self,
        source: NodeId,
        threads: usize,
        scratch: &mut BfsScratch,
    ) -> (usize, usize) {
        let n = self.node_count();
        scratch.dist.clear();
        scratch.dist.resize(n, UNREACHED);
        scratch.visited.reset(n);
        scratch.frontier.clear();
        scratch.next.clear();

        scratch.dist[source.index()] = 0;
        scratch.visited.set(source.index());
        scratch.frontier.push(source);
        let mut reached = 1usize;
        let mut level = 0u32;

        while !scratch.frontier.is_empty() {
            scratch.next.clear();
            if threads > 1 && scratch.frontier.len() >= PARALLEL_FRONTIER_MIN {
                self.expand_frontier_parallel(threads, scratch);
            } else {
                for i in 0..scratch.frontier.len() {
                    let u = scratch.frontier[i];
                    for &v in self.neighbors(u) {
                        if !scratch.visited.set(v.index()) {
                            scratch.next.push(v);
                        }
                    }
                }
            }
            if scratch.next.is_empty() {
                break;
            }
            level += 1;
            for &v in &scratch.next {
                scratch.dist[v.index()] = level;
            }
            reached += scratch.next.len();
            std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        }
        (reached, level as usize)
    }

    /// One parallel frontier expansion: split `scratch.frontier` into
    /// `threads` contiguous chunks, expand each into a thread-private
    /// candidate buffer against the frozen visited set, then merge the
    /// buffers in chunk order (deduplicating via the visited set) into
    /// `scratch.next`.
    fn expand_frontier_parallel(&self, threads: usize, scratch: &mut BfsScratch) {
        let frontier = &scratch.frontier;
        let visited = &scratch.visited;
        let chunk_len = frontier.len().div_ceil(threads);
        scratch.candidates.resize_with(threads, Vec::new);
        let mut buffers = std::mem::take(&mut scratch.candidates);
        std::thread::scope(|scope| {
            for (chunk, buffer) in frontier.chunks(chunk_len).zip(buffers.iter_mut()) {
                scope.spawn(move || {
                    buffer.clear();
                    for &u in chunk {
                        for &v in self.neighbors(u) {
                            if !visited.get(v.index()) {
                                buffer.push(v);
                            }
                        }
                    }
                });
            }
        });
        for buffer in &buffers {
            for &v in buffer {
                if !scratch.visited.set(v.index()) {
                    scratch.next.push(v);
                }
            }
        }
        scratch.candidates = buffers;
    }

    /// Average degree over all nodes (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        2.0 * self.edge_count as f64 / self.node_count() as f64
    }

    /// Minimum and maximum degree; `None` for the empty graph.
    pub fn degree_bounds(&self) -> Option<(usize, usize)> {
        if self.node_count() == 0 {
            return None;
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        for node in self.nodes() {
            let d = self.degree(node);
            min = min.min(d);
            max = max.max(d);
        }
        Some((min, max))
    }

    /// Collects the connected component containing `start`.
    pub fn component_of(&self, start: NodeId) -> Vec<NodeId> {
        self.bfs_distances(start)
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|_| NodeId::new(i)))
            .collect()
    }
}

/// Distance marker for unreached nodes in the BFS scratch lane.
const UNREACHED: u32 = u32::MAX;

/// Reusable breadth-first-search working storage: the distance lane, the
/// visited bitset, the current/next frontier buffers and the per-thread
/// candidate buffers of the parallel expansion.
#[derive(Debug, Default)]
struct BfsScratch {
    dist: Vec<u32>,
    visited: BitSet,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    candidates: Vec<Vec<NodeId>>,
}

/// Sorts the live prefix of every span, splitting the node range across
/// `threads` scoped worker threads when the workload is large enough. The
/// result is the unique sorted order per span, so thread count cannot
/// change it.
fn sort_spans(offsets: &[u32], live: &[u32], targets: &mut [NodeId], threads: usize) {
    let n = live.len();
    let sequential = |targets: &mut [NodeId]| {
        for i in 0..n {
            let start = offsets[i] as usize;
            let len = live[i] as usize;
            targets[start..start + len].sort_unstable();
        }
    };
    if threads <= 1 || targets.len() < PARALLEL_SORT_MIN_SLOTS {
        sequential(targets);
        return;
    }
    // Cut the node range so each worker gets a similar number of slots,
    // then hand each worker the disjoint sub-slice holding its spans.
    let total = targets.len();
    let mut cuts = Vec::with_capacity(threads + 1);
    cuts.push(0usize);
    for t in 1..threads {
        let goal = to_u32(total * t / threads);
        let cut = offsets[..=n].partition_point(|&o| o < goal).min(n);
        cuts.push(cut.max(*cuts.last().expect("cuts is non-empty")));
    }
    cuts.push(n);
    std::thread::scope(|scope| {
        let mut rest: &mut [NodeId] = targets;
        let mut consumed = 0usize;
        for window in cuts.windows(2) {
            let (lo, hi) = (window[0], window[1]);
            let end_slot = offsets[hi] as usize;
            let (chunk, tail) = rest.split_at_mut(end_slot - consumed);
            rest = tail;
            let base = consumed;
            consumed = end_slot;
            scope.spawn(move || {
                for i in lo..hi {
                    let start = offsets[i] as usize - base;
                    let len = live[i] as usize;
                    chunk[start..start + len].sort_unstable();
                }
            });
        }
    });
}

impl PartialEq for Graph {
    /// Semantic equality: same node count and the same live neighbour
    /// lists, regardless of span slack or tombstone layout.
    fn eq(&self, other: &Self) -> bool {
        self.node_count() == other.node_count()
            && self.edge_count == other.edge_count
            && self
                .nodes()
                .all(|v| self.neighbors(v) == other.neighbors(v))
    }
}

impl Eq for Graph {}

/// Accumulates an edge list and finalizes it into a [`Graph`] in one
/// counting-sort pass — the canonical way to construct a topology.
///
/// Unlike [`Graph::add_edge`] (which keeps the CSR invariants on every
/// call), the builder defers all layout work to [`GraphBuilder::finalize`],
/// so building an m-edge graph costs O(n + m) regardless of insertion
/// order.
///
/// # Examples
///
/// ```
/// use fnp_netsim::{GraphBuilder, NodeId};
///
/// let mut builder = GraphBuilder::new(3);
/// builder.add_edge(NodeId::new(2), NodeId::new(0));
/// builder.add_edge(NodeId::new(0), NodeId::new(1));
/// let g = builder.finalize();
/// assert_eq!(g.neighbors(NodeId::new(0)), &[NodeId::new(1), NodeId::new(2)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    pairs: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph over nodes `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            pairs: Vec::new(),
        }
    }

    /// Records the undirected edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `a == b`. Duplicate edges
    /// are *not* detected here — they fail [`GraphBuilder::finalize`].
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "edge endpoints {a:?}, {b:?} out of range for graph of {} nodes",
            self.n
        );
        assert!(a != b, "self-loop {a:?} rejected");
        self.pairs.push((to_u32(a.index()), to_u32(b.index())));
    }

    /// Number of edges recorded so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.pairs.len()
    }

    /// Builds the graph: counting sort by source, per-span neighbour sort.
    ///
    /// # Panics
    ///
    /// Panics if the recorded edges contain a duplicate.
    #[must_use]
    pub fn finalize(self) -> Graph {
        let mut graph = Graph::new(self.n);
        self.finalize_into(&mut graph);
        graph
    }

    /// Like [`GraphBuilder::finalize`], but reuses `graph`'s allocations
    /// (an arena-pooled checkout).
    pub fn finalize_into(self, graph: &mut Graph) {
        assert!(
            graph.build_from_pairs(self.n, &self.pairs, false, 1),
            "edge list contains a duplicate edge"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId::new(i - 1), NodeId::new(i));
        }
        g
    }

    #[test]
    fn empty_graph_properties() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.degree_bounds(), None);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::new(1);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(0));
        assert_eq!(g.eccentricity(NodeId::new(0)), Some(0));
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(NodeId::new(0), NodeId::new(1)));
        assert!(
            !g.add_edge(NodeId::new(0), NodeId::new(1)),
            "duplicate edge"
        );
        assert!(
            !g.add_edge(NodeId::new(1), NodeId::new(0)),
            "reverse duplicate"
        );
        assert!(!g.add_edge(NodeId::new(1), NodeId::new(1)), "self loop");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));

        assert!(g.remove_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.remove_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(5));
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = Graph::new(5);
        g.add_edge(NodeId::new(2), NodeId::new(4));
        g.add_edge(NodeId::new(2), NodeId::new(0));
        g.add_edge(NodeId::new(2), NodeId::new(3));
        assert_eq!(
            g.neighbors(NodeId::new(2)),
            &[NodeId::new(0), NodeId::new(3), NodeId::new(4)]
        );
    }

    #[test]
    fn removed_edges_leave_tombstones_that_adds_reuse() {
        // A remove must not disturb neighbour order, and the freed slots
        // must be consumed in place by a follow-up add (no rebuild).
        let mut g = Graph::new(5);
        for b in 1..5 {
            g.add_edge(NodeId::new(0), NodeId::new(b));
        }
        assert!(g.remove_edge(NodeId::new(0), NodeId::new(2)));
        assert_eq!(
            g.neighbors(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(3), NodeId::new(4)]
        );
        let slots_before = g.targets.len();
        assert!(g.add_edge(NodeId::new(0), NodeId::new(2)));
        assert_eq!(g.targets.len(), slots_before, "tombstoned slots reused");
        assert_eq!(
            g.neighbors(NodeId::new(0)),
            &[
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3),
                NodeId::new(4)
            ]
        );
        assert_eq!(g.tombstones.count_ones(), g.dead_slot_count());
    }

    impl Graph {
        /// Test helper: dead slots implied by the span accounting.
        fn dead_slot_count(&self) -> usize {
            (0..self.node_count())
                .map(|i| {
                    let (_, len, cap) = self.span(i);
                    cap - len
                })
                .sum()
        }
    }

    #[test]
    fn tombstone_bitmap_tracks_span_accounting() {
        let mut g = path_graph(10);
        g.remove_edge(NodeId::new(3), NodeId::new(4));
        g.remove_edge(NodeId::new(7), NodeId::new(8));
        assert_eq!(g.tombstones.count_ones(), g.dead_slot_count());
        g.reset(10);
        assert_eq!(g.tombstones.count_ones(), 0, "reset compacts tombstones");
    }

    #[test]
    fn equality_is_semantic_not_layout() {
        // The same edge set reached via different mutation histories (and
        // therefore different slack/tombstone layouts) compares equal.
        let mut via_churn = path_graph(4);
        via_churn.add_edge(NodeId::new(0), NodeId::new(2));
        via_churn.remove_edge(NodeId::new(0), NodeId::new(2));
        assert_eq!(via_churn, path_graph(4));
        assert_ne!(path_graph(4), path_graph(5));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let dist = g.bfs_distances(NodeId::new(0));
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_tree_parents_point_towards_root() {
        let g = path_graph(4);
        let parents = g.bfs_tree(NodeId::new(0));
        assert_eq!(parents[0], None);
        assert_eq!(parents[1], Some(NodeId::new(0)));
        assert_eq!(parents[2], Some(NodeId::new(1)));
        assert_eq!(parents[3], Some(NodeId::new(2)));
    }

    #[test]
    fn connectivity_and_components() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(2), NodeId::new(3));
        assert!(!g.is_connected());
        assert_eq!(
            g.component_of(NodeId::new(0)),
            vec![NodeId::new(0), NodeId::new(1)]
        );
        g.add_edge(NodeId::new(1), NodeId::new(2));
        assert!(g.is_connected());
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(path_graph(6).diameter(), Some(5));

        let mut cycle = path_graph(6);
        cycle.add_edge(NodeId::new(5), NodeId::new(0));
        assert_eq!(cycle.diameter(), Some(3));
    }

    #[test]
    fn diameter_of_disconnected_graph_is_none() {
        let g = Graph::new(3);
        assert_eq!(g.diameter(), None);
        assert_eq!(g.diameter_estimate(), None);
    }

    #[test]
    fn diameter_estimate_is_exact_below_the_threshold() {
        // Paper-scale graphs take the exact path, so rows that report a
        // diameter stay byte-identical to the all-pairs computation.
        for g in [path_graph(6), path_graph(100)] {
            let (d, estimator) = g.diameter_estimate().unwrap();
            assert_eq!(Some(d), g.diameter());
            assert_eq!(estimator, DiameterEstimator::Exact);
        }
        let mut cycle = path_graph(6);
        cycle.add_edge(NodeId::new(5), NodeId::new(0));
        assert_eq!(
            cycle.diameter_estimate(),
            Some((3, DiameterEstimator::Exact))
        );
    }

    #[test]
    fn diameter_estimate_double_sweep_on_large_paths_and_cycles() {
        // Above the threshold the double sweep runs — and on paths and
        // cycles it recovers the exact diameter.
        let n = EXACT_DIAMETER_MAX_NODES + 1000;
        let path = path_graph(n);
        assert_eq!(
            path.diameter_estimate(),
            Some((n - 1, DiameterEstimator::DoubleSweep))
        );
        let mut cycle = path_graph(n);
        cycle.add_edge(NodeId::new(n - 1), NodeId::new(0));
        assert_eq!(
            cycle.diameter_estimate(),
            Some((n / 2, DiameterEstimator::DoubleSweep))
        );
        // Large and disconnected still reports None.
        let mut split = path_graph(n);
        split.remove_edge(NodeId::new(17), NodeId::new(18));
        assert_eq!(split.diameter_estimate(), None);
    }

    #[test]
    fn diameter_estimate_is_thread_count_invariant() {
        let n = EXACT_DIAMETER_MAX_NODES + 1000;
        let mut cycle = path_graph(n);
        cycle.add_edge(NodeId::new(n - 1), NodeId::new(0));
        let sequential = cycle.diameter_estimate();
        for threads in [2, 4] {
            assert_eq!(cycle.diameter_estimate_with_threads(threads), sequential);
        }
    }

    #[test]
    fn diameter_estimator_display_names() {
        assert_eq!(DiameterEstimator::Exact.to_string(), "exact");
        assert_eq!(DiameterEstimator::DoubleSweep.to_string(), "double-sweep");
    }

    #[test]
    fn degree_statistics() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(0), NodeId::new(2));
        g.add_edge(NodeId::new(0), NodeId::new(3));
        assert_eq!(g.degree(NodeId::new(0)), 3);
        assert_eq!(g.degree_bounds(), Some((1, 3)));
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reset_matches_a_fresh_graph() {
        let mut g = path_graph(5);
        g.reset(3);
        assert_eq!(g, Graph::new(3));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(NodeId::new(0)), 0);
        // Growing past the previous size also works.
        g.reset(7);
        assert_eq!(g, Graph::new(7));
        assert!(g.add_edge(NodeId::new(5), NodeId::new(6)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edges_reported_once() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(1), NodeId::new(2));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(2))
            ]
        );
    }

    #[test]
    fn builder_finalize_matches_incremental_adds() {
        let mut builder = GraphBuilder::new(6);
        let mut incremental = Graph::new(6);
        for (a, b) in [(4, 1), (0, 5), (1, 0), (2, 4), (3, 2), (5, 4)] {
            builder.add_edge(NodeId::new(a), NodeId::new(b));
            incremental.add_edge(NodeId::new(a), NodeId::new(b));
        }
        assert_eq!(builder.edge_count(), 6);
        let built = builder.finalize();
        assert_eq!(built, incremental);
        assert_eq!(built.edge_count(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn builder_rejects_duplicates_at_finalize() {
        let mut builder = GraphBuilder::new(3);
        builder.add_edge(NodeId::new(0), NodeId::new(1));
        builder.add_edge(NodeId::new(1), NodeId::new(0));
        let _ = builder.finalize();
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn builder_rejects_self_loops_immediately() {
        let mut builder = GraphBuilder::new(3);
        builder.add_edge(NodeId::new(1), NodeId::new(1));
    }

    #[test]
    fn parallel_span_sort_matches_sequential() {
        // Star-ish graph with very uneven span lengths exercises the
        // slot-balanced node cuts.
        let n = 3000;
        let mut pairs = Vec::new();
        for i in 1..n {
            pairs.push((0u32, to_u32(i)));
        }
        for i in (1..n - 1).rev() {
            pairs.push((to_u32(i), to_u32(i + 1)));
        }
        let mut sequential = Graph::new(n);
        assert!(sequential.build_from_pairs(n, &pairs, false, 1));
        for threads in [2, 3, 8] {
            let mut parallel = Graph::new(n);
            assert!(parallel.build_from_pairs(n, &pairs, false, threads));
            assert_eq!(parallel, sequential);
        }
    }
}
