//! Undirected graphs representing the peer-to-peer overlay.
//!
//! The overlay of a blockchain network is an undirected graph: an edge means
//! the two peers maintain a TCP connection and relay transactions to each
//! other. [`Graph`] stores the adjacency structure and offers the handful of
//! graph algorithms the protocols and adversary estimators need: breadth-
//! first search, connectivity, eccentricity/diameter, shortest-path trees
//! and degree statistics.

use crate::node::NodeId;
use std::collections::VecDeque;
use std::fmt;

/// Largest node count for which [`Graph::diameter_estimate`] still runs the
/// exact all-pairs-BFS computation.
///
/// Below this threshold (which covers every network size in the paper's
/// evaluation) the reported diameter is byte-identical to the historical
/// exact output; above it, a double-sweep estimate is used, because exact
/// O(n·(n+m)) is a multi-hour computation at n = 10⁶.
pub const EXACT_DIAMETER_MAX_NODES: usize = 2048;

/// Number of deterministic probe nodes for the sampled-eccentricity
/// refinement of [`Graph::diameter_estimate`].
const DIAMETER_ECCENTRICITY_SAMPLES: usize = 8;

/// Which algorithm produced a [`Graph::diameter_estimate`] figure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiameterEstimator {
    /// All-pairs BFS: the figure is the exact diameter.
    Exact,
    /// Double-sweep (2-BFS) plus sampled-eccentricity refinement: the
    /// figure is a lower bound on the diameter — exact on trees, and
    /// typically exact or off by one on the random overlay families the
    /// experiments use.
    DoubleSweep,
}

impl fmt::Display for DiameterEstimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiameterEstimator::Exact => write!(f, "exact"),
            DiameterEstimator::DoubleSweep => write!(f, "double-sweep"),
        }
    }
}

/// An undirected simple graph over nodes `0..n`.
///
/// Self-loops and parallel edges are rejected at insertion time; adjacency
/// lists are kept sorted so that neighbour iteration order is deterministic,
/// which in turn keeps whole simulations reproducible under a fixed seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Resets the graph to `n` isolated nodes, reusing the adjacency
    /// allocations of the previous population where possible (the cheap
    /// path of a [`TrialArena`](crate::TrialArena) checkout).
    ///
    /// The result is indistinguishable from `Graph::new(n)`.
    pub fn reset(&mut self, n: usize) {
        self.adjacency.truncate(n);
        for neighbors in &mut self.adjacency {
            neighbors.clear();
        }
        self.adjacency.resize_with(n, Vec::new);
        self.edge_count = 0;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len()).map(NodeId::new)
    }

    /// Returns `true` if the edge `{a, b}` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency
            .get(a.index())
            .is_some_and(|neighbors| neighbors.binary_search(&b).is_ok())
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// Returns `true` if the edge was inserted, `false` if it already existed
    /// or is a self-loop.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert!(
            a.index() < self.node_count() && b.index() < self.node_count(),
            "edge endpoints {a:?}, {b:?} out of range for graph of {} nodes",
            self.node_count()
        );
        if a == b || self.has_edge(a, b) {
            return false;
        }
        let insert_sorted = |list: &mut Vec<NodeId>, value: NodeId| {
            let pos = list.binary_search(&value).unwrap_err();
            list.insert(pos, value);
        };
        insert_sorted(&mut self.adjacency[a.index()], b);
        insert_sorted(&mut self.adjacency[b.index()], a);
        self.edge_count += 1;
        true
    }

    /// Removes the undirected edge `{a, b}` if present; returns whether an
    /// edge was removed.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if !self.has_edge(a, b) {
            return false;
        }
        let remove_sorted = |list: &mut Vec<NodeId>, value: NodeId| {
            if let Ok(pos) = list.binary_search(&value) {
                list.remove(pos);
            }
        };
        remove_sorted(&mut self.adjacency[a.index()], b);
        remove_sorted(&mut self.adjacency[b.index()], a);
        self.edge_count -= 1;
        true
    }

    /// Returns the sorted neighbour list of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Iterator over all undirected edges, each reported once with
    /// `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(a, neighbors)| {
                let a = NodeId::new(a);
                neighbors
                    .iter()
                    .copied()
                    .filter(move |&b| a < b)
                    .map(move |b| (a, b))
            })
    }

    /// Breadth-first distances (in hops) from `source`.
    ///
    /// Unreachable nodes get `None`.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.node_count()];
        let mut queue = VecDeque::new();
        dist[source.index()] = Some(0);
        queue.push_back(source);
        while let Some(current) = queue.pop_front() {
            let d = dist[current.index()].expect("queued nodes have distances");
            for &next in self.neighbors(current) {
                if dist[next.index()].is_none() {
                    dist[next.index()] = Some(d + 1);
                    queue.push_back(next);
                }
            }
        }
        dist
    }

    /// Breadth-first shortest-path tree rooted at `source`: for every node,
    /// the predecessor on one shortest path (the root and unreachable nodes
    /// get `None`).
    pub fn bfs_tree(&self, source: NodeId) -> Vec<Option<NodeId>> {
        let mut parent = vec![None; self.node_count()];
        let mut visited = vec![false; self.node_count()];
        let mut queue = VecDeque::new();
        visited[source.index()] = true;
        queue.push_back(source);
        while let Some(current) = queue.pop_front() {
            for &next in self.neighbors(current) {
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    parent[next.index()] = Some(current);
                    queue.push_back(next);
                }
            }
        }
        parent
    }

    /// Returns `true` if every node is reachable from every other node.
    ///
    /// The empty graph and the single-node graph are considered connected.
    pub fn is_connected(&self) -> bool {
        if self.node_count() <= 1 {
            return true;
        }
        self.bfs_distances(NodeId::new(0))
            .iter()
            .all(|d| d.is_some())
    }

    /// Eccentricity of `node`: the maximum BFS distance to any reachable
    /// node. Returns `None` if some node is unreachable.
    pub fn eccentricity(&self, node: NodeId) -> Option<usize> {
        let distances = self.bfs_distances(node);
        let mut max = 0usize;
        for d in distances {
            max = max.max(d?);
        }
        Some(max)
    }

    /// Graph diameter: the maximum eccentricity over all nodes, or `None` if
    /// the graph is disconnected (or empty).
    ///
    /// Runs one BFS per node — O(n·(n+m)) — which is fine for the network
    /// sizes the paper's evaluation uses (≈ 1 000 peers).
    pub fn diameter(&self) -> Option<usize> {
        if self.node_count() == 0 {
            return None;
        }
        let mut diameter = 0usize;
        for node in self.nodes() {
            diameter = diameter.max(self.eccentricity(node)?);
        }
        Some(diameter)
    }

    /// Graph diameter, or a tight lower-bound estimate when the graph is
    /// too large for the exact algorithm; reports which estimator ran.
    ///
    /// Up to [`EXACT_DIAMETER_MAX_NODES`] nodes this is exactly
    /// [`Graph::diameter`] (one BFS per node). Beyond that it switches to a
    /// double sweep — BFS from node 0 to find a peripheral node `u`, then
    /// BFS from `u` — refined by the eccentricities of the second sweep's
    /// endpoint and a deterministic stride of probe nodes. The result is a
    /// lower bound on the true diameter at O(1) BFS passes instead of
    /// O(n), and `None` for disconnected (or empty) graphs either way.
    pub fn diameter_estimate(&self) -> Option<(usize, DiameterEstimator)> {
        let n = self.node_count();
        if n == 0 {
            return None;
        }
        if n <= EXACT_DIAMETER_MAX_NODES {
            return self.diameter().map(|d| (d, DiameterEstimator::Exact));
        }
        // Double sweep: the farthest node from an arbitrary start sits on
        // the periphery, so its eccentricity approximates the diameter
        // from below (exactly, on trees).
        let (u, _) = self.farthest_from(NodeId::new(0))?;
        let (w, mut best) = self.farthest_from(u)?;
        // Sampled-eccentricity refinement: more sources can only raise the
        // lower bound. The probe set (second sweep's endpoint plus a fixed
        // stride over node indices) is deterministic, so repeated calls on
        // the same graph report the same figure.
        let stride = (n / DIAMETER_ECCENTRICITY_SAMPLES).max(1);
        for probe in std::iter::once(w).chain((0..n).step_by(stride).map(NodeId::new)) {
            let (_, eccentricity) = self.farthest_from(probe)?;
            best = best.max(eccentricity);
        }
        Some((best, DiameterEstimator::DoubleSweep))
    }

    /// The node farthest from `source` (lowest index on ties) and its BFS
    /// distance, or `None` if any node is unreachable.
    fn farthest_from(&self, source: NodeId) -> Option<(NodeId, usize)> {
        let mut result = (source, 0usize);
        for (index, distance) in self.bfs_distances(source).into_iter().enumerate() {
            let distance = distance?;
            if distance > result.1 {
                result = (NodeId::new(index), distance);
            }
        }
        Some(result)
    }

    /// Average degree over all nodes (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        2.0 * self.edge_count as f64 / self.node_count() as f64
    }

    /// Minimum and maximum degree; `None` for the empty graph.
    pub fn degree_bounds(&self) -> Option<(usize, usize)> {
        if self.node_count() == 0 {
            return None;
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        for node in self.nodes() {
            let d = self.degree(node);
            min = min.min(d);
            max = max.max(d);
        }
        Some((min, max))
    }

    /// Collects the connected component containing `start`.
    pub fn component_of(&self, start: NodeId) -> Vec<NodeId> {
        self.bfs_distances(start)
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|_| NodeId::new(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(NodeId::new(i - 1), NodeId::new(i));
        }
        g
    }

    #[test]
    fn empty_graph_properties() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.degree_bounds(), None);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::new(1);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(0));
        assert_eq!(g.eccentricity(NodeId::new(0)), Some(0));
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(NodeId::new(0), NodeId::new(1)));
        assert!(
            !g.add_edge(NodeId::new(0), NodeId::new(1)),
            "duplicate edge"
        );
        assert!(
            !g.add_edge(NodeId::new(1), NodeId::new(0)),
            "reverse duplicate"
        );
        assert!(!g.add_edge(NodeId::new(1), NodeId::new(1)), "self loop");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));

        assert!(g.remove_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.remove_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(5));
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = Graph::new(5);
        g.add_edge(NodeId::new(2), NodeId::new(4));
        g.add_edge(NodeId::new(2), NodeId::new(0));
        g.add_edge(NodeId::new(2), NodeId::new(3));
        assert_eq!(
            g.neighbors(NodeId::new(2)),
            &[NodeId::new(0), NodeId::new(3), NodeId::new(4)]
        );
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let dist = g.bfs_distances(NodeId::new(0));
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_tree_parents_point_towards_root() {
        let g = path_graph(4);
        let parents = g.bfs_tree(NodeId::new(0));
        assert_eq!(parents[0], None);
        assert_eq!(parents[1], Some(NodeId::new(0)));
        assert_eq!(parents[2], Some(NodeId::new(1)));
        assert_eq!(parents[3], Some(NodeId::new(2)));
    }

    #[test]
    fn connectivity_and_components() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(2), NodeId::new(3));
        assert!(!g.is_connected());
        assert_eq!(
            g.component_of(NodeId::new(0)),
            vec![NodeId::new(0), NodeId::new(1)]
        );
        g.add_edge(NodeId::new(1), NodeId::new(2));
        assert!(g.is_connected());
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(path_graph(6).diameter(), Some(5));

        let mut cycle = path_graph(6);
        cycle.add_edge(NodeId::new(5), NodeId::new(0));
        assert_eq!(cycle.diameter(), Some(3));
    }

    #[test]
    fn diameter_of_disconnected_graph_is_none() {
        let g = Graph::new(3);
        assert_eq!(g.diameter(), None);
        assert_eq!(g.diameter_estimate(), None);
    }

    #[test]
    fn diameter_estimate_is_exact_below_the_threshold() {
        // Paper-scale graphs take the exact path, so rows that report a
        // diameter stay byte-identical to the all-pairs computation.
        for g in [path_graph(6), path_graph(100)] {
            let (d, estimator) = g.diameter_estimate().unwrap();
            assert_eq!(Some(d), g.diameter());
            assert_eq!(estimator, DiameterEstimator::Exact);
        }
        let mut cycle = path_graph(6);
        cycle.add_edge(NodeId::new(5), NodeId::new(0));
        assert_eq!(
            cycle.diameter_estimate(),
            Some((3, DiameterEstimator::Exact))
        );
    }

    #[test]
    fn diameter_estimate_double_sweep_on_large_paths_and_cycles() {
        // Above the threshold the double sweep runs — and on paths and
        // cycles it recovers the exact diameter.
        let n = EXACT_DIAMETER_MAX_NODES + 1000;
        let path = path_graph(n);
        assert_eq!(
            path.diameter_estimate(),
            Some((n - 1, DiameterEstimator::DoubleSweep))
        );
        let mut cycle = path_graph(n);
        cycle.add_edge(NodeId::new(n - 1), NodeId::new(0));
        assert_eq!(
            cycle.diameter_estimate(),
            Some((n / 2, DiameterEstimator::DoubleSweep))
        );
        // Large and disconnected still reports None.
        let mut split = path_graph(n);
        split.remove_edge(NodeId::new(17), NodeId::new(18));
        assert_eq!(split.diameter_estimate(), None);
    }

    #[test]
    fn diameter_estimator_display_names() {
        assert_eq!(DiameterEstimator::Exact.to_string(), "exact");
        assert_eq!(DiameterEstimator::DoubleSweep.to_string(), "double-sweep");
    }

    #[test]
    fn degree_statistics() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(0), NodeId::new(2));
        g.add_edge(NodeId::new(0), NodeId::new(3));
        assert_eq!(g.degree(NodeId::new(0)), 3);
        assert_eq!(g.degree_bounds(), Some((1, 3)));
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reset_matches_a_fresh_graph() {
        let mut g = path_graph(5);
        g.reset(3);
        assert_eq!(g, Graph::new(3));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(NodeId::new(0)), 0);
        // Growing past the previous size also works.
        g.reset(7);
        assert_eq!(g, Graph::new(7));
        assert!(g.add_edge(NodeId::new(5), NodeId::new(6)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edges_reported_once() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(1), NodeId::new(2));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(2))
            ]
        );
    }
}
