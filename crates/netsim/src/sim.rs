//! The discrete-event simulator.
//!
//! A [`Simulator`] owns a connected overlay [`Graph`], one protocol state
//! machine per node, a [`LatencyModel`] and an event queue. Protocols are
//! written as implementations of [`ProtocolNode`]: plain state machines that
//! react to message and timer events through a [`Context`] handle, exactly
//! the way a real networked node reacts to socket readiness and timeouts.
//! The simulator delivers every scheduled event in timestamp order, so a
//! whole experiment — thousands of broadcasts over thousands of nodes — is
//! deterministic under a fixed seed.
//!
//! # Examples
//!
//! A two-node "ping" protocol:
//!
//! ```
//! use fnp_netsim::{
//!     Context, Graph, LatencyModel, NodeId, Payload, ProtocolNode, SimConfig, Simulator,
//! };
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl Payload for Ping {
//!     fn kind(&self) -> &'static str { "ping" }
//! }
//!
//! struct Node;
//! impl ProtocolNode for Node {
//!     type Message = Ping;
//!     fn on_message(&mut self, _from: NodeId, _msg: Ping, ctx: &mut Context<'_, Ping>) {
//!         ctx.mark_delivered();
//!     }
//! }
//!
//! let mut graph = Graph::new(2);
//! graph.add_edge(NodeId::new(0), NodeId::new(1));
//! let mut sim = Simulator::new(graph, vec![Node, Node], SimConfig::default());
//! sim.trigger(NodeId::new(0), |_node, ctx| {
//!     let peer = ctx.neighbors()[0];
//!     ctx.send(peer, Ping);
//! });
//! let metrics = sim.run();
//! assert_eq!(metrics.messages_sent, 1);
//! assert_eq!(metrics.delivered_count(), 1);
//! ```

use crate::arena::TrialArena;
use crate::churn::ChurnSchedule;
use crate::graph::Graph;
use crate::hot::HotState;
use crate::latency::LatencyModel;
use crate::message::Payload;
use crate::metrics::{Metrics, TraceEntry};
use crate::node::NodeId;
use crate::time::SimTime;
use crate::wheel::{self, TimeWheel, WheelItem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Link latency model used for every transmission.
    pub latency: LatencyModel,
    /// Seed of the simulation-wide random number generator.
    pub seed: u64,
    /// Whether to record the full transmission trace (needed by the
    /// adversary estimators; costs memory proportional to message count).
    pub record_trace: bool,
    /// Hard cap on processed events, guarding against runaway protocols.
    pub max_events: u64,
    /// Hard cap on simulated time; events scheduled later are dropped.
    pub max_time: SimTime,
    /// Outage schedule injected into the run (empty = no churn). While a
    /// node is down it neither receives messages nor fires timers; dropped
    /// messages are counted under the `"dropped-offline"` counter.
    pub churn: ChurnSchedule,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            latency: LatencyModel::default(),
            seed: 0,
            record_trace: false,
            max_events: 50_000_000,
            max_time: SimTime::MAX,
            churn: ChurnSchedule::none(),
        }
    }
}

/// Handle through which a protocol state machine interacts with the world.
///
/// A context is only valid for the duration of one event handler; every
/// action it records (sends, timers, deliveries, counters) is applied by the
/// simulator when the handler returns.
#[derive(Debug)]
pub struct Context<'a, M> {
    node: NodeId,
    now: SimTime,
    neighbors: &'a [NodeId],
    node_count: usize,
    rng: &'a mut StdRng,
    hot: &'a mut HotState,
    actions: &'a mut Vec<Action<M>>,
}

#[derive(Debug)]
pub(crate) enum Action<M> {
    Send {
        to: NodeId,
        message: M,
    },
    /// One message fanned out to every neighbour not in `excluded`; the
    /// payload is shared (reference-counted) between the in-flight copies
    /// instead of deep-cloned per target.
    Broadcast {
        message: M,
        excluded: Vec<NodeId>,
    },
    Timer {
        delay: SimTime,
        tag: u64,
    },
    Deliver,
    Counter {
        name: &'static str,
        amount: u64,
    },
}

impl<'a, M> Context<'a, M> {
    /// The node this handler is running on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Overlay neighbours of this node, in deterministic (sorted) order.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Total number of nodes in the simulated network.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The simulation-wide random number generator.
    ///
    /// All protocol randomness must come from this generator to keep runs
    /// reproducible under a fixed [`SimConfig::seed`].
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `message` to `to`. The simulator samples the link latency and
    /// delivers the message via the recipient's
    /// [`ProtocolNode::on_message`].
    pub fn send(&mut self, to: NodeId, message: M) {
        self.actions.push(Action::Send { to, message });
    }

    /// Sends `message` to every overlay neighbour except those in
    /// `excluded`.
    ///
    /// The payload is *shared* between the in-flight copies: the simulator
    /// queues one reference-counted instance and only clones it at delivery
    /// time when a recipient other than the last needs ownership, so a
    /// degree-`d` fan-out costs `d − 1` clones instead of `d` and keeps a
    /// single copy in the event queue.
    pub fn send_to_neighbors_except(&mut self, message: M, excluded: &[NodeId])
    where
        M: Clone,
    {
        self.broadcast_except(message, excluded.to_vec());
    }

    /// Like [`Context::send_to_neighbors_except`], but takes ownership of
    /// the exclusion list — the zero-copy entry point for adapters (such as
    /// the sans-IO mailbox driver) that already hold an owned `Vec`.
    pub fn broadcast_except(&mut self, message: M, excluded: Vec<NodeId>)
    where
        M: Clone,
    {
        self.actions.push(Action::Broadcast { message, excluded });
    }

    /// Schedules [`ProtocolNode::on_timer`] on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        self.actions.push(Action::Timer { delay, tag });
    }

    /// Marks this node as having received (accepted) the broadcast payload.
    ///
    /// The first call per node is recorded in
    /// [`Metrics::delivered_at`](crate::metrics::Metrics); later calls are
    /// ignored.
    pub fn mark_delivered(&mut self) {
        self.actions.push(Action::Deliver);
    }

    /// Increments a custom experiment counter by 1.
    pub fn record(&mut self, name: &'static str) {
        self.record_many(name, 1);
    }

    /// Increments a custom experiment counter by `amount`.
    pub fn record_many(&mut self, name: &'static str, amount: u64) {
        self.actions.push(Action::Counter { name, amount });
    }

    // ------------------------------------------------------------------
    // Hot-lane accessors (struct-of-arrays per-node state; see `hot`)
    // ------------------------------------------------------------------

    /// This node's seen flag (hot lane; see [`HotState`]).
    ///
    /// Protocols use this for the duplicate-suppression check at the top of
    /// their message handlers — the hottest read of the whole event loop —
    /// so it lives in a dense slice instead of the node struct.
    pub fn seen(&self) -> bool {
        self.hot.seen(self.node)
    }

    /// Sets this node's seen flag, returning the previous value.
    ///
    /// `if ctx.set_seen() { return; }` is the idiomatic prune check: it
    /// marks and tests in one lane access.
    pub fn set_seen(&mut self) -> bool {
        self.hot.set_seen(self.node)
    }

    /// This node's phase tag (hot lane; see [`HotState`]).
    pub fn phase(&self) -> u8 {
        self.hot.phase(self.node)
    }

    /// Sets this node's phase tag.
    pub fn set_phase(&mut self, phase: u8) {
        self.hot.set_phase(self.node, phase);
    }

    /// This node's hot counter slot (see [`HotState`]).
    pub fn counter_lane(&self) -> u32 {
        self.hot.counter(self.node)
    }

    /// Sets this node's hot counter slot.
    pub fn set_counter_lane(&mut self, value: u32) {
        self.hot.set_counter(self.node, value);
    }

    /// Whether a spread wave of `round` (or a later one) was already
    /// processed on this node.
    ///
    /// Wave-dedup protocols store the highest processed round in the
    /// counter lane encoded as `round + 1` (`0` = none yet); this helper
    /// and [`Context::mark_round_seen`] single-source that encoding so
    /// call sites cannot drift off by one.
    pub fn round_seen(&self, round: u32) -> bool {
        self.counter_lane() > round
    }

    /// Records `round` as the highest spread-wave round processed on this
    /// node (see [`Context::round_seen`] for the encoding).
    pub fn mark_round_seen(&mut self, round: u32) {
        self.set_counter_lane(round + 1);
    }
}

/// A per-node protocol state machine.
///
/// Implementations hold whatever per-node state the protocol needs (seen
/// transaction sets, virtual-source flags, DC-net round state, …) and react
/// to events through the [`Context`].
pub trait ProtocolNode: Sized {
    /// The message type this protocol exchanges.
    type Message: Payload;

    /// Called once per node before any event is processed.
    fn on_init(&mut self, ctx: &mut Context<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Called when a message from `from` arrives at this node.
    fn on_message(
        &mut self,
        from: NodeId,
        message: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Called when a timer previously set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, Self::Message>) {
        let _ = (tag, ctx);
    }
}

/// An in-flight payload: owned for point-to-point sends, reference-counted
/// for fan-outs so the queue holds one copy regardless of the target count.
#[derive(Debug)]
enum PayloadSlot<M> {
    Owned(M),
    Shared(Rc<M>),
}

impl<M: Clone> PayloadSlot<M> {
    /// Takes ownership of the payload, cloning only when other in-flight
    /// copies still share it (the last recipient gets the original).
    fn into_message(self) -> M {
        match self {
            PayloadSlot::Owned(message) => message,
            PayloadSlot::Shared(shared) => {
                Rc::try_unwrap(shared).unwrap_or_else(|shared| (*shared).clone())
            }
        }
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        message: PayloadSlot<M>,
        bytes: usize,
        kind: &'static str,
    },
    Timer {
        node: NodeId,
        tag: u64,
    },
}

#[derive(Debug)]
struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<M> WheelItem for Event<M> {
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// The discrete-event simulator; see the [module documentation](self) for an
/// overview and example.
#[derive(Debug)]
pub struct Simulator<N: ProtocolNode> {
    graph: Graph,
    /// Cold per-node state: the protocol structs themselves (keys, buffers,
    /// membership tables), touched only inside the owning node's handlers.
    nodes: Vec<N>,
    /// Hot per-node state in struct-of-arrays form: the seen/phase/counter
    /// lanes consulted on every event (see [`HotState`]).
    hot: HotState,
    config: SimConfig,
    /// Pending events, ordered by `(at, seq)`. A bucketed time-wheel (see
    /// [`wheel`]) rather than one global heap: the bounded latency models
    /// let most pushes be O(1) bucket appends.
    queue: TimeWheel<Event<N::Message>>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    metrics: Metrics,
    initialized: bool,
}

impl<N: ProtocolNode> Simulator<N> {
    /// Creates a simulator over `graph` with one state machine per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the number of graph nodes.
    pub fn new(graph: Graph, nodes: Vec<N>, config: SimConfig) -> Self {
        let n = graph.node_count();
        Self::assemble(
            graph,
            nodes,
            HotState::new(n),
            TimeWheel::empty(),
            Metrics::new(n),
            config,
        )
    }

    /// Creates a simulator like [`Simulator::new`], checking the event
    /// queue, metrics and hot-lane storage out of `arena` instead of
    /// allocating them.
    ///
    /// Pair with [`Simulator::into_parts_in`] to return the storage after
    /// the run; see [`TrialArena`] for the trial lifecycle.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the number of graph nodes.
    pub fn new_in(arena: &mut TrialArena, graph: Graph, nodes: Vec<N>, config: SimConfig) -> Self
    where
        N::Message: 'static,
    {
        let n = graph.node_count();
        let queue = arena.take_queue::<Event<N::Message>>();
        Self::assemble(graph, nodes, arena.hot(n), queue, arena.metrics(n), config)
    }

    fn assemble(
        graph: Graph,
        nodes: Vec<N>,
        hot: HotState,
        mut queue: TimeWheel<Event<N::Message>>,
        metrics: Metrics,
        config: SimConfig,
    ) -> Self {
        assert_eq!(
            graph.node_count(),
            nodes.len(),
            "need exactly one protocol state machine per graph node ({} vs {})",
            graph.node_count(),
            nodes.len()
        );
        if let Err(error) = config.latency.validate() {
            panic!("{error}");
        }
        queue.reset(wheel::width_for(config.latency.max_delay()));
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            graph,
            nodes,
            hot,
            config,
            queue,
            now: 0,
            seq: 0,
            rng,
            metrics,
            initialized: false,
        }
    }

    /// The overlay graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Immutable access to all node states, indexed by [`NodeId::index`].
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The hot per-node lanes (seen flags, phase tags, counters), for
    /// post-run inspection.
    pub fn hot(&self) -> &HotState {
        &self.hot
    }

    /// Consumes the simulator, returning the node states and metrics.
    pub fn into_parts(self) -> (Vec<N>, Metrics) {
        (self.nodes, self.metrics)
    }

    /// Like [`Simulator::into_parts`], but returns the graph, event-queue
    /// buffer and hot lanes to `arena` for the next trial to reuse.
    pub fn into_parts_in(self, arena: &mut TrialArena) -> (Vec<N>, Metrics)
    where
        N::Message: 'static,
    {
        arena.store_graph(self.graph);
        arena.store_queue(self.queue);
        arena.store_hot(self.hot);
        (self.nodes, self.metrics)
    }

    /// Runs `on_init` on every node (idempotent; invoked automatically by
    /// [`Simulator::run`] and [`Simulator::trigger`]).
    fn ensure_initialized(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for index in 0..self.nodes.len() {
            self.dispatch(NodeId::new(index), |node, ctx| node.on_init(ctx));
        }
    }

    /// Invokes `f` on the state machine of `node` with a live context, then
    /// applies all recorded actions. This is how experiments start a
    /// broadcast: trigger the originator and let it send its first messages.
    pub fn trigger<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut N, &mut Context<'_, N::Message>),
    {
        self.ensure_initialized();
        self.dispatch(node, f);
    }

    fn dispatch<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut N, &mut Context<'_, N::Message>),
    {
        let mut actions: Vec<Action<N::Message>> = Vec::new();
        {
            let neighbors = self.graph.neighbors(node);
            let mut ctx = Context {
                node,
                now: self.now,
                neighbors,
                node_count: self.graph.node_count(),
                rng: &mut self.rng,
                hot: &mut self.hot,
                actions: &mut actions,
            };
            f(&mut self.nodes[node.index()], &mut ctx);
        }
        self.apply_actions(node, actions);
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action<N::Message>>) {
        for action in actions {
            match action {
                Action::Send { to, message } => {
                    let delay = self.config.latency.sample(node, to, &mut self.rng);
                    let at = self.now.saturating_add(delay);
                    let kind = message.kind();
                    let bytes = message.size_bytes();
                    self.metrics.record_send(kind, bytes);
                    if at <= self.config.max_time {
                        let seq = self.next_seq();
                        self.push_event(Event {
                            at,
                            seq,
                            kind: EventKind::Deliver {
                                from: node,
                                to,
                                message: PayloadSlot::Owned(message),
                                bytes,
                                kind,
                            },
                        });
                    }
                }
                Action::Broadcast { message, excluded } => {
                    let kind = message.kind();
                    let bytes = message.size_bytes();
                    let kind_id = self.metrics.intern_kind(kind);
                    let shared = Rc::new(message);
                    // The loop iterates the neighbor slice in place (the
                    // whole point is not to allocate a target list), which
                    // keeps `self.graph` borrowed — so `&mut self` helpers
                    // like next_seq()/push_event() are unavailable here and
                    // the seq bump and queue pushes go through disjoint
                    // field borrows directly. They must stay equivalent to
                    // the helpers used by the Send arm above. The whole
                    // fan-out goes through one bulk-push session, which
                    // hoists the wheel's bucket-routing threshold out of
                    // the per-neighbor path.
                    let mut batch = self.queue.bulk();
                    for &to in self.graph.neighbors(node) {
                        if excluded.contains(&to) {
                            continue;
                        }
                        let delay = self.config.latency.sample(node, to, &mut self.rng);
                        let at = self.now.saturating_add(delay);
                        self.metrics.record_send_id(kind_id, bytes);
                        if at <= self.config.max_time {
                            let seq = self.seq;
                            self.seq += 1;
                            batch.push(Event {
                                at,
                                seq,
                                kind: EventKind::Deliver {
                                    from: node,
                                    to,
                                    message: PayloadSlot::Shared(Rc::clone(&shared)),
                                    bytes,
                                    kind,
                                },
                            });
                        }
                    }
                }
                Action::Timer { delay, tag } => {
                    let at = self.now.saturating_add(delay.max(1));
                    if at <= self.config.max_time {
                        let seq = self.next_seq();
                        self.push_event(Event {
                            at,
                            seq,
                            kind: EventKind::Timer { node, tag },
                        });
                    }
                }
                Action::Deliver => {
                    self.metrics.record_delivery(node, self.now);
                }
                Action::Counter { name, amount } => {
                    self.metrics.record_counter(name, amount);
                }
            }
        }
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    fn push_event(&mut self, event: Event<N::Message>) {
        self.queue.push(event);
    }

    /// Processes a single event. Returns `false` when the queue is empty or
    /// a configured limit has been reached.
    pub fn step(&mut self) -> bool {
        self.ensure_initialized();
        if self.metrics.events_processed >= self.config.max_events {
            return false;
        }
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.now, "event queue must be monotone");
        self.now = event.at;
        self.metrics.events_processed += 1;
        match event.kind {
            EventKind::Deliver {
                from,
                to,
                message,
                bytes,
                kind,
            } => {
                if self.config.churn.is_down(to, self.now) {
                    self.metrics.record_counter("dropped-offline", 1);
                    return true;
                }
                if self.config.record_trace {
                    self.metrics.trace.push(TraceEntry {
                        at: self.now,
                        from,
                        to,
                        kind,
                        bytes,
                    });
                }
                let message = message.into_message();
                self.dispatch(to, |node, ctx| node.on_message(from, message, ctx));
            }
            EventKind::Timer { node, tag } => {
                if self.config.churn.is_down(node, self.now) {
                    self.metrics.record_counter("dropped-offline", 1);
                    return true;
                }
                self.dispatch(node, |n, ctx| n.on_timer(tag, ctx));
            }
        }
        true
    }

    /// Runs the simulation to quiescence (empty event queue) or until a
    /// configured limit is hit, and returns the collected metrics.
    pub fn run(&mut self) -> &Metrics {
        self.ensure_initialized();
        while self.step() {}
        self.metrics.finished_at = self.now;
        &self.metrics
    }

    /// Runs the simulation until simulated time `deadline` (inclusive),
    /// leaving later events queued.
    pub fn run_until(&mut self, deadline: SimTime) -> &Metrics {
        self.ensure_initialized();
        loop {
            match self.queue.next_at() {
                Some(at) if at <= deadline => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        self.metrics.finished_at = self.now;
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::TestPayload;
    use crate::topology;

    /// A flooding node used to exercise the simulator machinery itself.
    #[derive(Default)]
    struct FloodNode {
        seen: bool,
    }

    impl ProtocolNode for FloodNode {
        type Message = TestPayload;

        fn on_message(
            &mut self,
            from: NodeId,
            message: TestPayload,
            ctx: &mut Context<'_, TestPayload>,
        ) {
            if self.seen {
                return;
            }
            self.seen = true;
            ctx.mark_delivered();
            ctx.send_to_neighbors_except(message, &[from]);
        }
    }

    fn flood_sim(n: usize, seed: u64) -> Simulator<FloodNode> {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = topology::random_regular(n, 4, &mut rng).unwrap();
        let nodes = (0..n).map(|_| FloodNode::default()).collect();
        Simulator::new(
            graph,
            nodes,
            SimConfig {
                seed,
                record_trace: true,
                ..SimConfig::default()
            },
        )
    }

    fn start_flood(sim: &mut Simulator<FloodNode>, origin: NodeId) {
        sim.trigger(origin, |node, ctx| {
            node.seen = true;
            ctx.mark_delivered();
            ctx.send_to_neighbors_except(TestPayload::new("flood", 250), &[]);
        });
    }

    #[test]
    fn flood_reaches_every_node() {
        let mut sim = flood_sim(100, 1);
        start_flood(&mut sim, NodeId::new(0));
        let edge_count = sim.graph().edge_count() as u64;
        let node_count = sim.graph().node_count() as u64;
        let metrics = sim.run();
        assert_eq!(metrics.delivered_count(), 100);
        assert_eq!(metrics.coverage(), 1.0);
        // Each node forwards to (deg - 1) neighbours except the origin which
        // uses deg; total messages are bounded by 2 * |E|.
        assert!(metrics.messages_sent <= 2 * edge_count);
        assert!(metrics.messages_sent >= node_count - 1);
    }

    #[test]
    fn runs_are_deterministic_under_fixed_seed() {
        let run = |seed| {
            let mut sim = flood_sim(60, seed);
            start_flood(&mut sim, NodeId::new(3));
            let m = sim.run().clone();
            (m.messages_sent, m.delivered_at.clone(), m.finished_at)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7).2,
            run(8).2,
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn trace_is_recorded_when_enabled() {
        let mut sim = flood_sim(30, 2);
        start_flood(&mut sim, NodeId::new(0));
        let metrics = sim.run();
        assert_eq!(metrics.trace.len() as u64, metrics.messages_sent);
        // Trace times are non-decreasing because it is filled in delivery order.
        assert!(metrics.trace.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(metrics
            .trace
            .iter()
            .all(|t| t.kind == "flood" && t.bytes == 250));
    }

    #[test]
    fn trace_not_recorded_when_disabled() {
        let mut rng = StdRng::seed_from_u64(3);
        let graph = topology::random_regular(20, 4, &mut rng).unwrap();
        let nodes = (0..20).map(|_| FloodNode::default()).collect();
        let mut sim = Simulator::new(graph, nodes, SimConfig::default());
        start_flood(&mut sim, NodeId::new(0));
        assert!(sim.run().trace.is_empty());
    }

    #[test]
    fn max_events_limit_stops_the_run() {
        let mut sim = {
            let mut rng = StdRng::seed_from_u64(4);
            let graph = topology::random_regular(200, 6, &mut rng).unwrap();
            let nodes = (0..200).map(|_| FloodNode::default()).collect();
            Simulator::new(
                graph,
                nodes,
                SimConfig {
                    max_events: 50,
                    ..SimConfig::default()
                },
            )
        };
        start_flood(&mut sim, NodeId::new(0));
        let metrics = sim.run();
        assert!(metrics.events_processed <= 50);
        assert!(metrics.delivered_count() < 200);
    }

    #[test]
    fn max_time_limit_drops_late_events() {
        let graph = topology::line(50).unwrap();
        let nodes = (0..50).map(|_| FloodNode::default()).collect();
        let mut sim = Simulator::new(
            graph,
            nodes,
            SimConfig {
                latency: LatencyModel::Constant { delay: 1000 },
                max_time: 10_000,
                ..SimConfig::default()
            },
        );
        start_flood(&mut sim, NodeId::new(0));
        let metrics = sim.run();
        // Along a line with 1 ms hops and a 10 ms horizon only ~10 hops complete.
        assert!(metrics.delivered_count() <= 12);
        assert!(metrics.finished_at <= 10_000);
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let graph = topology::line(10).unwrap();
        let nodes = (0..10).map(|_| FloodNode::default()).collect();
        let mut sim = Simulator::new(
            graph,
            nodes,
            SimConfig {
                latency: LatencyModel::Constant { delay: 100 },
                ..SimConfig::default()
            },
        );
        start_flood(&mut sim, NodeId::new(0));
        let mid = sim.run_until(450).delivered_count();
        assert!(
            mid < 10,
            "only part of the line should be covered, got {mid}"
        );
        let full = sim.run().delivered_count();
        assert_eq!(full, 10);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl ProtocolNode for TimerNode {
            type Message = TestPayload;
            fn on_init(&mut self, ctx: &mut Context<'_, TestPayload>) {
                ctx.set_timer(300, 3);
                ctx.set_timer(100, 1);
                ctx.set_timer(200, 2);
            }
            fn on_message(&mut self, _: NodeId, _: TestPayload, _: &mut Context<'_, TestPayload>) {}
            fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, TestPayload>) {
                self.fired.push(tag);
                if tag == 3 {
                    ctx.record("last-timer");
                }
            }
        }
        let graph = Graph::new(1);
        let mut sim = Simulator::new(
            graph,
            vec![TimerNode { fired: vec![] }],
            SimConfig::default(),
        );
        let metrics = sim.run();
        assert_eq!(metrics.counter("last-timer"), 1);
        assert_eq!(sim.node(NodeId::new(0)).fired, vec![1, 2, 3]);
    }

    #[test]
    fn fully_excluded_broadcast_leaves_no_trace_of_the_kind() {
        // A broadcast with no eligible targets must not create phantom
        // metrics entries for its (never actually sent) kind.
        struct LonelyNode;
        impl ProtocolNode for LonelyNode {
            type Message = TestPayload;
            fn on_init(&mut self, ctx: &mut Context<'_, TestPayload>) {
                ctx.send_to_neighbors_except(TestPayload::new("lonely", 9), &[]);
            }
            fn on_message(&mut self, _: NodeId, _: TestPayload, _: &mut Context<'_, TestPayload>) {}
        }
        // A single isolated node: no neighbours, so the fan-out is empty.
        let mut sim = Simulator::new(Graph::new(1), vec![LonelyNode], SimConfig::default());
        let metrics = sim.run();
        assert_eq!(metrics.messages_sent, 0);
        assert_eq!(metrics.messages_of_kind("lonely"), 0);
        assert_eq!(metrics.bytes_of_kind("lonely"), 0);
        assert!(metrics.messages_by_kind().is_empty());
        assert!(metrics.bytes_by_kind().is_empty());
    }

    #[test]
    fn counters_and_custom_records() {
        struct CounterNode;
        impl ProtocolNode for CounterNode {
            type Message = TestPayload;
            fn on_init(&mut self, ctx: &mut Context<'_, TestPayload>) {
                ctx.record("init");
                ctx.record_many("weighted", 5);
            }
            fn on_message(&mut self, _: NodeId, _: TestPayload, _: &mut Context<'_, TestPayload>) {}
        }
        let mut sim = Simulator::new(
            Graph::new(3),
            vec![CounterNode, CounterNode, CounterNode],
            SimConfig::default(),
        );
        let metrics = sim.run();
        assert_eq!(metrics.counter("init"), 3);
        assert_eq!(metrics.counter("weighted"), 15);
    }

    #[test]
    #[should_panic(expected = "one protocol state machine per graph node")]
    fn mismatched_node_count_panics() {
        let _ = Simulator::new(
            Graph::new(3),
            vec![FloodNode::default()],
            SimConfig::default(),
        );
    }

    #[test]
    fn into_parts_returns_final_state() {
        let mut sim = flood_sim(10, 6);
        start_flood(&mut sim, NodeId::new(0));
        sim.run();
        let (nodes, metrics) = sim.into_parts();
        assert_eq!(nodes.len(), 10);
        assert!(nodes.iter().all(|n| n.seen));
        assert_eq!(metrics.delivered_count(), 10);
    }
}
