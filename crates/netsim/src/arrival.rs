//! Poisson arrival processes for steady-state traffic generation.
//!
//! Every experiment before the steady-state driver broadcast exactly one
//! transaction per trial. Sustained-load runs instead inject transactions
//! as a Poisson process: exponentially distributed inter-arrival gaps with
//! a configured mean rate, truncated at a horizon. The arrival times are
//! precomputed from the trial RNG *before* the simulation starts, so the
//! schedule is a pure function of the seed and the simulation replays it
//! through ordinary timer events on the wheel — no new event source, no new
//! nondeterminism.

use crate::time::{SimTime, SECOND};
use rand::Rng;

/// Errors validating an arrival rate.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalRateError {
    /// The rate must be a finite number (NaN and infinities are rejected).
    NotFinite {
        /// The offending rate.
        rate: f64,
    },
    /// The rate must be strictly positive.
    NotPositive {
        /// The offending rate.
        rate: f64,
    },
}

impl std::fmt::Display for ArrivalRateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrivalRateError::NotFinite { rate } => {
                write!(f, "arrival rate {rate} is not a finite number")
            }
            ArrivalRateError::NotPositive { rate } => {
                write!(f, "arrival rate {rate} must be strictly positive")
            }
        }
    }
}

impl std::error::Error for ArrivalRateError {}

/// Validates an arrival rate in transactions per second.
///
/// # Errors
///
/// Rejects NaN, infinities, zero and negative rates.
pub fn validate_rate(rate: f64) -> Result<(), ArrivalRateError> {
    if !rate.is_finite() {
        return Err(ArrivalRateError::NotFinite { rate });
    }
    if rate <= 0.0 {
        return Err(ArrivalRateError::NotPositive { rate });
    }
    Ok(())
}

/// Samples a Poisson arrival schedule: strictly increasing [`SimTime`]s in
/// `(0, horizon]` with exponentially distributed gaps of mean
/// `SECOND / rate_per_second`.
///
/// Arrival times are strictly increasing and start at 1 µs or later, so
/// each can be scheduled as a timer delay from simulation start (the
/// simulator clamps timer delays to ≥ 1 µs; pre-shifting here keeps the
/// precomputed schedule and the fired events identical). An empty schedule
/// (horizon shorter than the first gap) is valid.
///
/// # Errors
///
/// Propagates [`validate_rate`] failures.
pub fn poisson_arrivals<R: Rng + ?Sized>(
    rate_per_second: f64,
    horizon: SimTime,
    rng: &mut R,
) -> Result<Vec<SimTime>, ArrivalRateError> {
    validate_rate(rate_per_second)?;
    let mean_gap = SECOND as f64 / rate_per_second;
    let mut arrivals = Vec::new();
    let mut at: SimTime = 0;
    loop {
        let uniform: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = -(uniform.ln()) * mean_gap;
        // Exponential gaps are positive; rounding can still produce 0, so
        // clamp to the 1 µs tick that keeps arrival times strictly
        // increasing. The cast saturates for absurd rates, which the
        // horizon check below turns into an empty tail.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let gap = (gap.round().max(1.0)) as SimTime;
        at = at.saturating_add(gap);
        if at > horizon {
            return Ok(arrivals);
        }
        arrivals.push(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(matches!(
            validate_rate(f64::NAN),
            Err(ArrivalRateError::NotFinite { .. })
        ));
        assert!(matches!(
            validate_rate(f64::INFINITY),
            Err(ArrivalRateError::NotFinite { .. })
        ));
        assert_eq!(
            validate_rate(0.0),
            Err(ArrivalRateError::NotPositive { rate: 0.0 })
        );
        assert_eq!(
            validate_rate(-2.5),
            Err(ArrivalRateError::NotPositive { rate: -2.5 })
        );
        assert!(validate_rate(0.1).is_ok());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(poisson_arrivals(f64::NAN, SECOND, &mut rng).is_err());
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_within_horizon() {
        let mut rng = StdRng::seed_from_u64(7);
        let horizon = 30 * SECOND;
        let arrivals = poisson_arrivals(50.0, horizon, &mut rng).unwrap();
        assert!(!arrivals.is_empty());
        assert!(arrivals[0] >= 1);
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        assert!(*arrivals.last().unwrap() <= horizon);
    }

    #[test]
    fn empirical_rate_matches_the_configured_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let horizon = 200 * SECOND;
        let rate = 25.0;
        let arrivals = poisson_arrivals(rate, horizon, &mut rng).unwrap();
        let expected = rate * 200.0;
        let got = arrivals.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "got {got} arrivals, expected ≈{expected}"
        );
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            poisson_arrivals(10.0, 5 * SECOND, &mut rng).unwrap()
        };
        assert_eq!(sample(3), sample(3));
        assert_ne!(sample(3), sample(4));
    }

    #[test]
    fn short_horizon_yields_an_empty_schedule() {
        let mut rng = StdRng::seed_from_u64(2);
        // Mean gap of 100 s against a 1 µs horizon: no arrival fits.
        let arrivals = poisson_arrivals(0.01, 1, &mut rng).unwrap();
        assert!(arrivals.is_empty());
    }
}
