//! # fnp-netsim — discrete-event peer-to-peer network simulator
//!
//! The evaluation of *"A Flexible Network Approach to Privacy of Blockchain
//! Transactions"* (ICDCS 2018) studies how transactions disseminate over a
//! peer-to-peer overlay of roughly a thousand nodes, how many messages each
//! dissemination strategy costs, and what an adversary observing part of
//! the network can infer about the originator. This crate provides the
//! substrate for all of that:
//!
//! * [`graph`] / [`topology`] — the overlay graph and generators for the
//!   standard topology families (random regular "Bitcoin-like" overlays,
//!   Erdős–Rényi, Watts–Strogatz, Barabási–Albert, rings, lines, trees…).
//! * [`sim`] — the deterministic discrete-event simulator. Protocols are
//!   [`ProtocolNode`] state machines reacting to messages and timers via a
//!   [`Context`] handle.
//! * [`latency`] — link-latency models (constant, uniform, exponential).
//! * [`metrics`] — per-run aggregates (message/byte counts by kind,
//!   delivery times, coverage latency) and the full transmission trace the
//!   adversary estimators replay.
//! * [`stats`] — means, percentiles and entropy helpers for experiment
//!   reports.
//! * [`runner`] — the parallel trial engine: fans independent seeded runs
//!   out over scoped worker threads with results in deterministic plan
//!   order, including flattened cell×run grids ([`GridPlan`]).
//! * [`hot`] — struct-of-arrays storage for the hot per-node protocol
//!   fields (seen flags, phase tags, counters), kept out of the cold node
//!   structs so the event loop's duplicate checks stay in cache.
//! * [`arena`] — per-worker [`TrialArena`]s that recycle graph, queue,
//!   metrics and node-storage allocations between trials.
//! * [`arrival`] / [`lanes`] — steady-state building blocks: Poisson
//!   arrival schedules precomputed from the trial seed, and a pool of
//!   per-transaction hot-lane sets so overlapping broadcasts never share
//!   duplicate-suppression state.
//!
//! The simulator is single-threaded and deterministic under a fixed
//! [`SimConfig::seed`]; experiment harnesses parallelise across *runs*, not
//! within them, via [`TrialRunner`].
//!
//! # Example: plain flooding on a random regular overlay
//!
//! ```
//! use fnp_netsim::{
//!     topology, Context, LatencyModel, NodeId, Payload, ProtocolNode, SimConfig, Simulator,
//! };
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! #[derive(Clone, Debug)]
//! struct Tx;
//! impl Payload for Tx {
//!     fn kind(&self) -> &'static str { "tx" }
//! }
//!
//! #[derive(Default)]
//! struct Flooder { seen: bool }
//! impl ProtocolNode for Flooder {
//!     type Message = Tx;
//!     fn on_message(&mut self, from: NodeId, msg: Tx, ctx: &mut Context<'_, Tx>) {
//!         if !std::mem::replace(&mut self.seen, true) {
//!             ctx.mark_delivered();
//!             ctx.send_to_neighbors_except(msg, &[from]);
//!         }
//!     }
//! }
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let graph = topology::random_regular(100, 8, &mut rng)?;
//! let nodes = (0..100).map(|_| Flooder::default()).collect();
//! let mut sim = Simulator::new(graph, nodes, SimConfig::default());
//! sim.trigger(NodeId::new(0), |node, ctx| {
//!     node.seen = true;
//!     ctx.mark_delivered();
//!     ctx.send_to_neighbors_except(Tx, &[]);
//! });
//! let metrics = sim.run();
//! assert_eq!(metrics.coverage(), 1.0);
//! # Ok::<(), fnp_netsim::GenerateTopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The hot lanes cast between u32/u64/usize/f64; every remaining cast site
// must either be provably lossless or carry an explicit allow with the
// reason.
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::cast_sign_loss)]

pub mod arena;
pub mod arrival;
pub mod bits;
pub mod churn;
pub mod graph;
pub mod hot;
pub mod lanes;
pub mod latency;
pub mod message;
pub mod metrics;
pub mod node;
pub mod runner;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;
mod wheel;

pub use arena::TrialArena;
pub use arrival::{poisson_arrivals, validate_rate, ArrivalRateError};
pub use bits::BitSet;
pub use churn::{ChurnSchedule, NodeOutage};
pub use graph::{DiameterEstimator, Graph, GraphBuilder, EXACT_DIAMETER_MAX_NODES};
pub use hot::HotState;
pub use lanes::LanePool;
pub use latency::{InvalidLatencyModel, LatencyModel, EXPONENTIAL_JITTER_CAP};
pub use message::{Payload, TestPayload};
pub use metrics::{KindId, KindRegistry, Metrics, TraceEntry};
pub use node::NodeId;
pub use runner::{derive_seed, GridPlan, TrialPlan, TrialRunner};
pub use sim::{Context, ProtocolNode, SimConfig, Simulator};
pub use stats::{entropy_bits, percentile, summarize, Summary};
pub use time::{as_millis, from_millis, SimTime, MILLISECOND, SECOND};
pub use topology::{GenerateTopologyError, Topology};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every generated topology is connected and has the requested size.
        #[test]
        fn prop_generated_topologies_are_connected(
            n in 5usize..80,
            seed in any::<u64>(),
            family in 0usize..4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let topology = match family {
                0 => Topology::RandomRegular { degree: 4 },
                1 => Topology::ErdosRenyi { edge_probability: 0.2 },
                2 => Topology::Ring,
                _ => Topology::Tree { arity: 3 },
            };
            // Random-regular needs n*degree even; bump n if necessary.
            let n = if matches!(topology, Topology::RandomRegular { .. }) && (n * 4) % 2 != 0 {
                n + 1
            } else {
                n
            };
            let graph = topology.generate(n, &mut rng).unwrap();
            prop_assert_eq!(graph.node_count(), n);
            prop_assert!(graph.is_connected());
        }

        /// BFS distances satisfy the triangle inequality over edges:
        /// |d(u) - d(v)| <= 1 for every edge (u, v).
        #[test]
        fn prop_bfs_distances_are_lipschitz_over_edges(n in 2usize..60, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = topology::erdos_renyi(n, 0.3, &mut rng)
                .or_else(|_| topology::ring(n))
                .unwrap();
            let dist = graph.bfs_distances(NodeId::new(0));
            for (a, b) in graph.edges() {
                let (da, db) = (dist[a.index()], dist[b.index()]);
                if let (Some(da), Some(db)) = (da, db) {
                    prop_assert!(da.abs_diff(db) <= 1);
                }
            }
        }

        /// Flooding over any connected generated topology reaches every node,
        /// regardless of origin, latency model or seed.
        #[test]
        fn prop_flooding_covers_connected_graphs(
            n in 2usize..60,
            origin in 0usize..60,
            seed in any::<u64>(),
        ) {
            #[derive(Default)]
            struct Flooder { seen: bool }
            impl ProtocolNode for Flooder {
                type Message = TestPayload;
                fn on_message(
                    &mut self,
                    from: NodeId,
                    msg: TestPayload,
                    ctx: &mut Context<'_, TestPayload>,
                ) {
                    if !std::mem::replace(&mut self.seen, true) {
                        ctx.mark_delivered();
                        ctx.send_to_neighbors_except(msg, &[from]);
                    }
                }
            }

            let mut rng = StdRng::seed_from_u64(seed);
            let graph = topology::erdos_renyi(n, 0.25, &mut rng)
                .or_else(|_| topology::ring(n))
                .unwrap();
            let origin = NodeId::new(origin % n);
            let nodes = (0..n).map(|_| Flooder::default()).collect();
            let mut sim = Simulator::new(graph, nodes, SimConfig { seed, ..SimConfig::default() });
            sim.trigger(origin, |node, ctx| {
                node.seen = true;
                ctx.mark_delivered();
                ctx.send_to_neighbors_except(TestPayload::new("flood", 1), &[]);
            });
            prop_assert_eq!(sim.run().coverage(), 1.0);
        }
    }
}
