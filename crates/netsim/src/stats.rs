//! Small statistics helpers shared by the experiment harness.
//!
//! Experiments repeat every simulated broadcast over many seeds and report
//! means, standard deviations and percentiles; this module provides those
//! aggregations without pulling in a statistics dependency.

use std::fmt;

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0.0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (0.0 for fewer than two observations).
    pub std_dev: f64,
    /// Smallest observation (0.0 for an empty sample).
    pub min: f64,
    /// Largest observation (0.0 for an empty sample).
    pub max: f64,
    /// Median (0.0 for an empty sample).
    pub median: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.2} sd={:.2} min={:.2} median={:.2} max={:.2} (n={})",
            self.mean, self.std_dev, self.min, self.median, self.max, self.count
        )
    }
}

/// Computes [`Summary`] statistics over `values`.
///
/// Never panics: values are ordered with [`f64::total_cmp`], under which
/// positive NaNs sort after `+∞` (and negative NaNs before `-∞`). An
/// upstream 0/0 therefore surfaces as a NaN `max`/high percentile in the
/// report — visible in the output row — instead of aborting the whole
/// experiment sweep.
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary {
            count: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            median: 0.0,
        };
    }
    let count = values.len();
    let mean = values.iter().sum::<f64>() / count as f64;
    let variance = if count > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
    } else {
        0.0
    };
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Summary {
        count,
        mean,
        std_dev: variance.sqrt(),
        min: sorted[0],
        max: sorted[count - 1],
        median: percentile_sorted(&sorted, 50.0),
    }
}

/// Returns the `p`-th percentile (0–100) of `values` using linear
/// interpolation between closest ranks. Returns 0.0 for an empty slice.
///
/// Values are ordered with [`f64::total_cmp`], so NaN input never panics;
/// positive NaNs rank above `+∞` (see [`summarize`] for the rationale).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    // `p` is clamped into [0, 100], so `rank` lies in [0, len − 1]:
    // non-negative and always in range for usize.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let lower = rank.floor() as usize;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let upper = rank.ceil() as usize;
    if lower == upper {
        sorted[lower]
    } else {
        let weight = rank - lower as f64;
        sorted[lower] * (1.0 - weight) + sorted[upper] * weight
    }
}

/// Shannon entropy (in bits) of a discrete probability distribution.
///
/// Probabilities are normalised first, so any non-negative weights are
/// accepted; zero weights contribute nothing. Returns 0.0 when the total
/// weight is zero.
///
/// Used by the privacy experiments: the entropy of the attacker's posterior
/// over originators is a standard anonymity measure — `log2(n)` bits means
/// perfect obfuscation over `n` candidates, 0 bits means full
/// deanonymisation.
pub fn entropy_bits(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    weights
        .iter()
        .filter(|w| **w > 0.0)
        .map(|w| {
            let p = w / total;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_sample() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn summary_of_single_value() {
        let s = summarize(&[42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample (n-1) standard deviation of this classic example is ~2.138.
        assert!((s.std_dev - 2.13809).abs() < 1e-4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let values = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&values, 0.0), 10.0);
        assert_eq!(percentile(&values, 100.0), 40.0);
        assert!((percentile(&values, 50.0) - 25.0).abs() < 1e-12);
        assert!((percentile(&values, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let values = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&values, -10.0), 1.0);
        assert_eq!(percentile(&values, 200.0), 3.0);
    }

    #[test]
    fn nan_input_is_ordered_last_instead_of_panicking() {
        // Regression: these used to abort the whole sweep via `.expect`.
        let s = summarize(&[2.0, f64::NAN, 1.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert!(s.max.is_nan(), "positive NaN sorts after +inf");
        assert_eq!(s.median, 2.0);
        assert!(s.mean.is_nan());
        assert_eq!(percentile(&[f64::NAN, 5.0, 3.0], 0.0), 3.0);
        assert!(percentile(&[f64::NAN, 5.0, 3.0], 100.0).is_nan());
    }

    #[test]
    fn entropy_of_uniform_distribution() {
        let uniform = vec![0.25; 4];
        assert!((entropy_bits(&uniform) - 2.0).abs() < 1e-12);
        let uniform8 = vec![1.0; 8];
        assert!((entropy_bits(&uniform8) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        assert_eq!(entropy_bits(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_of_empty_or_zero_weights_is_zero() {
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_normalises_weights() {
        assert!((entropy_bits(&[2.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_count() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert!(s.to_string().contains("n=3"));
    }
}
