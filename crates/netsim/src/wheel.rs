//! Bucketed time-wheel event queue.
//!
//! The simulator used to order its event queue with one global
//! `BinaryHeap`, paying `O(log q)` per push and pop where `q` is the number
//! of in-flight events. A million-node flood keeps millions of deliveries
//! in flight at once, so the heap's pointer-chasing comparisons become one
//! of the dominant superlinear costs of large trials.
//!
//! A [`TimeWheel`] exploits what the heap ignores: all latency models are
//! *bounded* ([`LatencyModel::max_delay`](crate::LatencyModel::max_delay)),
//! so an event is almost always scheduled within a known horizon of the
//! current time. The wheel divides that horizon into [`SLOTS`] buckets of
//! fixed width (derived from the model via [`width_for`]);
//! pushing an event is an `O(1)` append to its bucket, and popping sorts
//! one bucket at a time — `O(log b)` amortised for bucket occupancy `b`,
//! independent of the total number of queued events.
//!
//! Three auxiliary structures keep the wheel *exactly* equivalent to the
//! heap (pop order is strictly ascending `(at, seq)`):
//!
//! * an `incoming` min-heap for events that land in the bucket currently
//!   being drained (a handler at time `t` may schedule for `t + 1`, which
//!   can fall into the same bucket — appending to the already-sorted
//!   bucket would break ordering);
//! * an `overflow` min-heap for events beyond the wheel horizon (long
//!   timers); when every bucket has drained, the window advances and the
//!   overflow spills back into the buckets;
//! * in debug builds, a shadow `BinaryHeap` of `(at, seq)` keys mirrors
//!   every push, and every pop `debug_assert!`s that the wheel returns
//!   exactly the key the reference heap would have returned — the entire
//!   pre-wheel implementation is retained as an executable cross-check
//!   that the whole test suite exercises.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of buckets in one wheel rotation.
///
/// With the width from [`TimeWheel::width_for`], one rotation spans four
/// times the latency model's maximum delay, so deliveries never overflow
/// and only long protocol timers take the overflow-heap path.
const SLOTS: usize = 256;

/// How many buckets the model's maximum delay spans (horizon divisor in
/// [`width_for`]).
const BUCKETS_PER_MAX_DELAY: u64 = 64;

/// Retained capacity is clamped on [`TimeWheel::reset`] when it exceeds
/// this factor times the peak occupancy of the trial that just ended
/// (mirrors `SCRATCH_CLAMP_FACTOR` in the topology generators).
const WHEEL_CLAMP_FACTOR: usize = 4;

/// Capacity below this many items is never worth shrinking.
const WHEEL_RETAIN_FLOOR: usize = 256;

/// The bucket width for a latency model whose largest delay is `max_delay`:
/// one wheel rotation then covers four times the model bound, so every
/// delivery scheduled from the current time lands within the rotation.
pub(crate) fn width_for(max_delay: SimTime) -> SimTime {
    (max_delay / BUCKETS_PER_MAX_DELAY).max(1)
}

/// An event that can be scheduled on a [`TimeWheel`].
///
/// `key` must be unique per queued item (the simulator's `(at, seq)` pair),
/// which makes the pop order a total order.
pub(crate) trait WheelItem {
    /// The `(time, tie-break)` ordering key.
    fn key(&self) -> (SimTime, u64);

    /// The scheduled time (first key component).
    fn at(&self) -> SimTime {
        self.key().0
    }
}

/// Wrapper ordering items by [`WheelItem::key`] (needed because payloads
/// themselves are not `Ord`).
#[derive(Debug)]
struct ByKey<T>(T);

impl<T: WheelItem> PartialEq for ByKey<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T: WheelItem> Eq for ByKey<T> {}
impl<T: WheelItem> PartialOrd for ByKey<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: WheelItem> Ord for ByKey<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

/// Bucketed time-wheel priority queue over `(at, seq)` keys; see the
/// [module documentation](self).
#[derive(Debug)]
pub(crate) struct TimeWheel<T> {
    /// Bucket width in simulated time units (≥ 1).
    width: SimTime,
    /// Simulated time of bucket 0's lower edge for the current rotation.
    window_start: SimTime,
    /// Index of the bucket currently being drained.
    cursor: usize,
    /// The fixed ring of buckets (push order; sorted on drain).
    slots: Vec<Vec<ByKey<T>>>,
    /// The cursor bucket, sorted *descending* so the minimum pops off the
    /// end in `O(1)` without moving the rest.
    current: Vec<ByKey<T>>,
    /// Events at or before the cursor bucket's upper edge, pushed after
    /// the bucket was sorted.
    incoming: BinaryHeap<Reverse<ByKey<T>>>,
    /// Events beyond the current rotation's horizon.
    overflow: BinaryHeap<Reverse<ByKey<T>>>,
    /// Total queued events.
    len: usize,
    /// Largest `len` observed since the last [`TimeWheel::reset`]; the
    /// reset-time capacity clamp sizes retained allocations against it.
    peak_len: usize,
    /// Reference implementation (the pre-wheel global heap), mirrored on
    /// every push and checked on every pop in debug builds.
    #[cfg(debug_assertions)]
    shadow: BinaryHeap<Reverse<(SimTime, u64)>>,
}

impl<T: WheelItem> Default for TimeWheel<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T: WheelItem> TimeWheel<T> {
    /// Creates an empty wheel with a placeholder bucket width; call
    /// [`TimeWheel::reset`] with the model-derived width before use. The
    /// ring always holds [`SLOTS`] buckets (empty `Vec`s allocate nothing),
    /// so even an un-reset wheel is safe to push to and pop from.
    pub(crate) fn empty() -> Self {
        Self {
            width: 1,
            window_start: 0,
            cursor: 0,
            slots: std::iter::repeat_with(Vec::new).take(SLOTS).collect(),
            current: Vec::new(),
            incoming: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            peak_len: 0,
            #[cfg(debug_assertions)]
            shadow: BinaryHeap::new(),
        }
    }

    /// Drops all queued events and re-arms the wheel with `width`, keeping
    /// the bucket allocations (the arena-recycling path) — unless they are
    /// more than [`WHEEL_CLAMP_FACTOR`]× oversized for the trial that just
    /// ended, in which case they shrink to its peak occupancy. Without the
    /// clamp a single million-node trial would pin hundreds of megabytes of
    /// bucket and heap capacity in the arena pool for the rest of the
    /// process, even if every later trial is a thousand times smaller.
    pub(crate) fn reset(&mut self, width: SimTime) {
        // Peak occupancy spread over the ring approximates per-bucket need;
        // the clamp factor absorbs the skew of non-uniform delay spreads.
        let per_slot = (self.peak_len / SLOTS).max(WHEEL_RETAIN_FLOOR);
        let per_heap = self.peak_len.max(WHEEL_RETAIN_FLOOR);
        for slot in &mut self.slots {
            slot.clear();
            if slot.capacity() > per_slot * WHEEL_CLAMP_FACTOR {
                slot.shrink_to(per_slot);
            }
        }
        self.slots.resize_with(SLOTS, Vec::new);
        self.current.clear();
        if self.current.capacity() > per_slot * WHEEL_CLAMP_FACTOR {
            self.current.shrink_to(per_slot);
        }
        self.incoming.clear();
        if self.incoming.capacity() > per_heap * WHEEL_CLAMP_FACTOR {
            self.incoming.shrink_to(per_heap);
        }
        self.overflow.clear();
        if self.overflow.capacity() > per_heap * WHEEL_CLAMP_FACTOR {
            self.overflow.shrink_to(per_heap);
        }
        self.width = width.max(1);
        self.window_start = 0;
        self.cursor = 0;
        self.len = 0;
        self.peak_len = 0;
        #[cfg(debug_assertions)]
        {
            self.shadow.clear();
            if self.shadow.capacity() > per_heap * WHEEL_CLAMP_FACTOR {
                self.shadow.shrink_to(per_heap);
            }
        }
    }

    /// Drops all queued events, keeping allocations (used when a wheel is
    /// returned to a [`TrialArena`](crate::TrialArena) pool).
    pub(crate) fn clear(&mut self) {
        let width = self.width;
        self.reset(width);
    }

    /// Number of queued events.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Upper edge of the cursor bucket: events strictly below it can no
    /// longer be appended to the (already sorted) bucket and go through
    /// the incoming heap instead.
    fn cursor_end(&self) -> SimTime {
        self.window_start
            .saturating_add(self.width.saturating_mul(self.cursor as SimTime + 1))
    }

    /// Schedules `item`.
    pub(crate) fn push(&mut self, item: T) {
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
        #[cfg(debug_assertions)]
        self.shadow.push(Reverse(item.key()));
        self.route(ByKey(item));
    }

    /// Opens a bulk-push session for scheduling a burst of events (a
    /// broadcast fan-out). Pushing never moves the cursor or the window, so
    /// the session computes the bucket-routing threshold once instead of
    /// per event; the exclusive borrow guarantees no pop can intervene and
    /// invalidate it.
    pub(crate) fn bulk(&mut self) -> BulkPush<'_, T> {
        let cursor_end = self.cursor_end();
        BulkPush {
            cursor_end,
            wheel: self,
        }
    }

    /// Files `item` into the right structure for its scheduled time.
    fn route(&mut self, item: ByKey<T>) {
        let cursor_end = self.cursor_end();
        self.route_within(item, cursor_end);
    }

    /// [`TimeWheel::route`] with the cursor bucket's upper edge already
    /// computed (it is invariant across pushes, so bulk sessions hoist it).
    fn route_within(&mut self, item: ByKey<T>, cursor_end: SimTime) {
        let at = item.0.at();
        if at < cursor_end {
            // Current bucket (or, after a window jump, before it).
            self.incoming.push(Reverse(item));
            return;
        }
        // `at >= cursor_end > window_start`, so the subtraction is safe.
        let offset = (at - self.window_start) / self.width;
        if offset >= SLOTS as SimTime {
            self.overflow.push(Reverse(item));
        } else {
            // offset < SLOTS = 256, so the cast is lossless.
            #[allow(clippy::cast_possible_truncation)]
            self.slots[offset as usize].push(item);
        }
    }

    /// Advances the cursor until the next event is reachable from the
    /// current bucket or the incoming heap (or the wheel is empty).
    fn ensure_ready(&mut self) {
        loop {
            if !self.current.is_empty() || !self.incoming.is_empty() {
                return;
            }
            // Scanning from `cursor` (not `cursor + 1`) is required for the
            // saturation edge: when `cursor_end` caps at `SimTime::MAX`, an
            // event at exactly `SimTime::MAX` routes into the cursor slot
            // itself instead of the incoming heap. Mid-rotation the cursor
            // slot is empty (its contents were swapped into `current`), so
            // the wider scan never re-reads drained events.
            if let Some(next) = (self.cursor..SLOTS).find(|&j| !self.slots[j].is_empty()) {
                self.cursor = next;
                // The drained (but capacity-holding) buffer swaps back into
                // the ring for reuse.
                std::mem::swap(&mut self.current, &mut self.slots[next]);
                self.current.sort_unstable_by(|a, b| b.cmp(a));
                return;
            }
            // The whole rotation has drained: start the next window at the
            // earliest overflow event and spill everything within reach
            // back into the buckets.
            let Some(Reverse(earliest)) = self.overflow.peek() else {
                return;
            };
            self.window_start = earliest.0.at();
            self.cursor = 0;
            while let Some(Reverse(item)) = self.overflow.peek() {
                let offset = (item.0.at() - self.window_start) / self.width;
                if offset >= SLOTS as SimTime {
                    break;
                }
                let Some(Reverse(item)) = self.overflow.pop() else {
                    unreachable!("peek() just returned an item")
                };
                self.route(item);
            }
            // The earliest spilled event landed at or before the new
            // cursor bucket, so the next iteration returns through the
            // incoming heap.
        }
    }

    /// The scheduled time of the next event, without removing it.
    pub(crate) fn next_at(&mut self) -> Option<SimTime> {
        self.ensure_ready();
        let bucket_head = self.current.last();
        let incoming_head = self.incoming.peek().map(|Reverse(item)| item);
        match (bucket_head, incoming_head) {
            (Some(b), Some(i)) => Some(b.0.at().min(i.0.at())),
            (Some(b), None) => Some(b.0.at()),
            (None, Some(i)) => Some(i.0.at()),
            (None, None) => None,
        }
    }

    /// Removes and returns the event with the smallest `(at, seq)` key.
    pub(crate) fn pop(&mut self) -> Option<T> {
        self.ensure_ready();
        let bucket_key = self.current.last().map(|item| item.0.key());
        let incoming_key = self.incoming.peek().map(|Reverse(item)| item.0.key());
        let from_bucket = match (bucket_key, incoming_key) {
            (Some(b), Some(i)) => b < i,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let item = if from_bucket {
            let Some(item) = self.current.pop() else {
                unreachable!("last() just returned an item")
            };
            item.0
        } else {
            let Some(Reverse(item)) = self.incoming.pop() else {
                unreachable!("peek() just returned an item")
            };
            item.0
        };
        self.len -= 1;
        #[cfg(debug_assertions)]
        {
            let expected = self.shadow.pop().map(|Reverse(key)| key);
            debug_assert_eq!(
                Some(item.key()),
                expected,
                "time-wheel pop order diverged from the reference heap"
            );
        }
        Some(item)
    }

    /// Total retained item capacity across buckets and heaps (test hook for
    /// the capacity-clamp regression suite).
    #[cfg(test)]
    fn retained_capacity(&self) -> usize {
        self.slots.iter().map(Vec::capacity).sum::<usize>()
            + self.current.capacity()
            + self.incoming.capacity()
            + self.overflow.capacity()
    }
}

/// An open bulk-push session on a [`TimeWheel`]; see [`TimeWheel::bulk`].
///
/// Holds the wheel exclusively for its lifetime, so the routing threshold
/// cached at open time stays valid for every push in the burst. Dropping
/// the session ends it; there is nothing to flush, since every push lands
/// in its final structure immediately.
#[derive(Debug)]
pub(crate) struct BulkPush<'a, T> {
    /// The wheel being pushed into.
    wheel: &'a mut TimeWheel<T>,
    /// Upper edge of the cursor bucket, hoisted out of the per-push path
    /// (invariant while the session holds the wheel).
    cursor_end: SimTime,
}

impl<T: WheelItem> BulkPush<'_, T> {
    /// Schedules `item`; equivalent to [`TimeWheel::push`].
    #[inline]
    pub(crate) fn push(&mut self, item: T) {
        self.wheel.len += 1;
        self.wheel.peak_len = self.wheel.peak_len.max(self.wheel.len);
        #[cfg(debug_assertions)]
        self.wheel.shadow.push(Reverse(item.key()));
        self.wheel.route_within(ByKey(item), self.cursor_end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    impl WheelItem for (SimTime, u64) {
        fn key(&self) -> (SimTime, u64) {
            *self
        }
    }

    /// Pops everything and checks the order is strictly ascending `(at,
    /// seq)` — i.e. exactly what the reference heap would produce (the
    /// debug-build shadow heap re-checks this internally on every pop).
    fn drain_sorted(wheel: &mut TimeWheel<(SimTime, u64)>) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        while let Some(item) = wheel.pop() {
            out.push(item);
        }
        let mut expected = out.clone();
        expected.sort_unstable();
        assert_eq!(out, expected, "pop order must be ascending (at, seq)");
        assert_eq!(wheel.len(), 0);
        assert_eq!(wheel.pop(), None);
        out
    }

    #[test]
    fn pops_in_key_order_across_buckets() {
        let mut wheel = TimeWheel::empty();
        wheel.reset(10);
        for (seq, at) in [5u64, 2500, 17, 0, 9999, 17, 3, 640]
            .into_iter()
            .enumerate()
        {
            wheel.push((at, seq as u64));
        }
        let order = drain_sorted(&mut wheel);
        assert_eq!(order.len(), 8);
        assert_eq!(order[0], (0, 3));
        // Equal times pop in seq order.
        assert_eq!(order[3], (17, 2));
        assert_eq!(order[4], (17, 5));
    }

    #[test]
    fn pushes_into_the_current_bucket_stay_ordered() {
        // A handler popping at time t schedules for t+1, which lands in the
        // bucket currently being drained — the incoming heap must keep the
        // merge ordered.
        let mut wheel = TimeWheel::empty();
        wheel.reset(100);
        wheel.push((10, 0));
        wheel.push((90, 1));
        assert_eq!(wheel.pop(), Some((10, 0)));
        wheel.push((11, 2));
        wheel.push((95, 3));
        assert_eq!(wheel.pop(), Some((11, 2)));
        assert_eq!(wheel.pop(), Some((90, 1)));
        assert_eq!(wheel.pop(), Some((95, 3)));
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn far_future_timers_rewindow_through_overflow() {
        let mut wheel = TimeWheel::empty();
        wheel.reset(10);
        // Far beyond the 256-slot horizon (and one at u64::MAX to exercise
        // the saturating window arithmetic).
        wheel.push((1_000_000, 0));
        wheel.push((1_000_005, 1));
        wheel.push((40, 2));
        wheel.push((SimTime::MAX, 3));
        assert_eq!(
            drain_sorted(&mut wheel),
            vec![(40, 2), (1_000_000, 0), (1_000_005, 1), (SimTime::MAX, 3)]
        );
    }

    #[test]
    fn interleaved_push_pop_matches_reference_heap() {
        // Randomised workload mimicking a simulation: pop one event, push a
        // few delayed follow-ups, repeat. The debug-build shadow heap
        // asserts heap equivalence on every single pop.
        let mut rng = StdRng::seed_from_u64(42);
        let mut wheel = TimeWheel::empty();
        wheel.reset(width_for(1050));
        let mut seq = 0u64;
        let mut now = 0;
        for _ in 0..50 {
            wheel.push((rng.gen_range(1..1000), seq));
            seq += 1;
        }
        let mut popped = 0usize;
        let mut total = 50usize;
        while let Some((at, _)) = wheel.pop() {
            assert!(at >= now, "pop order went backwards");
            now = at;
            popped += 1;
            if total < 5000 {
                for _ in 0..rng.gen_range(0..3) {
                    // Mostly bounded-latency deliveries, occasionally a
                    // long timer that must take the overflow path.
                    let delay = if rng.gen_range(0..20) == 0 {
                        rng.gen_range(10_000..500_000)
                    } else {
                        rng.gen_range(1..1050)
                    };
                    wheel.push((now + delay, seq));
                    seq += 1;
                    total += 1;
                }
            }
        }
        assert_eq!(popped, total);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn next_at_previews_without_removing() {
        let mut wheel = TimeWheel::empty();
        wheel.reset(10);
        assert_eq!(wheel.next_at(), None);
        wheel.push((70, 0));
        wheel.push((30, 1));
        assert_eq!(wheel.next_at(), Some(30));
        assert_eq!(wheel.len(), 2);
        assert_eq!(wheel.pop(), Some((30, 1)));
        assert_eq!(wheel.next_at(), Some(70));
    }

    #[test]
    fn reset_and_clear_drop_pending_events() {
        let mut wheel = TimeWheel::empty();
        wheel.reset(10);
        wheel.push((5, 0));
        wheel.push((500_000, 1));
        wheel.clear();
        assert_eq!(wheel.len(), 0);
        assert_eq!(wheel.pop(), None);
        // Re-armed after the clear, including for events that were beyond
        // the previous horizon.
        wheel.push((9, 2));
        assert_eq!(wheel.pop(), Some((9, 2)));
        wheel.reset(1);
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn bulk_push_matches_individual_pushes() {
        // Two wheels fed the same events — one per-push, one through a bulk
        // session opened mid-drain (the broadcast fan-out pattern) — must
        // pop identically. The debug shadow heap re-checks each pop too.
        let mut rng = StdRng::seed_from_u64(7);
        let events: Vec<(SimTime, u64)> = (0..500)
            .map(|seq| (rng.gen_range(0..100_000), seq))
            .collect();
        let mut single = TimeWheel::empty();
        let mut bulk = TimeWheel::empty();
        single.reset(width_for(1050));
        bulk.reset(width_for(1050));
        for &event in &events[..250] {
            single.push(event);
            bulk.push(event);
        }
        // Drain a little so both wheels are mid-rotation with a sorted
        // current bucket before the burst arrives.
        for _ in 0..50 {
            assert_eq!(single.pop(), bulk.pop());
        }
        {
            let mut session = bulk.bulk();
            for &event in &events[250..] {
                session.push(event);
            }
        }
        for &event in &events[250..] {
            single.push(event);
        }
        assert_eq!(drain_sorted(&mut single), drain_sorted(&mut bulk));
    }

    #[test]
    fn reset_clamps_capacity_after_a_large_trial() {
        // Grow-then-shrink-then-grow: a large trial's clear retains its
        // capacity for reuse (the peak matches the demand), but the clear
        // after a subsequent small trial must release it — otherwise one
        // 10⁶-node trial pins hundreds of megabytes in the arena pool for
        // the rest of the process.
        let mut wheel = TimeWheel::empty();
        wheel.reset(width_for(1050));
        let large = 1_000_000usize;
        for seq in 0..large {
            let seq = seq as u64;
            wheel.push((seq % 4000, seq));
        }
        wheel.clear();
        let after_large = wheel.retained_capacity();
        let bound = 1000 * WHEEL_CLAMP_FACTOR + SLOTS * WHEEL_RETAIN_FLOOR * WHEEL_CLAMP_FACTOR;
        assert!(
            after_large >= large / 2,
            "large-trial capacity should be retained for reuse, got {after_large}"
        );
        assert!(
            after_large > bound,
            "large-trial capacity {after_large} must exceed the small-trial bound {bound} \
             for the shrink assertion below to be meaningful"
        );
        // Small trial: its clear sees a small peak and shrinks the pool.
        for seq in 0..1000u64 {
            wheel.push((seq % 4000, seq));
        }
        wheel.clear();
        let after_small = wheel.retained_capacity();
        assert!(
            after_small <= bound,
            "retained capacity {after_small} exceeds clamp bound {bound}"
        );
        // Growing again after the clamp still works.
        for seq in 0..10_000u64 {
            wheel.push((seq % 4000, seq));
        }
        assert_eq!(wheel.len(), 10_000);
        drain_sorted(&mut wheel);
    }

    #[test]
    fn width_for_covers_the_model_bound() {
        assert_eq!(width_for(0), 1);
        assert_eq!(width_for(64), 1);
        assert_eq!(width_for(6400), 100);
        // A full rotation spans at least 4× the model bound.
        let width = width_for(1_050_000);
        assert!(width * SLOTS as SimTime >= 4 * 1_050_000 - SLOTS as SimTime);
    }
}
