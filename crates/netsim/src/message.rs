//! Protocol message payloads.
//!
//! The simulator is generic over the messages a protocol exchanges; the
//! only thing it needs from them is bookkeeping metadata: a *kind* label
//! (so that experiments can report, e.g., how many stem vs. fluff messages
//! Dandelion sent) and an approximate wire size (so that experiments can
//! report byte overhead, which matters for the DC-net phase where message
//! counts alone understate the O(k²) cost).

/// Metadata the simulator needs from every protocol message.
///
/// Implementations are expected to be cheap to clone; the simulator clones a
/// payload once per transmission.
pub trait Payload: Clone + std::fmt::Debug + Send + 'static {
    /// A short, static label identifying the message type, used to group
    /// counters in [`crate::metrics::Metrics`] (e.g. `"flood"`,
    /// `"dc-share"`, `"ad-token"`).
    fn kind(&self) -> &'static str;

    /// Approximate serialised size in bytes, used for byte-overhead
    /// accounting. Defaults to the in-memory size, which is adequate for
    /// relative comparisons between protocols.
    fn size_bytes(&self) -> usize {
        size_of_val(self)
    }
}

/// A trivial payload for tests and examples: a named token with an explicit
/// size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestPayload {
    /// Static label reported as the message kind.
    pub label: &'static str,
    /// Reported wire size in bytes.
    pub size: usize,
}

impl TestPayload {
    /// Creates a test payload with the given label and size.
    pub fn new(label: &'static str, size: usize) -> Self {
        Self { label, size }
    }
}

impl Payload for TestPayload {
    fn kind(&self) -> &'static str {
        self.label
    }

    fn size_bytes(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_payload_reports_its_metadata() {
        let p = TestPayload::new("ping", 64);
        assert_eq!(p.kind(), "ping");
        assert_eq!(p.size_bytes(), 64);
    }

    #[test]
    fn default_size_is_memory_size() {
        #[derive(Clone, Debug)]
        struct Fixed(#[allow(dead_code)] [u8; 16]);
        impl Payload for Fixed {
            fn kind(&self) -> &'static str {
                "fixed"
            }
        }
        assert_eq!(Fixed([0; 16]).size_bytes(), 16);
    }
}
