//! Parallel trial execution.
//!
//! Every experiment in the evaluation repeats one simulated broadcast over
//! many independent seeds and aggregates the per-run results. The runs are
//! embarrassingly parallel — each one owns its overlay, its simulator and
//! its RNG — so this module fans them out over [`std::thread::scope`]
//! worker threads while keeping the *aggregate* bit-for-bit identical to a
//! sequential execution:
//!
//! * results are returned **in plan order** (trial 0 first), regardless of
//!   which worker finished first, and
//! * each trial derives its own seed deterministically from the plan's base
//!   seed via [`derive_seed`], never from shared mutable RNG state.
//!
//! The experiment drivers in `fnp-bench` route every per-run loop through
//! [`TrialRunner::run`]; forcing `threads = 1` reproduces the sequential
//! path exactly, which the cross-crate determinism tests assert.
//!
//! # Examples
//!
//! ```
//! use fnp_netsim::runner::TrialRunner;
//!
//! let runner = TrialRunner::new(4);
//! let squares = runner.run(8, |trial| trial * trial);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use crate::arena::TrialArena;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count of
/// [`TrialRunner::auto`] (`0` or unset = use all available cores).
pub const THREADS_ENV: &str = "FNP_THREADS";

/// Derives the seed of one trial from a plan-wide base seed.
///
/// Uses the splitmix64 finalizer, so neighbouring trial indices map to
/// statistically independent seeds and the derivation is stable across
/// platforms and releases (experiment outputs depend on it).
#[must_use]
pub fn derive_seed(base_seed: u64, trial: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(trial.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A description of a batch of independent trials.
///
/// The plan is the *what* (how many trials, from which base seed); the
/// [`TrialRunner`] is the *how* (over how many threads). Splitting the two
/// lets experiment drivers build plans without deciding on parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialPlan {
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed from which every per-trial seed is derived.
    pub base_seed: u64,
}

impl TrialPlan {
    /// Creates a plan of `trials` trials derived from `base_seed`.
    #[must_use]
    pub fn new(trials: usize, base_seed: u64) -> Self {
        Self { trials, base_seed }
    }

    /// The derived seed of trial `trial` (see [`derive_seed`]).
    #[must_use]
    pub fn seed(&self, trial: usize) -> u64 {
        derive_seed(self.base_seed, trial as u64)
    }
}

/// A two-level trial grid: `cells` experiment cells × `runs` repetitions
/// per cell, flattened into one plan so that every worker stays busy even
/// when `runs` is smaller than the thread count.
///
/// Grid experiments used to parallelise only the `runs` *inside* one
/// (protocol × parameter) cell, leaving workers idle between cells; a
/// `GridPlan` hands the whole cell×run cross product to one
/// [`TrialRunner::run_grid`] call while the results still come back grouped
/// per cell, in cell order — byte-identical aggregation to the nested
/// loops it replaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridPlan {
    /// Number of experiment cells.
    pub cells: usize,
    /// Repetitions per cell.
    pub runs: usize,
}

impl GridPlan {
    /// Creates a plan of `cells` cells with `runs` trials each.
    #[must_use]
    pub fn new(cells: usize, runs: usize) -> Self {
        Self { cells, runs }
    }

    /// Total number of trials in the flattened grid.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.cells * self.runs
    }

    /// Maps a flat trial index back to its `(cell, run)` coordinates.
    ///
    /// Trials are laid out cell-major: cell 0's runs first, then cell 1's,
    /// matching the nested `for cell { for run { … } }` order.
    #[must_use]
    pub fn coordinates(&self, trial: usize) -> (usize, usize) {
        (trial / self.runs, trial % self.runs)
    }
}

/// Fans independent trials out over scoped worker threads.
///
/// The runner is deliberately free of external dependencies: workers are
/// plain [`std::thread::scope`] threads pulling trial indices off a shared
/// atomic cursor, and results land in a slot vector indexed by trial, so
/// the returned `Vec` is always in plan order.
#[derive(Clone, Copy, Debug)]
pub struct TrialRunner {
    threads: usize,
    /// When set, every trial gets a brand-new [`TrialArena`] instead of
    /// reusing its worker's — the reference point the arena-determinism
    /// suite compares reuse against.
    fresh_arenas: bool,
}

impl Default for TrialRunner {
    fn default() -> Self {
        Self::auto()
    }
}

impl TrialRunner {
    /// Creates a runner using exactly `threads` worker threads
    /// (`0` = automatic, see [`TrialRunner::auto`]).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        if threads == 0 {
            Self::auto()
        } else {
            Self {
                threads,
                fresh_arenas: false,
            }
        }
    }

    /// Disables per-worker arena reuse: every trial of this runner receives
    /// a freshly allocated [`TrialArena`].
    ///
    /// Arena reuse must be observationally invisible, so this runner always
    /// produces the same results as the reusing one — that equivalence is
    /// exactly what the `arena_determinism` integration suite asserts, with
    /// this mode as the untainted reference.
    #[must_use]
    pub fn with_fresh_arenas(mut self) -> Self {
        self.fresh_arenas = true;
        self
    }

    /// A runner sized to the machine: the `FNP_THREADS` environment
    /// variable if set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn auto() -> Self {
        let from_env = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        Self {
            threads,
            fresh_arenas: false,
        }
    }

    /// A runner that executes every trial on the calling thread, in order.
    #[must_use]
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            fresh_arenas: false,
        }
    }

    /// Number of worker threads this runner uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `trials` invocations of `f` (one per trial index `0..trials`)
    /// and returns their results **in plan order**.
    ///
    /// `f` must be a pure function of the trial index (plus captured
    /// immutable state): it runs concurrently on multiple threads and must
    /// not rely on execution order. Panics in any trial propagate to the
    /// caller once all workers have stopped.
    pub fn run<T, F>(&self, trials: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_with_arena(trials, |_, trial| f(trial))
    }

    /// Runs `trials` invocations of `f` like [`TrialRunner::run`], but
    /// hands each invocation the *reusable* [`TrialArena`] of the worker
    /// executing it.
    ///
    /// Each worker thread owns exactly one arena for the whole batch, so
    /// consecutive trials on the same worker reuse each other's overlay,
    /// queue, metrics and node-storage allocations instead of rebuilding
    /// them. Arena reuse is observationally invisible: trial results must
    /// not (and, asserted by the arena-determinism suite, do not) depend on
    /// which worker — and therefore which arena history — executed them.
    pub fn run_with_arena<T, F>(&self, trials: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut TrialArena, usize) -> T + Sync,
    {
        let workers = self.threads.min(trials);
        if workers <= 1 {
            let mut arena = TrialArena::new();
            return (0..trials)
                .map(|trial| {
                    if self.fresh_arenas {
                        arena = TrialArena::new();
                    }
                    f(&mut arena, trial)
                })
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..trials).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut arena = TrialArena::new();
                    loop {
                        let trial = cursor.fetch_add(1, Ordering::Relaxed);
                        if trial >= trials {
                            break;
                        }
                        if self.fresh_arenas {
                            arena = TrialArena::new();
                        }
                        let result = f(&mut arena, trial);
                        *slots[trial].lock().expect("trial slot poisoned") = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("trial slot poisoned")
                    .expect("every trial index is claimed exactly once")
            })
            .collect()
    }

    /// Runs the flattened cell×run grid of `plan`, passing `f` the worker's
    /// arena and the trial's `(cell, run)` coordinates, and returns the
    /// results grouped per cell (outer index = cell, inner = run), in plan
    /// order.
    ///
    /// This keeps every worker busy across cell boundaries — with 8 workers
    /// and `runs = 4`, two cells are in flight at once — while the caller
    /// still aggregates cell by cell exactly as with nested per-cell runs.
    pub fn run_grid<T, F>(&self, plan: GridPlan, f: F) -> Vec<Vec<T>>
    where
        T: Send,
        F: Fn(&mut TrialArena, usize, usize) -> T + Sync,
    {
        if plan.runs == 0 {
            return (0..plan.cells).map(|_| Vec::new()).collect();
        }
        let mut flat = self
            .run_with_arena(plan.trials(), |arena, trial| {
                let (cell, run) = plan.coordinates(trial);
                f(arena, cell, run)
            })
            .into_iter();
        (0..plan.cells)
            .map(|_| flat.by_ref().take(plan.runs).collect())
            .collect()
    }

    /// Runs every trial of `plan`, passing `f` the trial index and its
    /// derived seed; results come back in plan order.
    pub fn run_plan<T, F>(&self, plan: TrialPlan, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        self.run(plan.trials, |trial| f(trial, plan.seed(trial)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_plan_order() {
        for threads in [1, 2, 4, 7] {
            let runner = TrialRunner::new(threads);
            let out = runner.run(25, |i| i * 3);
            assert_eq!(out, (0..25).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let work = |trial: usize| {
            // A deterministic, seed-dependent computation standing in for a
            // simulation run.
            let seed = derive_seed(42, trial as u64);
            (0..100u64).fold(seed, |acc, i| {
                acc.rotate_left(7)
                    .wrapping_mul(i | 1)
                    .wrapping_add(trial as u64)
            })
        };
        let sequential = TrialRunner::sequential().run(40, work);
        for threads in [2, 4, 8] {
            assert_eq!(TrialRunner::new(threads).run(40, work), sequential);
        }
    }

    #[test]
    fn zero_and_one_trials_work() {
        let runner = TrialRunner::new(4);
        assert_eq!(runner.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(runner.run(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let runner = TrialRunner::new(64);
        assert_eq!(runner.run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        // Pinned values: experiment outputs depend on this derivation.
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|t| derive_seed(7, t)).collect();
        assert_eq!(seeds.len(), 1000, "derived seeds must not collide");
    }

    #[test]
    fn trial_plan_seeds_match_derive_seed() {
        let plan = TrialPlan::new(5, 99);
        for trial in 0..plan.trials {
            assert_eq!(plan.seed(trial), derive_seed(99, trial as u64));
        }
        let runner = TrialRunner::new(2);
        let seeds = runner.run_plan(plan, |_, seed| seed);
        assert_eq!(
            seeds,
            (0..5).map(|t| derive_seed(99, t)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn grid_plan_coordinates_are_cell_major() {
        let plan = GridPlan::new(3, 4);
        assert_eq!(plan.trials(), 12);
        assert_eq!(plan.coordinates(0), (0, 0));
        assert_eq!(plan.coordinates(3), (0, 3));
        assert_eq!(plan.coordinates(4), (1, 0));
        assert_eq!(plan.coordinates(11), (2, 3));
    }

    #[test]
    fn run_grid_groups_results_per_cell_in_order() {
        for threads in [1, 2, 4, 7] {
            let runner = TrialRunner::new(threads);
            let grouped = runner.run_grid(GridPlan::new(3, 2), |_, cell, run| (cell, run));
            assert_eq!(
                grouped,
                vec![
                    vec![(0, 0), (0, 1)],
                    vec![(1, 0), (1, 1)],
                    vec![(2, 0), (2, 1)],
                ]
            );
        }
    }

    #[test]
    fn run_grid_with_zero_runs_or_cells_is_empty() {
        let runner = TrialRunner::new(2);
        let no_runs: Vec<Vec<u32>> = runner.run_grid(GridPlan::new(3, 0), |_, _, _| 0);
        assert_eq!(no_runs, vec![Vec::new(), Vec::new(), Vec::new()]);
        let no_cells: Vec<Vec<u32>> = runner.run_grid(GridPlan::new(0, 5), |_, _, _| 0);
        assert!(no_cells.is_empty());
    }

    #[test]
    fn arena_reuse_does_not_change_results() {
        // The same workload through the arena-reusing path and the plain
        // path; the worker arenas are exercised (graph + nodes + metrics)
        // and the results must be identical across thread counts.
        let work = |arena: &mut TrialArena, trial: usize| {
            let mut graph = arena.graph(4 + trial % 3);
            for i in 1..graph.node_count() {
                graph.add_edge(crate::node::NodeId::new(i - 1), crate::node::NodeId::new(i));
            }
            let edges = graph.edge_count();
            arena.store_graph(graph);
            edges * 10 + trial
        };
        let sequential = TrialRunner::sequential().run_with_arena(20, work);
        for threads in [2, 4] {
            assert_eq!(
                TrialRunner::new(threads).run_with_arena(20, work),
                sequential
            );
        }
    }

    #[test]
    fn new_zero_means_auto() {
        assert!(TrialRunner::new(0).threads() >= 1);
        assert_eq!(TrialRunner::new(3).threads(), 3);
        assert_eq!(TrialRunner::sequential().threads(), 1);
    }
}
