//! Parallel trial execution.
//!
//! Every experiment in the evaluation repeats one simulated broadcast over
//! many independent seeds and aggregates the per-run results. The runs are
//! embarrassingly parallel — each one owns its overlay, its simulator and
//! its RNG — so this module fans them out over [`std::thread::scope`]
//! worker threads while keeping the *aggregate* bit-for-bit identical to a
//! sequential execution:
//!
//! * results are returned **in plan order** (trial 0 first), regardless of
//!   which worker finished first, and
//! * each trial derives its own seed deterministically from the plan's base
//!   seed via [`derive_seed`], never from shared mutable RNG state.
//!
//! The experiment drivers in `fnp-bench` route every per-run loop through
//! [`TrialRunner::run`]; forcing `threads = 1` reproduces the sequential
//! path exactly, which the cross-crate determinism tests assert.
//!
//! # Examples
//!
//! ```
//! use fnp_netsim::runner::TrialRunner;
//!
//! let runner = TrialRunner::new(4);
//! let squares = runner.run(8, |trial| trial * trial);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count of
/// [`TrialRunner::auto`] (`0` or unset = use all available cores).
pub const THREADS_ENV: &str = "FNP_THREADS";

/// Derives the seed of one trial from a plan-wide base seed.
///
/// Uses the splitmix64 finalizer, so neighbouring trial indices map to
/// statistically independent seeds and the derivation is stable across
/// platforms and releases (experiment outputs depend on it).
#[must_use]
pub fn derive_seed(base_seed: u64, trial: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(trial.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A description of a batch of independent trials.
///
/// The plan is the *what* (how many trials, from which base seed); the
/// [`TrialRunner`] is the *how* (over how many threads). Splitting the two
/// lets experiment drivers build plans without deciding on parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialPlan {
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed from which every per-trial seed is derived.
    pub base_seed: u64,
}

impl TrialPlan {
    /// Creates a plan of `trials` trials derived from `base_seed`.
    #[must_use]
    pub fn new(trials: usize, base_seed: u64) -> Self {
        Self { trials, base_seed }
    }

    /// The derived seed of trial `trial` (see [`derive_seed`]).
    #[must_use]
    pub fn seed(&self, trial: usize) -> u64 {
        derive_seed(self.base_seed, trial as u64)
    }
}

/// Fans independent trials out over scoped worker threads.
///
/// The runner is deliberately free of external dependencies: workers are
/// plain [`std::thread::scope`] threads pulling trial indices off a shared
/// atomic cursor, and results land in a slot vector indexed by trial, so
/// the returned `Vec` is always in plan order.
#[derive(Clone, Copy, Debug)]
pub struct TrialRunner {
    threads: usize,
}

impl Default for TrialRunner {
    fn default() -> Self {
        Self::auto()
    }
}

impl TrialRunner {
    /// Creates a runner using exactly `threads` worker threads
    /// (`0` = automatic, see [`TrialRunner::auto`]).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        if threads == 0 {
            Self::auto()
        } else {
            Self { threads }
        }
    }

    /// A runner sized to the machine: the `FNP_THREADS` environment
    /// variable if set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    #[must_use]
    pub fn auto() -> Self {
        let from_env = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        Self { threads }
    }

    /// A runner that executes every trial on the calling thread, in order.
    #[must_use]
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// Number of worker threads this runner uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `trials` invocations of `f` (one per trial index `0..trials`)
    /// and returns their results **in plan order**.
    ///
    /// `f` must be a pure function of the trial index (plus captured
    /// immutable state): it runs concurrently on multiple threads and must
    /// not rely on execution order. Panics in any trial propagate to the
    /// caller once all workers have stopped.
    pub fn run<T, F>(&self, trials: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(trials);
        if workers <= 1 {
            return (0..trials).map(f).collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..trials).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let trial = cursor.fetch_add(1, Ordering::Relaxed);
                    if trial >= trials {
                        break;
                    }
                    let result = f(trial);
                    *slots[trial].lock().expect("trial slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("trial slot poisoned")
                    .expect("every trial index is claimed exactly once")
            })
            .collect()
    }

    /// Runs every trial of `plan`, passing `f` the trial index and its
    /// derived seed; results come back in plan order.
    pub fn run_plan<T, F>(&self, plan: TrialPlan, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        self.run(plan.trials, |trial| f(trial, plan.seed(trial)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_plan_order() {
        for threads in [1, 2, 4, 7] {
            let runner = TrialRunner::new(threads);
            let out = runner.run(25, |i| i * 3);
            assert_eq!(out, (0..25).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let work = |trial: usize| {
            // A deterministic, seed-dependent computation standing in for a
            // simulation run.
            let seed = derive_seed(42, trial as u64);
            (0..100u64).fold(seed, |acc, i| {
                acc.rotate_left(7)
                    .wrapping_mul(i | 1)
                    .wrapping_add(trial as u64)
            })
        };
        let sequential = TrialRunner::sequential().run(40, work);
        for threads in [2, 4, 8] {
            assert_eq!(TrialRunner::new(threads).run(40, work), sequential);
        }
    }

    #[test]
    fn zero_and_one_trials_work() {
        let runner = TrialRunner::new(4);
        assert_eq!(runner.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(runner.run(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let runner = TrialRunner::new(64);
        assert_eq!(runner.run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        // Pinned values: experiment outputs depend on this derivation.
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|t| derive_seed(7, t)).collect();
        assert_eq!(seeds.len(), 1000, "derived seeds must not collide");
    }

    #[test]
    fn trial_plan_seeds_match_derive_seed() {
        let plan = TrialPlan::new(5, 99);
        for trial in 0..plan.trials {
            assert_eq!(plan.seed(trial), derive_seed(99, trial as u64));
        }
        let runner = TrialRunner::new(2);
        let seeds = runner.run_plan(plan, |_, seed| seed);
        assert_eq!(
            seeds,
            (0..5).map(|t| derive_seed(99, t)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn new_zero_means_auto() {
        assert!(TrialRunner::new(0).threads() >= 1);
        assert_eq!(TrialRunner::new(3).threads(), 3);
        assert_eq!(TrialRunner::sequential().threads(), 1);
    }
}
