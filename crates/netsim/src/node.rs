//! Node identifiers.
//!
//! Every peer in the simulated network is addressed by a dense, zero-based
//! [`NodeId`]. Dense identifiers let topologies, metrics and adversary
//! bookkeeping use plain vectors instead of hash maps, which matters when a
//! single experiment sweeps thousands of simulated broadcasts.

use std::fmt;

/// Identifier of a node in the simulated peer-to-peer network.
///
/// Node identifiers are dense indices in `0..n` where `n` is the network
/// size; they are assigned by the topology generator and never reused within
/// one simulation.
///
/// # Examples
///
/// ```
/// use fnp_netsim::NodeId;
///
/// let a = NodeId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(format!("{a}"), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from a dense index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// Returns the dense index of this node.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_usize() {
        let id = NodeId::from(17usize);
        assert_eq!(usize::from(id), 17);
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId::new(9)), "n9");
        assert_eq!(format!("{:?}", NodeId::new(9)), "NodeId(9)");
    }

    #[test]
    fn usable_as_map_key() {
        let mut set = std::collections::HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
    }
}
