//! Node identifiers.
//!
//! Every peer in the simulated network is addressed by a dense, zero-based
//! [`NodeId`]. Dense identifiers let topologies, metrics and adversary
//! bookkeeping use plain vectors instead of hash maps, which matters when a
//! single experiment sweeps thousands of simulated broadcasts.

use std::fmt;

/// Identifier of a node in the simulated peer-to-peer network.
///
/// Node identifiers are dense indices in `0..n` where `n` is the network
/// size; they are assigned by the topology generator and never reused within
/// one simulation. Internally an id is a `u32` (4 bytes), so the flat
/// CSR adjacency of a million-node overlay moves half the memory a
/// `usize`-based id would; the API stays in `usize` terms.
///
/// # Examples
///
/// ```
/// use fnp_netsim::NodeId;
///
/// let a = NodeId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(format!("{a}"), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`; network sizes are bounded well
    /// below that (the largest experiment leg is 10⁶ nodes).
    #[allow(clippy::cast_possible_truncation)] // guarded by the assert
    pub const fn new(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "node index exceeds u32 range");
        Self(index as u32)
    }

    /// Returns the dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        Self::new(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_usize() {
        let id = NodeId::from(17usize);
        assert_eq!(usize::from(id), 17);
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId::new(9)), "n9");
        assert_eq!(format!("{:?}", NodeId::new(9)), "NodeId(9)");
    }

    #[test]
    fn usable_as_map_key() {
        let mut set = std::collections::HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
    }
}
