//! Simulation metrics.
//!
//! Every experiment in the paper's evaluation ultimately reduces to a
//! handful of aggregates over one simulated broadcast: how many messages of
//! which kind were sent (§V-A), how many bytes, when each node first
//! received the transaction (latency / fairness, §II), and which node an
//! adversary would blame (privacy, §V-B). [`Metrics`] collects the first
//! three; the optional [`TraceEntry`] log captures the full transmission
//! trace that the `fnp-adversary` estimators replay.
//!
//! # Interned kind accounting
//!
//! Per-send accounting is on the simulator's hottest path: every
//! transmission bumps a per-kind message and byte counter. Kinds are
//! `&'static str` labels, but a `BTreeMap<&'static str, u64>` lookup per
//! send costs string comparisons and pointer chasing. Instead, a
//! [`KindRegistry`] interns each label into a dense [`KindId`] on first
//! use (pointer-equality fast path — same literal, same `&'static str`),
//! and the counters live in plain `Vec<u64>`s indexed by id. The map-shaped
//! API ([`Metrics::messages_by_kind`] etc.) is preserved as views built on
//! demand, so report-generation code is unchanged while the per-send cost
//! drops to an array increment.

use crate::node::NodeId;
use crate::time::SimTime;
use std::collections::BTreeMap;

/// One transmitted message, as seen by an omniscient observer.
///
/// The adversary crate filters this trace down to what *its* nodes could
/// actually observe (messages addressed to adversarial nodes); keeping the
/// full trace in the simulator keeps the protocols themselves oblivious to
/// the attacker, mirroring the honest-but-curious model of §IV-A.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Time the message was *received*.
    pub at: SimTime,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Message kind label (see [`crate::message::Payload::kind`]).
    pub kind: &'static str,
    /// Reported wire size of the message in bytes.
    pub bytes: usize,
}

/// A dense index identifying one interned message-kind label.
///
/// Ids are assigned in first-use order by a [`KindRegistry`] and are only
/// meaningful together with the registry that produced them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KindId(u32);

impl KindId {
    /// The position of this kind in its registry (and in any counter vector
    /// indexed by it).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interns `&'static str` kind labels into dense [`KindId`]s.
///
/// An experiment uses a handful of distinct kinds (typically fewer than
/// ten), so the registry is a small vector scanned linearly with a
/// pointer-equality fast path: two uses of the same string literal share
/// the same `&'static str` address, making the common case a few pointer
/// compares instead of string comparisons or tree walks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KindRegistry {
    names: Vec<&'static str>,
}

/// Converts a registry position into a [`KindId`], checking the narrowing.
/// A registry holds a handful of kinds, so the bound is unreachable in
/// practice; checking keeps the cast honest.
fn kind_id(index: usize) -> KindId {
    KindId(u32::try_from(index).expect("more than u32::MAX distinct message kinds"))
}

impl KindRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `name`, interning it on first use.
    pub fn intern(&mut self, name: &'static str) -> KindId {
        // Fast path: same literal ⇒ same address.
        for (index, &known) in self.names.iter().enumerate() {
            if std::ptr::eq(known, name) {
                return kind_id(index);
            }
        }
        // Slow path: distinct statics with equal contents still map to one id.
        for (index, &known) in self.names.iter().enumerate() {
            if known == name {
                return kind_id(index);
            }
        }
        let id = kind_id(self.names.len());
        self.names.push(name);
        id
    }

    /// Looks up an already-interned kind by content (no interning).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<KindId> {
        self.names
            .iter()
            .position(|&known| known == name)
            .map(kind_id)
    }

    /// The label of an interned id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not come from this registry.
    #[must_use]
    pub fn name(&self, id: KindId) -> &'static str {
        self.names[id.index()]
    }

    /// Number of interned kinds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no kind has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned labels in id order.
    #[must_use]
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }
}

/// Grows `values` to cover `id` and adds `amount` to its slot.
fn bump(values: &mut Vec<u64>, id: KindId, amount: u64) {
    if id.index() >= values.len() {
        values.resize(id.index() + 1, 0);
    }
    values[id.index()] += amount;
}

/// A registry plus one `u64` counter per interned name.
#[derive(Clone, Debug, Default)]
struct KindCounters {
    registry: KindRegistry,
    values: Vec<u64>,
}

impl KindCounters {
    fn reset(&mut self) {
        self.registry.names.clear();
        self.values.clear();
    }

    fn add(&mut self, name: &'static str, amount: u64) -> KindId {
        let id = self.registry.intern(name);
        bump(&mut self.values, id, amount);
        id
    }

    fn add_by_id(&mut self, id: KindId, amount: u64) {
        bump(&mut self.values, id, amount);
    }

    fn get(&self, name: &str) -> u64 {
        // A kind can be interned without ever being counted (a broadcast
        // whose targets were all excluded); treat the missing slot as 0
        // exactly like an unknown kind.
        self.registry
            .get(name)
            .and_then(|id| self.values.get(id.index()))
            .copied()
            .unwrap_or(0)
    }

    fn as_map(&self) -> BTreeMap<&'static str, u64> {
        self.registry
            .names()
            .iter()
            .zip(&self.values)
            .map(|(&name, &value)| (name, value))
            .collect()
    }
}

/// Aggregated counters for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total messages transmitted.
    pub messages_sent: u64,
    /// Total bytes transmitted (as reported by the payloads).
    pub bytes_sent: u64,
    /// Messages grouped by interned payload kind.
    messages_per_kind: KindCounters,
    /// Bytes grouped by interned payload kind (same registry/order as
    /// `messages_per_kind`).
    bytes_per_kind: Vec<u64>,
    /// Custom protocol counters recorded via `Context::record`.
    custom: KindCounters,
    /// For each node, the time it first marked the broadcast as delivered.
    pub delivered_at: Vec<Option<SimTime>>,
    /// Complete transmission trace (only populated when tracing is enabled).
    pub trace: Vec<TraceEntry>,
    /// Number of events processed by the simulator.
    pub events_processed: u64,
    /// Simulated time at which the run ended.
    pub finished_at: SimTime,
}

impl Metrics {
    /// Creates an empty metrics collection for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            delivered_at: vec![None; n],
            ..Self::default()
        }
    }

    /// Resets the collection to the state of a fresh `Metrics::new(n)`,
    /// reusing the counter, delivery and trace allocations (the cheap path
    /// of a [`TrialArena`](crate::TrialArena) checkout).
    pub(crate) fn reset(&mut self, n: usize) {
        self.messages_sent = 0;
        self.bytes_sent = 0;
        self.messages_per_kind.reset();
        self.bytes_per_kind.clear();
        self.custom.reset();
        self.delivered_at.clear();
        self.delivered_at.resize(n, None);
        self.trace.clear();
        self.events_processed = 0;
        self.finished_at = 0;
    }

    /// Records one transmission, returning the interned kind id.
    pub(crate) fn record_send(&mut self, kind: &'static str, bytes: usize) -> KindId {
        let id = self.intern_kind(kind);
        self.record_send_id(id, bytes);
        id
    }

    /// Records one transmission of an already-interned kind.
    pub(crate) fn record_send_id(&mut self, id: KindId, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        self.messages_per_kind.add_by_id(id, 1);
        bump(&mut self.bytes_per_kind, id, bytes as u64);
    }

    /// Interns `kind` without recording a send (used by the simulator to
    /// hoist interning out of fan-out loops).
    pub(crate) fn intern_kind(&mut self, kind: &'static str) -> KindId {
        self.messages_per_kind.registry.intern(kind)
    }

    /// Records the first delivery time of the broadcast at `node`.
    pub(crate) fn record_delivery(&mut self, node: NodeId, at: SimTime) {
        let slot = &mut self.delivered_at[node.index()];
        if slot.is_none() {
            *slot = Some(at);
        }
    }

    /// Increments a custom counter.
    pub(crate) fn record_counter(&mut self, name: &'static str, amount: u64) {
        self.custom.add(name, amount);
    }

    /// The registry of message kinds seen so far, in first-use order.
    pub fn kinds(&self) -> &KindRegistry {
        &self.messages_per_kind.registry
    }

    /// Messages grouped by payload kind (view, built on demand).
    ///
    /// Only kinds that were actually transmitted appear — a kind interned
    /// by a fully-excluded broadcast does not get a phantom zero entry.
    pub fn messages_by_kind(&self) -> BTreeMap<&'static str, u64> {
        self.messages_per_kind
            .registry
            .names()
            .iter()
            .zip(&self.messages_per_kind.values)
            .filter(|&(_, &count)| count > 0)
            .map(|(&name, &count)| (name, count))
            .collect()
    }

    /// Bytes grouped by payload kind (view, built on demand; same key set
    /// as [`Metrics::messages_by_kind`], including kinds whose payloads
    /// report zero bytes).
    pub fn bytes_by_kind(&self) -> BTreeMap<&'static str, u64> {
        self.messages_per_kind
            .registry
            .names()
            .iter()
            .zip(&self.messages_per_kind.values)
            .zip(&self.bytes_per_kind)
            .filter(|&((_, &count), _)| count > 0)
            .map(|((&name, _), &bytes)| (name, bytes))
            .collect()
    }

    /// Custom protocol counters recorded via `Context::record` (view, built
    /// on demand).
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.custom.as_map()
    }

    /// Number of nodes that have received the broadcast.
    pub fn delivered_count(&self) -> usize {
        self.delivered_at.iter().filter(|d| d.is_some()).count()
    }

    /// Fraction of nodes that have received the broadcast, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.delivered_at.is_empty() {
            return 0.0;
        }
        self.delivered_count() as f64 / self.delivered_at.len() as f64
    }

    /// The time by which `fraction` of all nodes had received the broadcast,
    /// or `None` if coverage never reached that fraction.
    ///
    /// `fraction` is clamped into `[0, 1]`. This is the latency metric used
    /// by experiment E10 (time to 50 % / 90 % / 100 % coverage).
    pub fn time_to_coverage(&self, fraction: f64) -> Option<SimTime> {
        let n = self.delivered_at.len();
        if n == 0 {
            return None;
        }
        let fraction = fraction.clamp(0.0, 1.0);
        // `fraction` was clamped into [0, 1] above, so the product lies in
        // [0, n]: non-negative and exactly representable in f64.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let needed = (fraction * n as f64).ceil() as usize;
        if needed == 0 {
            return Some(0);
        }
        let mut times: Vec<SimTime> = self.delivered_at.iter().flatten().copied().collect();
        if times.len() < needed {
            return None;
        }
        times.sort_unstable();
        Some(times[needed - 1])
    }

    /// Messages of one kind (0 if the kind never occurred).
    pub fn messages_of_kind(&self, kind: &str) -> u64 {
        self.messages_per_kind.get(kind)
    }

    /// Bytes of one kind (0 if the kind never occurred).
    pub fn bytes_of_kind(&self, kind: &str) -> u64 {
        self.messages_per_kind
            .registry
            .get(kind)
            .and_then(|id| self.bytes_per_kind.get(id.index()))
            .copied()
            .unwrap_or(0)
    }

    /// Value of a custom counter (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.custom.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_metrics_are_empty() {
        let m = Metrics::new(5);
        assert_eq!(m.messages_sent, 0);
        assert_eq!(m.delivered_count(), 0);
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.time_to_coverage(0.5), None);
        assert_eq!(m.messages_of_kind("flood"), 0);
        assert_eq!(m.counter("whatever"), 0);
        assert!(m.messages_by_kind().is_empty());
        assert!(m.bytes_by_kind().is_empty());
        assert!(m.counters().is_empty());
        assert!(m.kinds().is_empty());
    }

    #[test]
    fn send_accounting_by_kind() {
        let mut m = Metrics::new(3);
        m.record_send("flood", 100);
        m.record_send("flood", 100);
        m.record_send("stem", 50);
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.bytes_sent, 250);
        assert_eq!(m.messages_of_kind("flood"), 2);
        assert_eq!(m.messages_of_kind("stem"), 1);
        assert_eq!(m.bytes_by_kind()["flood"], 200);
        assert_eq!(m.bytes_of_kind("flood"), 200);
        assert_eq!(m.bytes_of_kind("stem"), 50);
        assert_eq!(m.bytes_of_kind("absent"), 0);
    }

    #[test]
    fn delivery_records_only_first_time() {
        let mut m = Metrics::new(2);
        m.record_delivery(NodeId::new(1), 10);
        m.record_delivery(NodeId::new(1), 20);
        assert_eq!(m.delivered_at[1], Some(10));
        assert_eq!(m.delivered_count(), 1);
        assert_eq!(m.coverage(), 0.5);
    }

    #[test]
    fn time_to_coverage_thresholds() {
        let mut m = Metrics::new(4);
        m.record_delivery(NodeId::new(0), 5);
        m.record_delivery(NodeId::new(1), 10);
        m.record_delivery(NodeId::new(2), 20);
        // 3 of 4 delivered.
        assert_eq!(m.time_to_coverage(0.25), Some(5));
        assert_eq!(m.time_to_coverage(0.5), Some(10));
        assert_eq!(m.time_to_coverage(0.75), Some(20));
        assert_eq!(m.time_to_coverage(1.0), None);
        assert_eq!(m.time_to_coverage(0.0), Some(0));
        // Out-of-range fractions clamp.
        assert_eq!(m.time_to_coverage(2.0), None);
        assert_eq!(m.time_to_coverage(-1.0), Some(0));
    }

    #[test]
    fn custom_counters_accumulate() {
        let mut m = Metrics::new(1);
        m.record_counter("dc-collision", 1);
        m.record_counter("dc-collision", 2);
        assert_eq!(m.counter("dc-collision"), 3);
        assert_eq!(m.counters()["dc-collision"], 3);
    }

    #[test]
    fn coverage_of_empty_network_is_zero() {
        let m = Metrics::new(0);
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.time_to_coverage(0.5), None);
    }

    #[test]
    fn registry_assigns_dense_ids_in_first_use_order() {
        let mut reg = KindRegistry::new();
        let a = reg.intern("alpha");
        let b = reg.intern("beta");
        let a2 = reg.intern("alpha");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(a, a2);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.name(a), "alpha");
        assert_eq!(reg.name(b), "beta");
        assert_eq!(reg.get("beta"), Some(b));
        assert_eq!(reg.get("gamma"), None);
        assert_eq!(reg.names(), &["alpha", "beta"]);
    }

    #[test]
    fn registry_unifies_distinct_statics_with_equal_contents() {
        // Two statics with the same content but (potentially) different
        // addresses must intern to the same id — the slow path.
        static A: &str = "same";
        let runtime: &'static str = Box::leak("same".to_string().into_boxed_str());
        let mut reg = KindRegistry::new();
        let a = reg.intern(A);
        let b = reg.intern(runtime);
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn map_views_match_pre_refactor_btreemap_semantics() {
        // The pre-refactor `Metrics` exposed public BTreeMap fields; the
        // views must produce the same sorted key order, the same sums, and
        // the same 0 fallback for unknown kinds.
        let mut m = Metrics::new(2);
        let mut reference_msgs: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut reference_bytes: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (kind, bytes) in [
            ("zeta", 10),
            ("alpha", 20),
            ("zeta", 30),
            ("mid", 5),
            ("alpha", 1),
        ] {
            m.record_send(kind, bytes);
            *reference_msgs.entry(kind).or_insert(0) += 1;
            *reference_bytes.entry(kind).or_insert(0) += bytes as u64;
        }
        assert_eq!(m.messages_by_kind(), reference_msgs);
        assert_eq!(m.bytes_by_kind(), reference_bytes);
        // Sorted iteration order, exactly like the old public field.
        let keys: Vec<&str> = m.messages_by_kind().keys().copied().collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
        // Unknown kinds fall back to 0 through every accessor.
        assert_eq!(m.messages_of_kind("nope"), 0);
        assert_eq!(m.bytes_of_kind("nope"), 0);
        assert_eq!(m.counter("nope"), 0);
        assert_eq!(m.messages_by_kind().get("nope"), None);
    }

    #[test]
    fn interned_but_unsent_kinds_stay_invisible() {
        // A broadcast whose targets are all excluded interns the kind
        // without recording a send. Every accessor must behave exactly as
        // if the kind were unknown: no panic, no phantom zero entries.
        let mut m = Metrics::new(2);
        m.intern_kind("ghost");
        assert_eq!(m.messages_of_kind("ghost"), 0);
        assert_eq!(m.bytes_of_kind("ghost"), 0);
        assert!(m.messages_by_kind().is_empty());
        assert!(m.bytes_by_kind().is_empty());
        // Recording a different kind afterwards (which resizes the counter
        // vectors past the ghost's index) must not resurrect it.
        m.record_send("real", 10);
        assert_eq!(m.messages_of_kind("ghost"), 0);
        assert_eq!(m.bytes_of_kind("ghost"), 0);
        assert_eq!(m.messages_by_kind().len(), 1);
        assert_eq!(m.bytes_by_kind().len(), 1);
        assert_eq!(m.messages_by_kind()["real"], 1);
        // The ghost becomes visible the moment it is genuinely sent.
        m.record_send("ghost", 5);
        assert_eq!(m.messages_of_kind("ghost"), 1);
        assert_eq!(m.bytes_by_kind()["ghost"], 5);
    }

    #[test]
    fn zero_byte_sends_still_appear_in_byte_views() {
        let mut m = Metrics::new(1);
        m.record_send("empty", 0);
        assert_eq!(m.messages_of_kind("empty"), 1);
        assert_eq!(m.bytes_by_kind()["empty"], 0);
        assert_eq!(m.bytes_of_kind("empty"), 0);
    }

    #[test]
    fn record_send_id_matches_record_send() {
        let mut by_name = Metrics::new(1);
        by_name.record_send("x", 7);
        by_name.record_send("x", 7);

        let mut by_id = Metrics::new(1);
        let id = by_id.intern_kind("x");
        by_id.record_send_id(id, 7);
        by_id.record_send_id(id, 7);

        assert_eq!(by_name.messages_by_kind(), by_id.messages_by_kind());
        assert_eq!(by_name.bytes_by_kind(), by_id.bytes_by_kind());
        assert_eq!(by_name.messages_sent, by_id.messages_sent);
        assert_eq!(by_name.bytes_sent, by_id.bytes_sent);
    }

    #[test]
    fn reset_matches_fresh_metrics() {
        let mut m = Metrics::new(3);
        m.record_send("flood", 100);
        m.record_counter("c", 2);
        m.record_delivery(NodeId::new(1), 10);
        m.trace.push(TraceEntry {
            at: 10,
            from: NodeId::new(0),
            to: NodeId::new(1),
            kind: "flood",
            bytes: 100,
        });
        m.events_processed = 5;
        m.finished_at = 10;

        m.reset(2);
        let fresh = Metrics::new(2);
        assert_eq!(m.messages_sent, fresh.messages_sent);
        assert_eq!(m.bytes_sent, fresh.bytes_sent);
        assert_eq!(m.delivered_at, fresh.delivered_at);
        assert_eq!(m.trace, fresh.trace);
        assert_eq!(m.events_processed, fresh.events_processed);
        assert_eq!(m.finished_at, fresh.finished_at);
        assert!(m.messages_by_kind().is_empty());
        assert!(m.counters().is_empty());
        assert!(m.kinds().is_empty());
        // Interning after a reset assigns ids from zero again.
        let mut reset_ids = m;
        assert_eq!(reset_ids.intern_kind("new").index(), 0);
    }

    #[test]
    fn cloned_metrics_preserve_interned_state() {
        let mut m = Metrics::new(1);
        m.record_send("a", 1);
        m.record_counter("c", 4);
        let clone = m.clone();
        assert_eq!(clone.messages_by_kind(), m.messages_by_kind());
        assert_eq!(clone.counters(), m.counters());
    }
}
