//! Simulation metrics.
//!
//! Every experiment in the paper's evaluation ultimately reduces to a
//! handful of aggregates over one simulated broadcast: how many messages of
//! which kind were sent (§V-A), how many bytes, when each node first
//! received the transaction (latency / fairness, §II), and which node an
//! adversary would blame (privacy, §V-B). [`Metrics`] collects the first
//! three; the optional [`TraceEntry`] log captures the full transmission
//! trace that the `fnp-adversary` estimators replay.

use crate::node::NodeId;
use crate::time::SimTime;
use std::collections::BTreeMap;

/// One transmitted message, as seen by an omniscient observer.
///
/// The adversary crate filters this trace down to what *its* nodes could
/// actually observe (messages addressed to adversarial nodes); keeping the
/// full trace in the simulator keeps the protocols themselves oblivious to
/// the attacker, mirroring the honest-but-curious model of §IV-A.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Time the message was *received*.
    pub at: SimTime,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Message kind label (see [`crate::message::Payload::kind`]).
    pub kind: &'static str,
    /// Reported wire size of the message in bytes.
    pub bytes: usize,
}

/// Aggregated counters for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total messages transmitted.
    pub messages_sent: u64,
    /// Total bytes transmitted (as reported by the payloads).
    pub bytes_sent: u64,
    /// Messages grouped by payload kind.
    pub messages_by_kind: BTreeMap<&'static str, u64>,
    /// Bytes grouped by payload kind.
    pub bytes_by_kind: BTreeMap<&'static str, u64>,
    /// Custom protocol counters recorded via `Context::record`.
    pub counters: BTreeMap<&'static str, u64>,
    /// For each node, the time it first marked the broadcast as delivered.
    pub delivered_at: Vec<Option<SimTime>>,
    /// Complete transmission trace (only populated when tracing is enabled).
    pub trace: Vec<TraceEntry>,
    /// Number of events processed by the simulator.
    pub events_processed: u64,
    /// Simulated time at which the run ended.
    pub finished_at: SimTime,
}

impl Metrics {
    /// Creates an empty metrics collection for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            delivered_at: vec![None; n],
            ..Self::default()
        }
    }

    /// Records one transmission.
    pub(crate) fn record_send(&mut self, kind: &'static str, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        *self.messages_by_kind.entry(kind).or_insert(0) += 1;
        *self.bytes_by_kind.entry(kind).or_insert(0) += bytes as u64;
    }

    /// Records the first delivery time of the broadcast at `node`.
    pub(crate) fn record_delivery(&mut self, node: NodeId, at: SimTime) {
        let slot = &mut self.delivered_at[node.index()];
        if slot.is_none() {
            *slot = Some(at);
        }
    }

    /// Increments a custom counter.
    pub(crate) fn record_counter(&mut self, name: &'static str, amount: u64) {
        *self.counters.entry(name).or_insert(0) += amount;
    }

    /// Number of nodes that have received the broadcast.
    pub fn delivered_count(&self) -> usize {
        self.delivered_at.iter().filter(|d| d.is_some()).count()
    }

    /// Fraction of nodes that have received the broadcast, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.delivered_at.is_empty() {
            return 0.0;
        }
        self.delivered_count() as f64 / self.delivered_at.len() as f64
    }

    /// The time by which `fraction` of all nodes had received the broadcast,
    /// or `None` if coverage never reached that fraction.
    ///
    /// `fraction` is clamped into `[0, 1]`. This is the latency metric used
    /// by experiment E10 (time to 50 % / 90 % / 100 % coverage).
    pub fn time_to_coverage(&self, fraction: f64) -> Option<SimTime> {
        let n = self.delivered_at.len();
        if n == 0 {
            return None;
        }
        let fraction = fraction.clamp(0.0, 1.0);
        let needed = (fraction * n as f64).ceil() as usize;
        if needed == 0 {
            return Some(0);
        }
        let mut times: Vec<SimTime> = self.delivered_at.iter().flatten().copied().collect();
        if times.len() < needed {
            return None;
        }
        times.sort_unstable();
        Some(times[needed - 1])
    }

    /// Messages of one kind (0 if the kind never occurred).
    pub fn messages_of_kind(&self, kind: &str) -> u64 {
        self.messages_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Value of a custom counter (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_metrics_are_empty() {
        let m = Metrics::new(5);
        assert_eq!(m.messages_sent, 0);
        assert_eq!(m.delivered_count(), 0);
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.time_to_coverage(0.5), None);
        assert_eq!(m.messages_of_kind("flood"), 0);
        assert_eq!(m.counter("whatever"), 0);
    }

    #[test]
    fn send_accounting_by_kind() {
        let mut m = Metrics::new(3);
        m.record_send("flood", 100);
        m.record_send("flood", 100);
        m.record_send("stem", 50);
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.bytes_sent, 250);
        assert_eq!(m.messages_of_kind("flood"), 2);
        assert_eq!(m.messages_of_kind("stem"), 1);
        assert_eq!(m.bytes_by_kind["flood"], 200);
    }

    #[test]
    fn delivery_records_only_first_time() {
        let mut m = Metrics::new(2);
        m.record_delivery(NodeId::new(1), 10);
        m.record_delivery(NodeId::new(1), 20);
        assert_eq!(m.delivered_at[1], Some(10));
        assert_eq!(m.delivered_count(), 1);
        assert_eq!(m.coverage(), 0.5);
    }

    #[test]
    fn time_to_coverage_thresholds() {
        let mut m = Metrics::new(4);
        m.record_delivery(NodeId::new(0), 5);
        m.record_delivery(NodeId::new(1), 10);
        m.record_delivery(NodeId::new(2), 20);
        // 3 of 4 delivered.
        assert_eq!(m.time_to_coverage(0.25), Some(5));
        assert_eq!(m.time_to_coverage(0.5), Some(10));
        assert_eq!(m.time_to_coverage(0.75), Some(20));
        assert_eq!(m.time_to_coverage(1.0), None);
        assert_eq!(m.time_to_coverage(0.0), Some(0));
        // Out-of-range fractions clamp.
        assert_eq!(m.time_to_coverage(2.0), None);
        assert_eq!(m.time_to_coverage(-1.0), Some(0));
    }

    #[test]
    fn custom_counters_accumulate() {
        let mut m = Metrics::new(1);
        m.record_counter("dc-collision", 1);
        m.record_counter("dc-collision", 2);
        assert_eq!(m.counter("dc-collision"), 3);
    }

    #[test]
    fn coverage_of_empty_network_is_zero() {
        let m = Metrics::new(0);
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.time_to_coverage(0.5), None);
    }
}
