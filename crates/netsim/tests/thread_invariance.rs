//! Thread-count invariance of the intra-trial parallel paths.
//!
//! Two pieces of per-trial work run on scoped worker threads when a trial
//! is too large for trial-level parallelism: the per-span neighbour sort of
//! the CSR finalize, and the level-synchronous frontier expansion of the
//! double-sweep diameter estimator. Both claim byte-identical results at
//! any thread count — not merely equivalent ones — because every published
//! figure must be reproducible regardless of the machine it ran on. This
//! suite pins that claim at 1, 2 and 4 threads across four topology
//! families, including a star whose second BFS level is guaranteed to
//! exceed the parallel-frontier threshold.

use fnp_netsim::topology::{self, RegularScratch};
use fnp_netsim::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Node count for the generated families: large enough that the exact
/// small-n diameter path is bypassed and BFS frontiers clear the parallel
/// expansion threshold.
const N: usize = 12_000;

/// The four families the invariance claim is checked over. The star's BFS
/// from any leaf has a second level of `n - 2` nodes, so the parallel
/// frontier path is exercised deterministically, not just probably.
fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        (
            "random-regular",
            topology::random_regular(N, 6, &mut rng).unwrap(),
        ),
        (
            "barabasi-albert",
            topology::barabasi_albert(N, 3, &mut rng).unwrap(),
        ),
        ("tree", topology::tree(N, 2).unwrap()),
        ("star", topology::star(6000).unwrap()),
    ]
}

/// Byte-level fingerprint of a graph: the `Debug` rendering covers the CSR
/// arrays themselves (offsets, live counts, targets, tombstones), so two
/// equal fingerprints mean the same *layout*, not just the same edge set.
fn fingerprint(graph: &Graph) -> String {
    format!("{graph:?}")
}

#[test]
fn csr_assembly_is_identical_at_any_thread_count() {
    let mut baseline: Option<String> = None;
    for threads in THREAD_COUNTS {
        let mut graph = Graph::new(0);
        let mut rng = StdRng::seed_from_u64(0xA11);
        let mut scratch = RegularScratch::new();
        topology::random_regular_into_with_threads(
            &mut graph,
            N,
            6,
            &mut rng,
            &mut scratch,
            threads,
        )
        .unwrap();
        let print = fingerprint(&graph);
        match &baseline {
            None => baseline = Some(print),
            Some(expected) => assert_eq!(
                expected, &print,
                "CSR assembly diverged at {threads} threads"
            ),
        }
    }
}

#[test]
fn diameter_estimate_is_identical_at_any_thread_count() {
    for (name, graph) in families(0xD1A) {
        let expected = graph.diameter_estimate();
        assert!(
            expected.is_some(),
            "{name}: families must be connected for the estimate to exist"
        );
        for threads in THREAD_COUNTS {
            assert_eq!(
                graph.diameter_estimate_with_threads(threads),
                expected,
                "{name}: diameter estimate diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn bfs_distances_agree_with_the_threaded_sweep() {
    // The frontier split must not change which nodes are reached or at
    // what distance; cross-check the public sequential BFS against the
    // threaded estimator's building block via eccentricity figures on a
    // graph with a guaranteed super-threshold frontier.
    let graph = topology::star(6000).unwrap();
    let sequential = graph.diameter_estimate_with_threads(1);
    let threaded = graph.diameter_estimate_with_threads(4);
    assert_eq!(sequential, threaded);
    // A star's diameter is exactly 2 (leaf → hub → leaf); the double sweep
    // finds it, so the figure is also externally checkable.
    assert_eq!(sequential.map(|(d, _)| d), Some(2));
}
