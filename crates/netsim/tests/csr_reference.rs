//! Equivalence of the CSR graph core against the pre-CSR reference
//! representation.
//!
//! The overlay graph used to store adjacency as one `Vec<NodeId>` per node;
//! the CSR rewrite flattened it into offset/target arrays with tombstoned
//! slots for removals. This suite retains the old representation as an
//! executable reference ([`RefGraph`]) and checks that every read accessor
//! (`neighbors`, `has_edge`, `degree`, `edges`, BFS distances,
//! connectivity) and every mutation (`add_edge`, `remove_edge`, including
//! the in-span fast path, the slack rebuild and tombstone reuse) agrees
//! with it — across all topology generators and under randomised
//! add/remove churn.

use fnp_netsim::{topology, Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// The pre-CSR adjacency representation: one sorted neighbour `Vec` per
/// node. Deliberately simple — its correctness is obvious by inspection,
/// which is what makes it a useful oracle.
#[derive(Clone, Debug)]
struct RefGraph {
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl RefGraph {
    fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let Err(pos_a) = self.adj[a.index()].binary_search(&b) else {
            return false;
        };
        self.adj[a.index()].insert(pos_a, b);
        let pos_b = self.adj[b.index()]
            .binary_search(&a)
            .expect_err("edge must be absent from both endpoints");
        self.adj[b.index()].insert(pos_b, a);
        self.edge_count += 1;
        true
    }

    fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let Ok(pos_a) = self.adj[a.index()].binary_search(&b) else {
            return false;
        };
        self.adj[a.index()].remove(pos_a);
        let pos_b = self.adj[b.index()]
            .binary_search(&a)
            .expect("edge must be present at both endpoints");
        self.adj[b.index()].remove(pos_b);
        self.edge_count -= 1;
        true
    }

    fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (index, neighbors) in self.adj.iter().enumerate() {
            let a = NodeId::new(index);
            for &b in neighbors {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    fn bfs_distances(&self, source: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.adj.len()];
        dist[source.index()] = Some(0);
        let mut queue = VecDeque::from([source]);
        while let Some(node) = queue.pop_front() {
            let d = dist[node.index()].expect("queued nodes have a distance");
            for &next in &self.adj[node.index()] {
                if dist[next.index()].is_none() {
                    dist[next.index()] = Some(d + 1);
                    queue.push_back(next);
                }
            }
        }
        dist
    }

    fn is_connected(&self) -> bool {
        self.adj.is_empty()
            || self
                .bfs_distances(NodeId::new(0))
                .iter()
                .all(Option::is_some)
    }
}

/// Mirrors `graph`'s edge set into a fresh reference graph.
fn mirror(graph: &Graph) -> RefGraph {
    let mut reference = RefGraph::new(graph.node_count());
    for (a, b) in graph.edges() {
        assert!(reference.add_edge(a, b), "edges() must not repeat an edge");
    }
    reference
}

/// Asserts every read accessor of `graph` agrees with `reference`.
fn assert_equivalent(graph: &Graph, reference: &RefGraph, context: &str) {
    let n = graph.node_count();
    assert_eq!(n, reference.adj.len(), "{context}: node count");
    assert_eq!(
        graph.edge_count(),
        reference.edge_count,
        "{context}: edge count"
    );
    for index in 0..n {
        let node = NodeId::new(index);
        assert_eq!(
            graph.neighbors(node),
            reference.adj[index].as_slice(),
            "{context}: neighbors of {node}"
        );
        assert_eq!(
            graph.degree(node),
            reference.adj[index].len(),
            "{context}: degree of {node}"
        );
    }
    assert_eq!(
        graph.edges().collect::<Vec<_>>(),
        reference.edges(),
        "{context}: edge iteration"
    );
    for a in 0..n {
        for b in 0..n {
            assert_eq!(
                graph.has_edge(NodeId::new(a), NodeId::new(b)),
                reference.has_edge(NodeId::new(a), NodeId::new(b)),
                "{context}: has_edge({a}, {b})"
            );
        }
    }
    for source in [0, n / 2, n.saturating_sub(1)] {
        if source < n {
            assert_eq!(
                graph.bfs_distances(NodeId::new(source)),
                reference.bfs_distances(NodeId::new(source)),
                "{context}: BFS distances from {source}"
            );
        }
    }
    assert_eq!(
        graph.is_connected(),
        reference.is_connected(),
        "{context}: connectivity"
    );
}

/// Applies `ops` random mutations to both representations, asserting the
/// per-operation results match; removals draw from the live edge set so
/// tombstoning (and slot reuse by later insertions) is actually exercised.
fn churn(graph: &mut Graph, reference: &mut RefGraph, seed: u64, ops: usize, context: &str) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.node_count();
    for op in 0..ops {
        if rng.gen_bool(0.4) {
            let edges = reference.edges();
            if edges.is_empty() {
                continue;
            }
            let (a, b) = edges[rng.gen_range(0..edges.len())];
            assert!(graph.remove_edge(a, b), "{context}: remove of a live edge");
            assert!(reference.remove_edge(a, b));
        } else {
            let a = NodeId::new(rng.gen_range(0..n));
            let b = NodeId::new(rng.gen_range(0..n));
            assert_eq!(
                graph.add_edge(a, b),
                reference.add_edge(a, b),
                "{context}: add_edge({a}, {b}) result"
            );
        }
        if op % 50 == 49 {
            assert_equivalent(graph, reference, &format!("{context}, after op {op}"));
        }
    }
    assert_equivalent(graph, reference, &format!("{context}, after churn"));
}

/// Every topology family, generated at a size small enough for the
/// all-pairs `has_edge` sweep.
fn generated_families(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        ("line", topology::line(41).unwrap()),
        ("ring", topology::ring(40).unwrap()),
        ("complete", topology::complete(24).unwrap()),
        ("star", topology::star(33).unwrap()),
        ("tree", topology::tree(40, 3).unwrap()),
        (
            "random-regular",
            topology::random_regular(48, 6, &mut rng).unwrap(),
        ),
        (
            "erdos-renyi",
            topology::erdos_renyi(44, 0.15, &mut rng).unwrap(),
        ),
        (
            "watts-strogatz",
            topology::watts_strogatz(42, 6, 0.2, &mut rng).unwrap(),
        ),
        (
            "barabasi-albert",
            topology::barabasi_albert(45, 3, &mut rng).unwrap(),
        ),
    ]
}

#[test]
fn generators_agree_with_the_reference_representation() {
    for (name, graph) in generated_families(0xC5) {
        let reference = mirror(&graph);
        assert_equivalent(&graph, &reference, name);
    }
}

#[test]
fn churned_generator_graphs_stay_equivalent() {
    for (name, mut graph) in generated_families(0x5EED) {
        let mut reference = mirror(&graph);
        churn(&mut graph, &mut reference, 0xABCD, 300, name);
    }
}

#[test]
fn reset_after_churn_matches_a_fresh_build() {
    // Tombstones must not survive a reset: a churned graph reset to a new
    // size and refilled must equal a freshly built one.
    let mut rng = StdRng::seed_from_u64(9);
    let mut graph = topology::random_regular(48, 6, &mut rng).unwrap();
    let mut reference = mirror(&graph);
    churn(&mut graph, &mut reference, 77, 200, "pre-reset");
    graph.reset(30);
    let mut reference = RefGraph::new(30);
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..120 {
        let a = NodeId::new(rng.gen_range(0..30));
        let b = NodeId::new(rng.gen_range(0..30));
        assert_eq!(graph.add_edge(a, b), reference.add_edge(a, b));
    }
    assert_equivalent(&graph, &reference, "post-reset refill");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interleavings of adds and removes on both representations
    /// produce identical per-op results and identical final state.
    #[test]
    fn prop_random_mutation_sequences_are_equivalent(
        n in 2usize..24,
        ops in proptest::collection::vec((0usize..24, 0usize..24, any::<bool>()), 0..120),
    ) {
        let mut graph = Graph::new(n);
        let mut reference = RefGraph::new(n);
        for (raw_a, raw_b, add) in ops {
            let a = NodeId::new(raw_a % n);
            let b = NodeId::new(raw_b % n);
            if add {
                prop_assert_eq!(graph.add_edge(a, b), reference.add_edge(a, b));
            } else {
                prop_assert_eq!(graph.remove_edge(a, b), reference.remove_edge(a, b));
            }
        }
        assert_equivalent(&graph, &reference, "proptest sequence");
    }
}
