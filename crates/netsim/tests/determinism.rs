//! Bit-for-bit reproducibility of the simulator: two runs configured with
//! the same `StdRng` seed must produce byte-identical event traces and
//! metrics, across different topology families, while different seeds must
//! diverge. Every scale/speed experiment built on `fnp-netsim` depends on
//! this property to be comparable run-to-run.

use fnp_netsim::{
    topology, Context, Graph, LatencyModel, Metrics, NodeId, Payload, ProtocolNode, SimConfig,
    Simulator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A gossip message carrying a hop counter.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Rumor {
    hops: u32,
}

impl Payload for Rumor {
    fn kind(&self) -> &'static str {
        "rumor"
    }

    fn size_bytes(&self) -> usize {
        128
    }
}

/// A probabilistic gossip node: forwards a rumor to each neighbour with
/// probability 0.8 and re-gossips once on a timer. Deliberately leans on the
/// simulation RNG (forward coin-flips) *and* the latency model so the test
/// covers every source of randomness in a run.
#[derive(Clone, Debug, Default)]
struct GossipNode {
    seen: bool,
}

impl GossipNode {
    fn start(&mut self, ctx: &mut Context<'_, Rumor>) {
        self.seen = true;
        ctx.mark_delivered();
        ctx.send_to_neighbors_except(Rumor { hops: 0 }, &[]);
        ctx.set_timer(1_000, 1);
    }

    fn forward(&mut self, message: Rumor, skip: &[NodeId], ctx: &mut Context<'_, Rumor>) {
        let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
        for neighbor in neighbors {
            if !skip.contains(&neighbor) && ctx.rng().gen_bool(0.8) {
                ctx.send(neighbor, message.clone());
            }
        }
    }
}

impl ProtocolNode for GossipNode {
    type Message = Rumor;

    fn on_message(&mut self, from: NodeId, message: Rumor, ctx: &mut Context<'_, Rumor>) {
        if self.seen {
            return;
        }
        self.seen = true;
        ctx.mark_delivered();
        ctx.record("gossip-accepted");
        if message.hops < 64 {
            let next = Rumor {
                hops: message.hops + 1,
            };
            self.forward(next, &[from], ctx);
        }
        ctx.set_timer(500, 2);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, Rumor>) {
        // One delayed re-gossip round, so timer ordering is exercised too.
        if tag == 1 || tag == 2 {
            ctx.record("timer-fired");
            let message = Rumor { hops: 0 };
            self.forward(message, &[], ctx);
        }
    }
}

/// The three (plus one) topology families the determinism claim is tested
/// over, generated from their own seeded RNG.
fn topologies(seed: u64) -> Vec<(&'static str, Graph)> {
    let n = 60;
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        (
            "random-regular",
            topology::random_regular(n, 6, &mut rng).unwrap(),
        ),
        (
            "erdos-renyi",
            topology::erdos_renyi(n, 0.12, &mut rng).unwrap(),
        ),
        (
            "watts-strogatz",
            topology::watts_strogatz(n, 6, 0.2, &mut rng).unwrap(),
        ),
        (
            "barabasi-albert",
            topology::barabasi_albert(n, 3, &mut rng).unwrap(),
        ),
    ]
}

fn run_once(graph: Graph, sim_seed: u64) -> Metrics {
    let config = SimConfig {
        latency: LatencyModel::Uniform {
            min: 10_000,
            max: 90_000,
        },
        seed: sim_seed,
        record_trace: true,
        ..SimConfig::default()
    };
    let nodes = (0..graph.node_count())
        .map(|_| GossipNode::default())
        .collect();
    let mut sim = Simulator::new(graph, nodes, config);
    sim.trigger(NodeId::new(0), |node, ctx| node.start(ctx));
    sim.run();
    let (_, metrics) = sim.into_parts();
    metrics
}

/// Renders every field of the metrics (trace included) to bytes; two runs
/// are only considered identical if these renderings match byte-for-byte.
fn fingerprint(metrics: &Metrics) -> Vec<u8> {
    format!("{metrics:#?}").into_bytes()
}

#[test]
fn same_seed_is_byte_identical_across_topologies() {
    for (name, graph) in topologies(0x70) {
        for sim_seed in [0u64, 1, 0xDEAD_BEEF] {
            let first = run_once(graph.clone(), sim_seed);
            let second = run_once(graph.clone(), sim_seed);
            assert!(
                !first.trace.is_empty(),
                "{name}: trace must be recorded for the comparison to mean anything"
            );
            assert_eq!(
                first.trace, second.trace,
                "{name}: event traces diverged for seed {sim_seed}"
            );
            assert_eq!(
                fingerprint(&first),
                fingerprint(&second),
                "{name}: metrics diverged for seed {sim_seed}"
            );
        }
    }
}

#[test]
fn topology_generation_is_deterministic_per_seed() {
    let first = topologies(42);
    let second = topologies(42);
    for ((name, a), (_, b)) in first.iter().zip(second.iter()) {
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{name}: same seed must generate the identical graph"
        );
    }
}

#[test]
fn different_seeds_actually_diverge() {
    // A determinism test that would also pass for a constant function is
    // vacuous; check the RNG seed genuinely steers the run.
    let (_, graph) = topologies(7).remove(0);
    let a = run_once(graph.clone(), 1);
    let b = run_once(graph, 2);
    assert_ne!(
        a.trace, b.trace,
        "distinct seeds should produce distinct traces"
    );
}
