//! # fnp-diffusion — adaptive diffusion (phase 2 substrate)
//!
//! Phase 2 of the flexible privacy-preserving broadcast runs *adaptive
//! diffusion* (Fanti et al.) for `d` rounds, starting from the virtual
//! source elected inside the DC-net group. This crate implements the
//! protocol as a reusable sans-IO [`fnp_proto::ProtocolCore`] plus the
//! pieces the combined protocol and the experiments need:
//!
//! * [`alpha`] — the virtual-source hand-off probability schedules,
//!   including the regular-tree formula of Fanti et al. and degenerate
//!   schedules for ablations.
//! * [`protocol`] — the [`AdaptiveDiffusionNode`] state machine (infection
//!   tree, token transfers, spread waves), simulator-driven through
//!   [`fnp_proto::SimDriver`].
//! * [`report`] — a convenience runner producing the message-count figures
//!   of the paper's §V-A (experiment E6).
//!
//! # Example
//!
//! ```
//! use fnp_diffusion::{run_adaptive_diffusion, AdParams};
//! use fnp_netsim::{topology, NodeId, SimConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let graph = topology::random_regular(100, 4, &mut rng)?;
//! let report = run_adaptive_diffusion(
//!     graph,
//!     NodeId::new(0),
//!     AdParams { max_rounds: 64, ..AdParams::default() },
//!     SimConfig::default(),
//! );
//! assert_eq!(report.coverage, 1.0);
//! # Ok::<(), fnp_netsim::GenerateTopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alpha;
pub mod protocol;
pub mod report;

pub use alpha::AlphaSchedule;
pub use protocol::{AdMessage, AdParams, AdaptiveDiffusionNode};
pub use report::{run_adaptive_diffusion, run_adaptive_diffusion_in, DiffusionReport};

#[cfg(test)]
mod proptests {
    use super::*;
    use fnp_netsim::{topology, NodeId, SimConfig};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Regardless of seed, origin and (moderate) graph size, adaptive
        /// diffusion with a generous round budget reaches every node and the
        /// number of infection messages is at least n − 1.
        #[test]
        fn prop_generous_budget_reaches_everyone(
            n in 20usize..80,
            origin in 0usize..80,
            seed in any::<u64>(),
        ) {
            let n = if n % 2 == 1 { n + 1 } else { n };
            let origin = NodeId::new(origin % n);
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = topology::random_regular(n, 4, &mut rng).unwrap();
            let report = run_adaptive_diffusion(
                graph,
                origin,
                AdParams { max_rounds: 128, ..AdParams::default() },
                SimConfig { seed, ..SimConfig::default() },
            );
            prop_assert_eq!(report.coverage, 1.0);
            prop_assert!(report.metrics.messages_of_kind("ad-infect") >= (n as u64) - 1);
        }
    }
}
