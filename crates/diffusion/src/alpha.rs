//! Virtual-source hand-off probability schedules.
//!
//! Adaptive diffusion alternates between *keeping* the virtual-source token
//! (and spreading the message symmetrically around the current virtual
//! source) and *passing* it one hop further from the true source. The
//! probability of keeping the token at even timestep `t`, when the current
//! virtual source is `h` hops from the true source, is the schedule
//! `α(t, h)`. Fanti et al. derive the schedule that makes the true source
//! uniformly distributed over the infected subgraph of a `d`-regular tree:
//!
//! ```text
//! α_d(t, h) = (p^(t/2 − h + 1) − 1) / (p^(t/2 + 1) − 1),   p = d − 1  (d > 2)
//! α_2(t, h) = (t/2 − h + 1) / (t/2 + 1)                              (d = 2)
//! ```
//!
//! The ICDCS paper under reproduction simply notes that "α is dependent on
//! the number of rounds already executed" and that dissemination is
//! accelerated by reducing α after each round (passing stalls the spread).
//! Both behaviours are provided here, together with degenerate schedules
//! used in tests and ablations.

use std::fmt;

/// A schedule for the probability of *keeping* the virtual-source token.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AlphaSchedule {
    /// The Fanti et al. schedule for `degree`-regular trees (also a good
    /// default on roughly regular random graphs, as both papers note).
    RegularTree {
        /// Assumed node degree `d ≥ 2`.
        degree: usize,
    },
    /// A fixed keep-probability, independent of time and distance.
    Fixed {
        /// Probability of keeping the token, clamped into `[0, 1]`.
        probability: f64,
    },
    /// Never keep the token: it is passed every round, maximising how far
    /// the virtual source runs from the origin (and minimising per-round
    /// spreading). Useful as an ablation.
    AlwaysPass,
    /// Always keep the token: equivalent to symmetric spreading around the
    /// first virtual source. Useful as an ablation.
    NeverPass,
}

impl Default for AlphaSchedule {
    /// The regular-tree schedule with degree 8, matching the default
    /// Bitcoin-like overlay used across the experiments.
    fn default() -> Self {
        AlphaSchedule::RegularTree { degree: 8 }
    }
}

impl fmt::Display for AlphaSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlphaSchedule::RegularTree { degree } => write!(f, "regular-tree(d={degree})"),
            AlphaSchedule::Fixed { probability } => write!(f, "fixed({probability})"),
            AlphaSchedule::AlwaysPass => write!(f, "always-pass"),
            AlphaSchedule::NeverPass => write!(f, "never-pass"),
        }
    }
}

impl AlphaSchedule {
    /// Probability of keeping the virtual-source token at even timestep `t`
    /// when the virtual source is `h ≥ 1` hops from the origin.
    ///
    /// Values are always in `[0, 1]`. Degenerate inputs (odd `t`, `h` larger
    /// than `t/2`) are clamped rather than rejected, because in general
    /// graphs the bookkeeping can drift slightly from the tree ideal.
    pub fn keep_probability(&self, t: u32, h: u32) -> f64 {
        match *self {
            AlphaSchedule::Fixed { probability } => probability.clamp(0.0, 1.0),
            AlphaSchedule::AlwaysPass => 0.0,
            AlphaSchedule::NeverPass => 1.0,
            AlphaSchedule::RegularTree { degree } => {
                let half_t = (t / 2).max(1) as f64;
                let h = (h.max(1) as f64).min(half_t);
                if degree <= 2 {
                    // Line graphs: the limit of the general formula.
                    ((half_t - h + 1.0) / (half_t + 1.0)).clamp(0.0, 1.0)
                } else {
                    let p = (degree - 1) as f64;
                    let numerator = p.powf(half_t - h + 1.0) - 1.0;
                    let denominator = p.powf(half_t + 1.0) - 1.0;
                    if denominator <= 0.0 {
                        0.0
                    } else {
                        (numerator / denominator).clamp(0.0, 1.0)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_schedule_clamps() {
        assert_eq!(
            AlphaSchedule::Fixed { probability: 0.3 }.keep_probability(4, 1),
            0.3
        );
        assert_eq!(
            AlphaSchedule::Fixed { probability: 1.7 }.keep_probability(4, 1),
            1.0
        );
        assert_eq!(
            AlphaSchedule::Fixed { probability: -0.2 }.keep_probability(4, 1),
            0.0
        );
    }

    #[test]
    fn degenerate_schedules() {
        assert_eq!(AlphaSchedule::AlwaysPass.keep_probability(10, 2), 0.0);
        assert_eq!(AlphaSchedule::NeverPass.keep_probability(10, 2), 1.0);
    }

    #[test]
    fn line_graph_formula() {
        // d = 2: α(t, h) = (t/2 − h + 1)/(t/2 + 1).
        let schedule = AlphaSchedule::RegularTree { degree: 2 };
        assert!((schedule.keep_probability(4, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((schedule.keep_probability(4, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((schedule.keep_probability(8, 1) - 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn regular_tree_formula_matches_reference_values() {
        // d = 3 (p = 2), t = 4: α(4, 1) = (2^2 − 1)/(2^3 − 1) = 3/7,
        //                        α(4, 2) = (2^1 − 1)/(2^3 − 1) = 1/7.
        let schedule = AlphaSchedule::RegularTree { degree: 3 };
        assert!((schedule.keep_probability(4, 1) - 3.0 / 7.0).abs() < 1e-12);
        assert!((schedule.keep_probability(4, 2) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn keep_probability_decreases_with_distance() {
        // The further the virtual source already is from the origin, the
        // more likely it is to stay put (α decreases in h ⇒ passing becomes
        // *less* likely as h grows towards t/2... actually the formula gives
        // smaller keep-probability for larger h, i.e. distant virtual
        // sources keep passing less often).
        let schedule = AlphaSchedule::RegularTree { degree: 4 };
        let a1 = schedule.keep_probability(10, 1);
        let a3 = schedule.keep_probability(10, 3);
        let a5 = schedule.keep_probability(10, 5);
        assert!(a1 > a3 && a3 > a5, "{a1} {a3} {a5}");
    }

    #[test]
    fn default_is_degree_eight_tree() {
        assert_eq!(
            AlphaSchedule::default(),
            AlphaSchedule::RegularTree { degree: 8 }
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(AlphaSchedule::AlwaysPass.to_string(), "always-pass");
        assert!(AlphaSchedule::default().to_string().contains("d=8"));
    }

    proptest! {
        #[test]
        fn prop_probabilities_are_valid(
            degree in 2usize..16,
            t in 2u32..64,
            h in 1u32..32,
        ) {
            let t = t * 2; // even timesteps
            for schedule in [
                AlphaSchedule::RegularTree { degree },
                AlphaSchedule::Fixed { probability: 0.5 },
                AlphaSchedule::AlwaysPass,
                AlphaSchedule::NeverPass,
            ] {
                let alpha = schedule.keep_probability(t, h);
                prop_assert!((0.0..=1.0).contains(&alpha), "{schedule}: {alpha}");
            }
        }
    }
}
