//! The adaptive diffusion protocol as a sans-IO state machine.
//!
//! Adaptive diffusion (Fanti et al., "Spy vs. Spy: Rumor Source
//! Obfuscation") breaks the symmetry that deanonymises ordinary flooding:
//! instead of the infection ball being centred on the true source, a
//! *virtual source token* wanders away from the origin and the message is
//! always spread so that the current token holder sits at the centre of the
//! infected subgraph. An observer reconstructing the "centre" of the spread
//! therefore finds the virtual source path, not the originator.
//!
//! The protocol alternates two steps (quoted from the ICDCS paper):
//!
//! 1. *Transfer the virtual source token with probability α to a new node*;
//!    the new virtual source spreads the message in all directions besides
//!    the direction it received the token from.
//! 2. *Spread the message further, increasing the diameter of the infected
//!    subgraph* (a spread wave travels from the virtual source down the
//!    infection tree; the frontier infects its uninfected neighbours).
//!
//! The spread waves re-traverse the already-infected subtree every round,
//! which is exactly why adaptive diffusion costs more messages than plain
//! flooding (the ≈12 500 vs ≈7 000 messages for 1 000 peers reported in
//! §V-A and reproduced by experiment E6).

use crate::alpha::AlphaSchedule;
use fnp_netsim::{NodeId, Payload, SimTime, MILLISECOND};
use fnp_proto::{Input, Mailbox, NodeView, ProtocolCore, SteadyProtocol};
use rand::Rng;

/// Timer tag used by the virtual source to pace rounds.
const ROUND_TIMER: u64 = 1;

/// Wire sizes (bytes) reported for the three message types: an infection
/// carries the transaction, the other two are small control messages.
const INFECT_BYTES: usize = 256;
const SPREAD_BYTES: usize = 32;
const TOKEN_BYTES: usize = 48;

/// Messages exchanged by adaptive diffusion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdMessage {
    /// Delivers the transaction to a previously uninfected node.
    Infect {
        /// Protocol round (even timestep / 2) in which the infection happened.
        round: u32,
    },
    /// Instructs the infected subtree to grow its frontier by one hop.
    Spread {
        /// Protocol round of the wave.
        round: u32,
    },
    /// Transfers the virtual-source token.
    Token {
        /// Even timestep of the protocol.
        t: u32,
        /// Hop distance of the *new* virtual source from the origin.
        h: u32,
        /// Rounds already executed for this message.
        round: u32,
    },
}

impl Payload for AdMessage {
    fn kind(&self) -> &'static str {
        match self {
            AdMessage::Infect { .. } => "ad-infect",
            AdMessage::Spread { .. } => "ad-spread",
            AdMessage::Token { .. } => "ad-token",
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            AdMessage::Infect { .. } => INFECT_BYTES,
            AdMessage::Spread { .. } => SPREAD_BYTES,
            AdMessage::Token { .. } => TOKEN_BYTES,
        }
    }
}

/// Parameters of an adaptive diffusion run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdParams {
    /// Probability schedule for keeping the virtual-source token.
    pub schedule: AlphaSchedule,
    /// Maximum number of rounds the virtual source initiates. In the
    /// flexible broadcast this is the parameter `d`; for full-dissemination
    /// baselines it is set generously and the run is cut off at coverage.
    pub max_rounds: u32,
    /// Simulated time between successive rounds, chosen large enough for a
    /// spread wave to reach the frontier before the next round starts.
    pub round_interval: SimTime,
}

impl Default for AdParams {
    fn default() -> Self {
        Self {
            schedule: AlphaSchedule::default(),
            max_rounds: 32,
            round_interval: 2_000 * MILLISECOND,
        }
    }
}

/// Virtual-source token state held by at most one node at a time.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Token {
    t: u32,
    h: u32,
    round: u32,
    received_from: Option<NodeId>,
}

/// Per-node infection state (cold: touched only by the owning node's
/// handlers once the hot-lane checks have passed).
///
/// The hot companions live in the driver's hot lanes (struct-of-arrays
/// under the simulator): the [`seen` lane](fnp_proto::HotLanes::seen) mirrors
/// `is_some()` of the node's `Option<Infection>` for the
/// duplicate-infection fast path, and the
/// [`counter` lane](fnp_proto::HotLanes::counter_lane) holds the highest spread-wave
/// round already processed (encoded as `round + 1`, `0` = none), which
/// suppresses duplicate waves without touching this struct (the infection
/// "children" relation can contain cycles on general graphs, so without the
/// check a wave could circulate forever).
#[derive(Clone, Debug, Default)]
struct Infection {
    /// The node that infected us (tree parent); `None` for the origin.
    parent: Option<NodeId>,
    /// Nodes we have infected (tree children).
    children: Vec<NodeId>,
    /// The virtual-source token, if currently held.
    token: Option<Token>,
}

/// A node running adaptive diffusion.
#[derive(Clone, Debug)]
pub struct AdaptiveDiffusionNode {
    params: AdParams,
    infection: Option<Infection>,
    /// Set when this node was the true origin of the broadcast.
    is_origin: bool,
}

impl AdaptiveDiffusionNode {
    /// Creates an idle (uninfected) node.
    pub fn new(params: AdParams) -> Self {
        Self {
            params,
            infection: None,
            is_origin: false,
        }
    }

    /// Whether this node has received the message.
    pub fn is_infected(&self) -> bool {
        self.infection.is_some()
    }

    /// Whether this node was the broadcast origin.
    pub fn is_origin(&self) -> bool {
        self.is_origin
    }

    /// Whether this node currently holds the virtual-source token.
    pub fn holds_token(&self) -> bool {
        self.infection
            .as_ref()
            .is_some_and(|state| state.token.is_some())
    }

    /// The node that infected this node, if any (the infection-tree parent).
    pub fn infection_parent(&self) -> Option<NodeId> {
        self.infection.as_ref().and_then(|state| state.parent)
    }

    /// Starts a broadcast from this node. Under the simulator, call through
    /// [`fnp_netsim::Simulator::trigger`] +
    /// [`SimDriver::drive`](fnp_proto::SimDriver::drive) on the origin node.
    ///
    /// Following Fanti et al., the origin infects one random neighbour and
    /// immediately hands it the virtual-source token, so the origin itself
    /// never acts as the centre of the spread.
    pub fn start_broadcast(&mut self, view: &mut impl NodeView, out: &mut Mailbox<AdMessage>) {
        if view.set_seen() {
            return;
        }
        self.is_origin = true;
        let mut infection = Infection::default();
        out.deliver();
        out.record("ad-origin");

        let neighbors = view.neighbors().to_vec();
        if neighbors.is_empty() {
            self.infection = Some(infection);
            return;
        }
        let first = neighbors[view.rng().gen_range(0..neighbors.len())];
        out.send(first, AdMessage::Infect { round: 0 });
        out.send(
            first,
            AdMessage::Token {
                t: 2,
                h: 1,
                round: 0,
            },
        );
        infection.children.push(first);
        self.infection = Some(infection);
    }

    /// Becomes infected (idempotent); returns `true` on the first infection.
    ///
    /// The duplicate case — the hottest branch of the protocol, hit by
    /// every redundant `Infect`/`Spread` delivery — is decided entirely by
    /// the dense seen lane without loading this node's cold state.
    fn infect(
        &mut self,
        parent: Option<NodeId>,
        view: &mut impl NodeView,
        out: &mut Mailbox<AdMessage>,
    ) -> bool {
        if view.set_seen() {
            return false;
        }
        self.infection = Some(Infection {
            parent,
            children: Vec::new(),
            token: None,
        });
        out.deliver();
        true
    }

    /// Sends infections to all uninfected-looking neighbours (those that are
    /// neither our parent nor already our children), excluding `excluded`.
    fn grow_frontier(
        &mut self,
        round: u32,
        excluded: &[NodeId],
        view: &impl NodeView,
        out: &mut Mailbox<AdMessage>,
    ) {
        let Some(infection) = self.infection.as_mut() else {
            return;
        };
        let parent = infection.parent;
        for target in view.neighbors() {
            let target = *target;
            if Some(target) == parent
                || infection.children.contains(&target)
                || excluded.contains(&target)
            {
                continue;
            }
            out.send(target, AdMessage::Infect { round });
            infection.children.push(target);
        }
    }

    /// Forwards a spread wave to the infection-tree children.
    fn forward_spread(&self, round: u32, excluded: &[NodeId], out: &mut Mailbox<AdMessage>) {
        let Some(infection) = self.infection.as_ref() else {
            return;
        };
        for &child in &infection.children {
            if !excluded.contains(&child) {
                out.send(child, AdMessage::Spread { round });
            }
        }
    }

    /// Executes one virtual-source round: keep (and spread) or pass.
    fn run_round(&mut self, view: &mut impl NodeView, out: &mut Mailbox<AdMessage>) {
        let Some(infection) = self.infection.as_mut() else {
            return;
        };
        let Some(mut token) = infection.token.take() else {
            return;
        };
        token.t += 2;
        token.round += 1;
        out.record("ad-rounds");

        if token.round > self.params.max_rounds {
            // The final virtual source simply stops (it keeps the token but
            // schedules no further rounds); the flexible broadcast protocol
            // (fnp-core) instead switches to flood-and-prune here.
            infection.token = Some(token);
            out.record("ad-finished");
            return;
        }

        let keep_probability = self.params.schedule.keep_probability(token.t, token.h);
        let keep = view.rng().gen_bool(keep_probability);

        if keep {
            out.record("ad-keep");
            let round = token.round;
            infection.token = Some(token);
            view.mark_round_seen(round);
            self.forward_spread(round, &[], out);
            self.grow_frontier(round, &[], view, out);
            out.set_timer(self.params.round_interval, ROUND_TIMER);
        } else {
            out.record("ad-pass");
            // Pass the token to a random neighbour other than the one we got
            // it from. If no such neighbour exists we keep it instead.
            let received_from = token.received_from;
            let candidates: Vec<NodeId> = view
                .neighbors()
                .iter()
                .copied()
                .filter(|n| Some(*n) != received_from)
                .collect();
            if candidates.is_empty() {
                let round = token.round;
                infection.token = Some(token);
                view.mark_round_seen(round);
                self.forward_spread(round, &[], out);
                self.grow_frontier(round, &[], view, out);
                out.set_timer(self.params.round_interval, ROUND_TIMER);
                return;
            }
            let next = candidates[view.rng().gen_range(0..candidates.len())];
            if !infection.children.contains(&next) && infection.parent != Some(next) {
                out.send(next, AdMessage::Infect { round: token.round });
                infection.children.push(next);
            }
            out.send(
                next,
                AdMessage::Token {
                    t: token.t,
                    h: token.h + 1,
                    round: token.round,
                },
            );
            // This node no longer holds the token and schedules no timers.
        }
    }
}

impl ProtocolCore for AdaptiveDiffusionNode {
    type Message = AdMessage;

    fn poll<V: NodeView>(
        &mut self,
        input: Input<AdMessage>,
        view: &mut V,
        out: &mut Mailbox<AdMessage>,
    ) {
        match input {
            Input::Init => {}
            Input::Message { from, message } => match message {
                AdMessage::Infect { .. } => {
                    self.infect(Some(from), view, out);
                }
                AdMessage::Spread { round } => {
                    // A spread wave: make sure we are infected, pass it on to
                    // our subtree and grow the frontier around us. Each wave
                    // (round) is processed at most once per node — tracked in
                    // the hot counter lane — so that cycles in the infection
                    // relation cannot circulate a wave indefinitely.
                    self.infect(Some(from), view, out);
                    if view.round_seen(round) {
                        return;
                    }
                    view.mark_round_seen(round);
                    self.forward_spread(round, &[from], out);
                    self.grow_frontier(round, &[from], view, out);
                }
                AdMessage::Token { t, h, round } => {
                    self.infect(Some(from), view, out);
                    view.mark_round_seen(round);
                    let infection = self.infection.as_mut().expect("infected above");
                    infection.token = Some(Token {
                        t,
                        h,
                        round,
                        received_from: Some(from),
                    });
                    // The new virtual source spreads in every direction except
                    // the one the token came from, then paces further rounds.
                    self.forward_spread(round, &[from], out);
                    self.grow_frontier(round, &[from], view, out);
                    out.set_timer(self.params.round_interval, ROUND_TIMER);
                }
            },
            Input::TimerFired { tag } => {
                if tag == ROUND_TIMER {
                    self.run_round(view, out);
                }
            }
        }
    }
}

impl SteadyProtocol for AdaptiveDiffusionNode {
    fn per_tx_instance(&self) -> Self {
        AdaptiveDiffusionNode::new(self.params)
    }

    fn start_tx(&mut self, _tx: u64, view: &mut impl NodeView, out: &mut Mailbox<AdMessage>) {
        // Adaptive diffusion messages deliberately carry no transaction id
        // (source obfuscation); the steady-state wrapper's tag does the
        // demultiplexing.
        self.start_broadcast(view, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnp_netsim::{topology, LatencyModel, SimConfig, Simulator};
    use fnp_proto::SimDriver;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(
        n: usize,
        degree: usize,
        params: AdParams,
        seed: u64,
    ) -> (
        Simulator<SimDriver<AdaptiveDiffusionNode>>,
        fnp_netsim::Metrics,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = topology::random_regular(n, degree, &mut rng).unwrap();
        let nodes = (0..n)
            .map(|_| SimDriver::new(AdaptiveDiffusionNode::new(params)))
            .collect();
        let mut sim = Simulator::new(
            graph,
            nodes,
            SimConfig {
                seed,
                record_trace: true,
                latency: LatencyModel::Uniform {
                    min: 10 * MILLISECOND,
                    max: 50 * MILLISECOND,
                },
                ..SimConfig::default()
            },
        );
        sim.trigger(NodeId::new(0), |driver, ctx| {
            driver.drive(ctx, |node, view, out| node.start_broadcast(view, out));
        });
        let metrics = sim.run().clone();
        (sim, metrics)
    }

    #[test]
    fn steady_diffusion_broadcasts_overlap_and_complete() {
        use fnp_netsim::TrialArena;
        use fnp_proto::steady::{run_steady_in, Arrival};
        let n = 30;
        let mut rng = StdRng::seed_from_u64(5);
        let graph = topology::random_regular(n, 6, &mut rng).unwrap();
        let params = AdParams {
            max_rounds: 64,
            ..AdParams::default()
        };
        let prototypes: Vec<AdaptiveDiffusionNode> =
            (0..n).map(|_| AdaptiveDiffusionNode::new(params)).collect();
        let arrivals = [
            Arrival {
                at: 1,
                origin: NodeId::new(4),
            },
            Arrival {
                at: 100 * MILLISECOND,
                origin: NodeId::new(21),
            },
        ];
        let (_, report) = run_steady_in(
            &mut TrialArena::new(),
            graph,
            prototypes,
            &arrivals,
            &[NodeId::new(11)],
            2,
            SimConfig {
                seed: 5,
                ..SimConfig::default()
            },
        );
        for (tx, outcome) in report.per_tx.iter().enumerate() {
            // Adaptive diffusion with generous rounds infects everyone.
            assert_eq!(outcome.delivered_count, n, "tx {tx} did not cover");
            assert!(outcome.completed_at.is_some(), "tx {tx} never drained");
        }
        assert!(report.peak_concurrent >= 2, "spreads should overlap");
    }

    #[test]
    fn message_kinds_and_sizes() {
        assert_eq!(AdMessage::Infect { round: 1 }.kind(), "ad-infect");
        assert_eq!(AdMessage::Spread { round: 1 }.kind(), "ad-spread");
        assert_eq!(
            AdMessage::Token {
                t: 2,
                h: 1,
                round: 1
            }
            .kind(),
            "ad-token"
        );
        assert_eq!(AdMessage::Infect { round: 1 }.size_bytes(), 256);
        assert!(AdMessage::Spread { round: 1 }.size_bytes() < 256);
    }

    #[test]
    fn diffusion_spreads_beyond_the_origin() {
        let params = AdParams {
            max_rounds: 6,
            ..AdParams::default()
        };
        let (_, metrics) = run(100, 4, params, 1);
        // After 6 rounds a meaningful portion of a 100-node graph is infected.
        assert!(
            metrics.delivered_count() > 10,
            "only {}",
            metrics.delivered_count()
        );
        assert!(metrics.messages_of_kind("ad-infect") > 0);
        assert!(metrics.messages_of_kind("ad-token") >= 1);
        assert_eq!(metrics.counter("ad-origin"), 1);
    }

    #[test]
    fn full_dissemination_with_generous_round_budget() {
        let params = AdParams {
            max_rounds: 64,
            ..AdParams::default()
        };
        let (_, metrics) = run(100, 4, params, 2);
        assert_eq!(
            metrics.coverage(),
            1.0,
            "delivered {}",
            metrics.delivered_count()
        );
    }

    #[test]
    fn overhead_exceeds_flooding_like_lower_bound() {
        // Plain flooding on n nodes needs at least n − 1 deliveries; adaptive
        // diffusion's repeated spread waves must cost strictly more messages
        // than that on any non-trivial run that reaches everyone.
        let params = AdParams {
            max_rounds: 64,
            ..AdParams::default()
        };
        let (_, metrics) = run(120, 4, params, 3);
        assert_eq!(metrics.coverage(), 1.0);
        assert!(metrics.messages_sent > 119);
    }

    #[test]
    fn origin_is_not_the_final_token_holder_usually() {
        // The virtual source wanders away from the origin; with AlwaysPass it
        // moves every round, so after several rounds the token is elsewhere.
        let params = AdParams {
            schedule: AlphaSchedule::AlwaysPass,
            max_rounds: 8,
            ..AdParams::default()
        };
        let (sim, _) = run(80, 4, params, 4);
        assert!(!sim.node(NodeId::new(0)).holds_token());
    }

    #[test]
    fn never_pass_keeps_token_at_first_virtual_source() {
        let params = AdParams {
            schedule: AlphaSchedule::NeverPass,
            max_rounds: 5,
            ..AdParams::default()
        };
        let (sim, metrics) = run(60, 4, params, 5);
        // Exactly one token transfer: origin → first virtual source.
        assert_eq!(metrics.messages_of_kind("ad-token"), 1);
        let holders = sim.nodes().iter().filter(|n| n.holds_token()).count();
        assert_eq!(holders, 1);
    }

    #[test]
    fn always_pass_creates_a_token_chain() {
        let params = AdParams {
            schedule: AlphaSchedule::AlwaysPass,
            max_rounds: 6,
            ..AdParams::default()
        };
        let (_, metrics) = run(60, 4, params, 6);
        // One transfer from the origin plus one per executed round (minus the
        // final round, which only marks completion).
        assert!(metrics.messages_of_kind("ad-token") >= 5);
        assert_eq!(metrics.counter("ad-keep"), 0);
    }

    #[test]
    fn round_counter_stops_at_max_rounds() {
        let params = AdParams {
            max_rounds: 3,
            ..AdParams::default()
        };
        let (_, metrics) = run(60, 4, params, 7);
        assert!(metrics.counter("ad-rounds") <= 4);
        assert_eq!(metrics.counter("ad-finished"), 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let params = AdParams::default();
        let (_, a) = run(50, 4, params, 42);
        let (_, b) = run(50, 4, params, 42);
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.delivered_at, b.delivered_at);
    }

    #[test]
    fn node_accessors() {
        let node = AdaptiveDiffusionNode::new(AdParams::default());
        assert!(!node.is_infected());
        assert!(!node.is_origin());
        assert!(!node.holds_token());
        assert_eq!(node.infection_parent(), None);
    }

    #[test]
    fn isolated_origin_does_not_panic() {
        let graph = fnp_netsim::Graph::new(1);
        let nodes = vec![SimDriver::new(AdaptiveDiffusionNode::new(
            AdParams::default(),
        ))];
        let mut sim = Simulator::new(graph, nodes, SimConfig::default());
        sim.trigger(NodeId::new(0), |driver, ctx| {
            driver.drive(ctx, |node, view, out| node.start_broadcast(view, out));
        });
        let metrics = sim.run();
        assert_eq!(metrics.delivered_count(), 1);
        assert_eq!(metrics.messages_sent, 0);
    }
}
