//! Convenience runner and reporting for adaptive diffusion experiments.
//!
//! Experiment E6 reproduces the §V-A comparison: "we averaged 12,500
//! messages with adaptive diffusion to reach all 1,000 peers. This compares
//! to an average of 7,000 messages for a regular flood and prune
//! broadcast." The helper here runs one adaptive diffusion broadcast and
//! reports both the total message count and the count *up to the moment
//! full coverage was reached* (the figure the paper quotes), since a
//! virtual source with a generous round budget keeps spreading after the
//! last node has already been reached.

use crate::protocol::{AdParams, AdaptiveDiffusionNode};
use fnp_netsim::{Graph, Metrics, NodeId, SimConfig, Simulator, TrialArena};
use fnp_proto::SimDriver;

/// Result of one adaptive diffusion run.
#[derive(Clone, Debug)]
pub struct DiffusionReport {
    /// Full simulator metrics (message counts by kind, delivery times, …).
    pub metrics: Metrics,
    /// Fraction of nodes reached.
    pub coverage: f64,
    /// Messages sent up to (and including) the moment the last node was
    /// reached; `None` if full coverage was never achieved.
    pub messages_until_full_coverage: Option<u64>,
    /// Number of virtual-source rounds executed.
    pub rounds_executed: u64,
}

impl DiffusionReport {
    fn from_metrics(metrics: Metrics) -> Self {
        let coverage = metrics.coverage();
        let messages_until_full_coverage = if coverage >= 1.0 {
            let full_coverage_at = metrics
                .delivered_at
                .iter()
                .flatten()
                .copied()
                .max()
                .unwrap_or(0);
            if metrics.trace.is_empty() {
                // Tracing disabled: fall back to the total (an upper bound).
                Some(metrics.messages_sent)
            } else {
                Some(
                    metrics
                        .trace
                        .iter()
                        .filter(|entry| entry.at <= full_coverage_at)
                        .count() as u64,
                )
            }
        } else {
            None
        };
        Self {
            coverage,
            messages_until_full_coverage,
            rounds_executed: metrics.counter("ad-rounds"),
            metrics,
        }
    }
}

/// Runs one adaptive diffusion broadcast from `origin` over `graph`.
///
/// The simulation is stepped until either the event queue drains or every
/// node has received the message; in the latter case
/// [`DiffusionReport::messages_until_full_coverage`] is the number of
/// messages *sent* up to that moment, which matches the paper's
/// "messages ... to reach all peers" accounting. The configuration's
/// `record_trace` flag is forced on so the report can also be replayed by
/// adversary estimators.
pub fn run_adaptive_diffusion(
    graph: Graph,
    origin: NodeId,
    params: AdParams,
    config: SimConfig,
) -> DiffusionReport {
    run_adaptive_diffusion_in(&mut TrialArena::new(), graph, origin, params, config)
}

/// Like [`run_adaptive_diffusion`], but reuses `arena`'s pooled simulator
/// storage (recycle the report's [`Metrics`] via
/// [`TrialArena::recycle_metrics`] once aggregated).
pub fn run_adaptive_diffusion_in(
    arena: &mut TrialArena,
    graph: Graph,
    origin: NodeId,
    params: AdParams,
    mut config: SimConfig,
) -> DiffusionReport {
    config.record_trace = true;
    let node_count = graph.node_count();
    let mut nodes: Vec<SimDriver<AdaptiveDiffusionNode>> = arena.take_nodes();
    nodes.extend((0..node_count).map(|_| SimDriver::new(AdaptiveDiffusionNode::new(params))));
    let mut sim = Simulator::new_in(arena, graph, nodes, config);
    sim.trigger(origin, |driver, ctx| {
        driver.drive(ctx, |node, view, out| node.start_broadcast(view, out));
    });
    let mut messages_at_full_coverage = None;
    while sim.step() {
        if messages_at_full_coverage.is_none() && sim.metrics().coverage() >= 1.0 {
            messages_at_full_coverage = Some(sim.metrics().messages_sent);
            // Full coverage reached: the remaining queued events would only
            // add post-coverage overhead, which the §V-A comparison does not
            // count, so stop here.
            break;
        }
    }
    let (nodes, metrics) = sim.into_parts_in(arena);
    arena.store_nodes(nodes);
    let mut report = DiffusionReport::from_metrics(metrics);
    report.messages_until_full_coverage = messages_at_full_coverage;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnp_netsim::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn report_for_full_dissemination() {
        let mut rng = StdRng::seed_from_u64(3);
        let graph = topology::random_regular(80, 4, &mut rng).unwrap();
        let params = AdParams {
            max_rounds: 64,
            ..AdParams::default()
        };
        let report = run_adaptive_diffusion(
            graph,
            NodeId::new(5),
            params,
            SimConfig {
                seed: 3,
                ..SimConfig::default()
            },
        );
        assert_eq!(report.coverage, 1.0);
        let until_full = report.messages_until_full_coverage.unwrap();
        assert!(until_full > 0);
        assert!(until_full <= report.metrics.messages_sent);
        assert!(report.rounds_executed > 0);
    }

    #[test]
    fn report_for_depth_limited_run() {
        let mut rng = StdRng::seed_from_u64(4);
        let graph = topology::random_regular(200, 4, &mut rng).unwrap();
        let params = AdParams {
            max_rounds: 3,
            ..AdParams::default()
        };
        let report = run_adaptive_diffusion(
            graph,
            NodeId::new(0),
            params,
            SimConfig {
                seed: 4,
                ..SimConfig::default()
            },
        );
        // Three rounds cannot reach 200 nodes.
        assert!(report.coverage < 1.0);
        assert_eq!(report.messages_until_full_coverage, None);
    }

    #[test]
    fn reports_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let graph = topology::random_regular(60, 4, &mut rng).unwrap();
        let params = AdParams::default();
        let a = run_adaptive_diffusion(
            graph.clone(),
            NodeId::new(1),
            params,
            SimConfig {
                seed: 9,
                ..SimConfig::default()
            },
        );
        let b = run_adaptive_diffusion(
            graph,
            NodeId::new(1),
            params,
            SimConfig {
                seed: 9,
                ..SimConfig::default()
            },
        );
        assert_eq!(a.metrics.messages_sent, b.metrics.messages_sent);
        assert_eq!(
            a.messages_until_full_coverage,
            b.messages_until_full_coverage
        );
    }
}
