//! The explicit share-splitting DC-net round of the paper's Fig. 4.
//!
//! Every group member executes the same nine steps:
//!
//! 1. split its message (or the all-zero slot) into one random share per
//!    *other* member, XORing to the message;
//! 2. send share `r_i` to member `g_i`;
//! 3. collect the shares `s_i` the others sent;
//! 4. compute `S = ⊕ s_i`;
//! 5. send `S ⊕ s_i` back to `g_i`;
//! 6. collect those accumulations as `t_i`;
//! 7. compute `T = ⊕ t_i`;
//! 8. send `T ⊕ t_i` to `g_i` (a mutual exchange of the accumulated totals
//!    that lets members audit the round after the fact);
//! 9. recover the round result as `m = T ⊕ S`.
//!
//! If nobody sent, `T ⊕ S` is the all-zero slot; if exactly one member sent,
//! every *other* member recovers that member's framed message (the sender
//! recovers zero and already knows its own message); if several members
//! sent, the CRC of the framed slot fails and the round is reported as a
//! collision (see [`crate::slot`]).
//!
//! Each member transmits `3·(k−1)` point-to-point messages for a group of
//! size `k`, i.e. `3·k·(k−1)` messages per round in total — the O(k²) cost
//! the paper discusses in §V-A and that experiment E4 measures.

use crate::scratch::RoundScratch;
use crate::slot::{self, SlotOutcome};
use fnp_crypto::prg::{xor, xor_into};
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced while driving an explicit DC-net round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplicitRoundError {
    /// The group is too small for a meaningful round.
    GroupTooSmall {
        /// Number of members in the offending group.
        size: usize,
    },
    /// The member index is outside the group.
    MemberOutOfRange {
        /// Offending index.
        index: usize,
        /// Group size.
        size: usize,
    },
    /// The payload does not fit into the configured slot.
    PayloadTooLarge(slot::PayloadTooLargeError),
    /// A message arrived from an unexpected member or out of phase.
    UnexpectedMessage {
        /// Sender of the unexpected message.
        from: usize,
        /// Phase the participant was in.
        phase: Phase,
    },
    /// A received blob has the wrong length for this round's slot size.
    WrongSlotLength {
        /// Received length.
        received: usize,
        /// Expected slot length.
        expected: usize,
    },
}

impl fmt::Display for ExplicitRoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplicitRoundError::GroupTooSmall { size } => {
                write!(
                    f,
                    "dc-net group of size {size} is too small (need at least 2)"
                )
            }
            ExplicitRoundError::MemberOutOfRange { index, size } => {
                write!(f, "member index {index} outside group of size {size}")
            }
            ExplicitRoundError::PayloadTooLarge(inner) => write!(f, "{inner}"),
            ExplicitRoundError::UnexpectedMessage { from, phase } => {
                write!(
                    f,
                    "unexpected message from member {from} in phase {phase:?}"
                )
            }
            ExplicitRoundError::WrongSlotLength { received, expected } => {
                write!(
                    f,
                    "received blob of {received} bytes, expected slot of {expected} bytes"
                )
            }
        }
    }
}

impl std::error::Error for ExplicitRoundError {}

impl From<slot::PayloadTooLargeError> for ExplicitRoundError {
    fn from(e: slot::PayloadTooLargeError) -> Self {
        ExplicitRoundError::PayloadTooLarge(e)
    }
}

/// Protocol phase of an [`ExplicitParticipant`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for the shares of step 3.
    Sharing,
    /// Waiting for the accumulations of step 6.
    Accumulating,
    /// Waiting for the final exchange of step 8 (the outcome is already
    /// computable in this phase).
    Finalizing,
    /// All messages of the round have been processed.
    Done,
}

/// One group member's state machine for a single explicit DC-net round.
#[derive(Debug, Clone)]
pub struct ExplicitParticipant {
    index: usize,
    size: usize,
    slot_len: usize,
    phase: Phase,
    sent_payload: bool,
    own_slot: Vec<u8>,
    /// Shares generated in step 1, indexed by recipient.
    outgoing_shares: BTreeMap<usize, Vec<u8>>,
    /// Shares received in step 3, indexed by sender.
    received_shares: BTreeMap<usize, Vec<u8>>,
    s_value: Option<Vec<u8>>,
    /// Accumulations received in step 6, indexed by sender.
    received_accumulations: BTreeMap<usize, Vec<u8>>,
    t_value: Option<Vec<u8>>,
    /// Final exchange values received in step 8, indexed by sender.
    received_finals: BTreeMap<usize, Vec<u8>>,
}

impl ExplicitParticipant {
    /// Creates the participant with index `index` in a group of `size`
    /// members, optionally carrying `payload` this round.
    ///
    /// # Errors
    ///
    /// Fails if the group has fewer than two members, the index is out of
    /// range, or the payload does not fit into `slot_len`.
    pub fn new<R: Rng + ?Sized>(
        index: usize,
        size: usize,
        slot_len: usize,
        payload: Option<&[u8]>,
        rng: &mut R,
    ) -> Result<Self, ExplicitRoundError> {
        let mut scratch = RoundScratch::new();
        Self::new_in(index, size, slot_len, payload, rng, &mut scratch)
    }

    /// Like [`ExplicitParticipant::new`], but drawing the slot and share
    /// buffers from `scratch` instead of allocating them fresh.
    ///
    /// The RNG fill sequence is identical to the unpooled constructor (the
    /// same number of same-length fills in the same order), so pooled and
    /// fresh participants are byte-for-byte interchangeable for any seed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExplicitParticipant::new`].
    pub fn new_in<R: Rng + ?Sized>(
        index: usize,
        size: usize,
        slot_len: usize,
        payload: Option<&[u8]>,
        rng: &mut R,
        scratch: &mut RoundScratch,
    ) -> Result<Self, ExplicitRoundError> {
        if size < 2 {
            return Err(ExplicitRoundError::GroupTooSmall { size });
        }
        if index >= size {
            return Err(ExplicitRoundError::MemberOutOfRange { index, size });
        }
        let mut own_slot = scratch.checkout();
        match payload {
            Some(payload) => {
                if let Err(e) = slot::encode_into(payload, slot_len, &mut own_slot) {
                    scratch.recycle(own_slot);
                    return Err(e.into());
                }
            }
            None => slot::silence_into(slot_len, &mut own_slot),
        }
        // Step 1: one share per *other* member, XORing to the slot. This
        // mirrors `fnp_crypto::prg::random_shares` with pooled buffers: the
        // first `size − 2` shares are uniform, the last is the accumulator.
        let mut accumulator = scratch.checkout();
        accumulator.extend_from_slice(&own_slot);
        let mut shares: Vec<Vec<u8>> = Vec::with_capacity(size - 1);
        for _ in 0..size - 2 {
            let mut share = scratch.checkout_zeroed(own_slot.len());
            rng.fill(share.as_mut_slice());
            xor_into(&mut accumulator, &share);
            shares.push(share);
        }
        shares.push(accumulator);
        let outgoing_shares: BTreeMap<usize, Vec<u8>> = (0..size)
            .filter(|&peer| peer != index)
            .zip(shares)
            .collect();
        Ok(Self {
            index,
            size,
            slot_len,
            phase: Phase::Sharing,
            sent_payload: payload.is_some(),
            own_slot,
            outgoing_shares,
            received_shares: BTreeMap::new(),
            s_value: None,
            received_accumulations: BTreeMap::new(),
            t_value: None,
            received_finals: BTreeMap::new(),
        })
    }

    /// This member's index within the group.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Group size.
    pub fn group_size(&self) -> usize {
        self.size
    }

    /// Current protocol phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Whether this member transmitted a payload this round.
    pub fn is_sender(&self) -> bool {
        self.sent_payload
    }

    /// Step 2: the shares to send, one per other member.
    pub fn share_messages(&self) -> Vec<(usize, Vec<u8>)> {
        self.outgoing_shares
            .iter()
            .map(|(&peer, share)| (peer, share.clone()))
            .collect()
    }

    fn check_peer(&self, from: usize) -> Result<(), ExplicitRoundError> {
        if from >= self.size || from == self.index {
            return Err(ExplicitRoundError::MemberOutOfRange {
                index: from,
                size: self.size,
            });
        }
        Ok(())
    }

    fn check_len(&self, blob: &[u8]) -> Result<(), ExplicitRoundError> {
        if blob.len() != self.slot_len {
            return Err(ExplicitRoundError::WrongSlotLength {
                received: blob.len(),
                expected: self.slot_len,
            });
        }
        Ok(())
    }

    /// Step 3: absorbs the share another member sent to us.
    pub fn receive_share(&mut self, from: usize, share: Vec<u8>) -> Result<(), ExplicitRoundError> {
        self.check_peer(from)?;
        self.check_len(&share)?;
        if self.phase != Phase::Sharing || self.received_shares.contains_key(&from) {
            return Err(ExplicitRoundError::UnexpectedMessage {
                from,
                phase: self.phase,
            });
        }
        self.received_shares.insert(from, share);
        if self.received_shares.len() == self.size - 1 {
            // Step 4.
            let mut s = vec![0u8; self.slot_len];
            for share in self.received_shares.values() {
                xor_into(&mut s, share);
            }
            self.s_value = Some(s);
            self.phase = Phase::Accumulating;
        }
        Ok(())
    }

    /// Step 5: the accumulation messages `S ⊕ s_i`, available once all
    /// shares have arrived.
    pub fn accumulation_messages(&self) -> Option<Vec<(usize, Vec<u8>)>> {
        let s = self.s_value.as_ref()?;
        Some(
            self.received_shares
                .iter()
                .map(|(&peer, share)| (peer, xor(s, share)))
                .collect(),
        )
    }

    /// Step 6: absorbs an accumulation from another member.
    pub fn receive_accumulation(
        &mut self,
        from: usize,
        accumulation: Vec<u8>,
    ) -> Result<(), ExplicitRoundError> {
        self.check_peer(from)?;
        self.check_len(&accumulation)?;
        if self.phase != Phase::Accumulating || self.received_accumulations.contains_key(&from) {
            return Err(ExplicitRoundError::UnexpectedMessage {
                from,
                phase: self.phase,
            });
        }
        self.received_accumulations.insert(from, accumulation);
        if self.received_accumulations.len() == self.size - 1 {
            // Step 7.
            let mut t = vec![0u8; self.slot_len];
            for accumulation in self.received_accumulations.values() {
                xor_into(&mut t, accumulation);
            }
            self.t_value = Some(t);
            self.phase = Phase::Finalizing;
        }
        Ok(())
    }

    /// Step 8: the final exchange messages `T ⊕ t_i`, available once all
    /// accumulations have arrived.
    pub fn final_messages(&self) -> Option<Vec<(usize, Vec<u8>)>> {
        let t = self.t_value.as_ref()?;
        Some(
            self.received_accumulations
                .iter()
                .map(|(&peer, accumulation)| (peer, xor(t, accumulation)))
                .collect(),
        )
    }

    /// Absorbs a final-exchange value (step 8 at the receiving side).
    pub fn receive_final(&mut self, from: usize, value: Vec<u8>) -> Result<(), ExplicitRoundError> {
        self.check_peer(from)?;
        self.check_len(&value)?;
        if self.phase != Phase::Finalizing || self.received_finals.contains_key(&from) {
            return Err(ExplicitRoundError::UnexpectedMessage {
                from,
                phase: self.phase,
            });
        }
        self.received_finals.insert(from, value);
        if self.received_finals.len() == self.size - 1 {
            self.phase = Phase::Done;
        }
        Ok(())
    }

    /// Step 9: the round outcome `decode(T ⊕ S)`, available from the moment
    /// all accumulations have been received (phase `Finalizing` or `Done`).
    ///
    /// A member that transmitted this round recovers its own payload (for it,
    /// `T ⊕ S` cancels to zero, so it reports its own message instead, as the
    /// paper prescribes).
    pub fn outcome(&self) -> Option<SlotOutcome> {
        let s = self.s_value.as_ref()?;
        let t = self.t_value.as_ref()?;
        let recovered = xor(t, s);
        if self.sent_payload {
            // The sender's own view cancels its message out; it already knows
            // what it sent.
            return Some(slot::decode(&self.own_slot));
        }
        Some(slot::decode(&recovered))
    }

    /// The raw recovered slot (`T ⊕ S`), for auditing and blame procedures.
    pub fn recovered_slot(&self) -> Option<Vec<u8>> {
        Some(xor(self.t_value.as_ref()?, self.s_value.as_ref()?))
    }

    /// The shares this member generated in step 1 (recipient → share).
    /// Exposed for the blame protocol, which asks members to reveal their
    /// round state when misbehaviour is suspected.
    pub fn revealed_shares(&self) -> &BTreeMap<usize, Vec<u8>> {
        &self.outgoing_shares
    }

    /// The shares this member received in step 3 (sender → share), exposed
    /// for the blame protocol.
    pub fn received_share_map(&self) -> &BTreeMap<usize, Vec<u8>> {
        &self.received_shares
    }

    /// The framed slot this member contributed (all zeros when silent),
    /// exposed for the blame protocol.
    pub fn contributed_slot(&self) -> &[u8] {
        &self.own_slot
    }

    /// Returns this participant's pooled buffers to `scratch` once the
    /// round is over, so that consecutive rounds of any group size reuse
    /// the same allocations. The `S`/`T` accumulators are dropped instead:
    /// they are created outside the pool, and recycling them would grow it
    /// without bound.
    fn recycle_into(self, scratch: &mut RoundScratch) {
        scratch.recycle(self.own_slot);
        for buf in self.outgoing_shares.into_values() {
            scratch.recycle(buf);
        }
        for buf in self.received_shares.into_values() {
            scratch.recycle(buf);
        }
        for buf in self.received_accumulations.into_values() {
            scratch.recycle(buf);
        }
        for buf in self.received_finals.into_values() {
            scratch.recycle(buf);
        }
    }
}

/// Aggregate report of one in-memory explicit DC-net round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplicitRoundReport {
    /// Outcome observed by each member, indexed by member.
    pub outcomes: Vec<SlotOutcome>,
    /// Total point-to-point messages exchanged.
    pub messages_sent: u64,
    /// Total bytes carried by those messages.
    pub bytes_sent: u64,
    /// Slot size used for the round.
    pub slot_len: usize,
}

impl ExplicitRoundReport {
    /// True if every member observed the same outcome.
    pub fn is_unanimous(&self) -> bool {
        self.outcomes.windows(2).all(|w| w[0] == w[1])
    }
}

/// Runs a complete explicit DC-net round in memory.
///
/// `payloads[i]` is the payload member `i` wants to transmit this round
/// (`None` for silent members). Returns the outcome as seen by every member
/// together with the exact message and byte counts of the round, which is
/// what experiment E4 reports.
///
/// # Errors
///
/// Fails if the group is smaller than two members or a payload exceeds the
/// slot capacity.
pub fn run_explicit_round<R: Rng + ?Sized>(
    payloads: &[Option<Vec<u8>>],
    slot_len: usize,
    rng: &mut R,
) -> Result<ExplicitRoundReport, ExplicitRoundError> {
    let mut scratch = RoundScratch::new();
    run_explicit_round_in(payloads, slot_len, rng, &mut scratch)
}

/// Like [`run_explicit_round`], but drawing every slot, share and message
/// buffer from `scratch` and recycling them all when the round completes.
///
/// An explicit round moves `4·k·(k−1) + k` buffers of `slot_len` bytes;
/// with a warm scratch none of them is allocated. The report is
/// byte-for-byte identical to the unpooled driver for the same RNG seed
/// (the fill sequence is preserved exactly), which is what lets the
/// experiment harnesses pool buffers across trials without perturbing any
/// published figure.
///
/// # Errors
///
/// Same conditions as [`run_explicit_round`].
pub fn run_explicit_round_in<R: Rng + ?Sized>(
    payloads: &[Option<Vec<u8>>],
    slot_len: usize,
    rng: &mut R,
    scratch: &mut RoundScratch,
) -> Result<ExplicitRoundReport, ExplicitRoundError> {
    let size = payloads.len();
    let mut members: Vec<ExplicitParticipant> = Vec::with_capacity(size);
    for (index, payload) in payloads.iter().enumerate() {
        members.push(ExplicitParticipant::new_in(
            index,
            size,
            slot_len,
            payload.as_deref(),
            rng,
            scratch,
        )?);
    }

    let mut messages_sent = 0u64;
    let mut bytes_sent = 0u64;

    // One flat delivery list reused for all three exchanges; the message
    // payloads are pooled copies, which the recipients keep and recycle at
    // the end of the round via `recycle_into`.
    let mut deliveries: Vec<(usize, usize, Vec<u8>)> =
        Vec::with_capacity(size.saturating_sub(1) * size);

    // Step 2 → 3.
    for member in &members {
        for (&recipient, share) in &member.outgoing_shares {
            let mut message = scratch.checkout();
            message.extend_from_slice(share);
            deliveries.push((member.index, recipient, message));
        }
    }
    for (sender, recipient, share) in deliveries.drain(..) {
        messages_sent += 1;
        bytes_sent += share.len() as u64;
        members[recipient].receive_share(sender, share)?;
    }

    // Step 5 → 6.
    for member in &members {
        let s = member.s_value.as_ref().expect("all shares delivered");
        for (&recipient, share) in &member.received_shares {
            let mut message = scratch.checkout();
            message.extend_from_slice(s);
            xor_into(&mut message, share);
            deliveries.push((member.index, recipient, message));
        }
    }
    for (sender, recipient, accumulation) in deliveries.drain(..) {
        messages_sent += 1;
        bytes_sent += accumulation.len() as u64;
        members[recipient].receive_accumulation(sender, accumulation)?;
    }

    // Step 8.
    for member in &members {
        let t = member
            .t_value
            .as_ref()
            .expect("all accumulations delivered");
        for (&recipient, accumulation) in &member.received_accumulations {
            let mut message = scratch.checkout();
            message.extend_from_slice(t);
            xor_into(&mut message, accumulation);
            deliveries.push((member.index, recipient, message));
        }
    }
    for (sender, recipient, value) in deliveries.drain(..) {
        messages_sent += 1;
        bytes_sent += value.len() as u64;
        members[recipient].receive_final(sender, value)?;
    }

    let outcomes = members
        .iter()
        .map(|m| m.outcome().expect("round completed"))
        .collect();
    for member in members {
        member.recycle_into(scratch);
    }
    Ok(ExplicitRoundReport {
        outcomes,
        messages_sent,
        bytes_sent,
        slot_len,
    })
}

/// The number of point-to-point messages an explicit round of group size
/// `k` costs: every member sends three batches of `k − 1` messages.
pub fn expected_message_count(k: usize) -> u64 {
    if k < 2 {
        return 0;
    }
    3 * (k as u64) * (k as u64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn silent_round_yields_silence_for_everyone() {
        let payloads = vec![None; 5];
        let report = run_explicit_round(&payloads, 64, &mut rng(1)).unwrap();
        assert!(report.outcomes.iter().all(|o| *o == SlotOutcome::Silence));
        assert!(report.is_unanimous());
        assert_eq!(report.messages_sent, expected_message_count(5));
    }

    #[test]
    fn single_sender_is_recovered_by_all() {
        let message = b"pay 3 tokens to dave".to_vec();
        let mut payloads = vec![None; 6];
        payloads[2] = Some(message.clone());
        let report = run_explicit_round(&payloads, 128, &mut rng(2)).unwrap();
        for outcome in &report.outcomes {
            assert_eq!(*outcome, SlotOutcome::Message(message.clone()));
        }
        assert_eq!(report.messages_sent, expected_message_count(6));
        assert_eq!(report.bytes_sent, expected_message_count(6) * 128);
    }

    #[test]
    fn two_senders_collide() {
        let mut payloads = vec![None; 5];
        payloads[0] = Some(b"first".to_vec());
        payloads[3] = Some(b"second".to_vec());
        let report = run_explicit_round(&payloads, 64, &mut rng(3)).unwrap();
        // All silent members detect the collision; the two senders each see
        // their own message (they cannot tell yet that it was destroyed —
        // they learn that from the absence of propagation / a repeat round).
        for (index, outcome) in report.outcomes.iter().enumerate() {
            match index {
                0 => assert_eq!(*outcome, SlotOutcome::Message(b"first".to_vec())),
                3 => assert_eq!(*outcome, SlotOutcome::Message(b"second".to_vec())),
                _ => assert_eq!(*outcome, SlotOutcome::Collision),
            }
        }
    }

    #[test]
    fn minimum_group_of_two_works() {
        let payloads = vec![Some(b"hi".to_vec()), None];
        let report = run_explicit_round(&payloads, 32, &mut rng(4)).unwrap();
        assert_eq!(report.outcomes[1], SlotOutcome::Message(b"hi".to_vec()));
        assert_eq!(report.messages_sent, expected_message_count(2));
    }

    #[test]
    fn group_of_one_is_rejected() {
        let result = run_explicit_round(&[Some(b"hi".to_vec())], 32, &mut rng(5));
        assert!(matches!(
            result,
            Err(ExplicitRoundError::GroupTooSmall { size: 1 })
        ));
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let payloads = vec![Some(vec![0u8; 100]), None, None];
        let result = run_explicit_round(&payloads, 64, &mut rng(6));
        assert!(matches!(
            result,
            Err(ExplicitRoundError::PayloadTooLarge(_))
        ));
    }

    #[test]
    fn message_count_grows_quadratically() {
        // The k² shape of §V-A / experiment E4.
        let mut previous = 0;
        for k in 2..=12 {
            let payloads = vec![None; k];
            let report = run_explicit_round(&payloads, 32, &mut rng(7)).unwrap();
            assert_eq!(report.messages_sent, expected_message_count(k));
            assert!(report.messages_sent > previous);
            previous = report.messages_sent;
        }
        assert_eq!(expected_message_count(10), 270);
        assert_eq!(expected_message_count(1), 0);
    }

    #[test]
    fn participant_rejects_out_of_phase_messages() {
        let mut rng = rng(8);
        let mut p = ExplicitParticipant::new(0, 3, 32, None, &mut rng).unwrap();
        // Accumulation before shares are complete is out of phase.
        let err = p.receive_accumulation(1, vec![0u8; 32]).unwrap_err();
        assert!(matches!(err, ExplicitRoundError::UnexpectedMessage { .. }));
        // Duplicate share.
        p.receive_share(1, vec![0u8; 32]).unwrap();
        let err = p.receive_share(1, vec![0u8; 32]).unwrap_err();
        assert!(matches!(err, ExplicitRoundError::UnexpectedMessage { .. }));
        // Wrong slot length.
        let err = p.receive_share(2, vec![0u8; 31]).unwrap_err();
        assert!(matches!(err, ExplicitRoundError::WrongSlotLength { .. }));
        // Self and out-of-range senders.
        assert!(p.receive_share(0, vec![0u8; 32]).is_err());
        assert!(p.receive_share(9, vec![0u8; 32]).is_err());
    }

    #[test]
    fn phases_progress_in_order() {
        let mut rng = rng(9);
        let mut p = ExplicitParticipant::new(0, 2, 32, None, &mut rng).unwrap();
        assert_eq!(p.phase(), Phase::Sharing);
        assert!(p.accumulation_messages().is_none());
        assert!(p.outcome().is_none());

        p.receive_share(1, vec![0u8; 32]).unwrap();
        assert_eq!(p.phase(), Phase::Accumulating);
        assert!(p.accumulation_messages().is_some());

        p.receive_accumulation(1, vec![0u8; 32]).unwrap();
        assert_eq!(p.phase(), Phase::Finalizing);
        assert!(p.outcome().is_some());

        p.receive_final(1, vec![0u8; 32]).unwrap();
        assert_eq!(p.phase(), Phase::Done);
    }

    #[test]
    fn sender_flag_and_reveals_are_exposed() {
        let mut rng = rng(10);
        let p = ExplicitParticipant::new(1, 4, 64, Some(b"msg"), &mut rng).unwrap();
        assert!(p.is_sender());
        assert_eq!(p.revealed_shares().len(), 3);
        assert_eq!(p.group_size(), 4);
        assert_eq!(p.index(), 1);
        assert_eq!(
            slot::decode(p.contributed_slot()),
            SlotOutcome::Message(b"msg".to_vec())
        );
    }

    #[test]
    fn error_display_strings() {
        let errors: Vec<ExplicitRoundError> = vec![
            ExplicitRoundError::GroupTooSmall { size: 1 },
            ExplicitRoundError::MemberOutOfRange { index: 9, size: 3 },
            ExplicitRoundError::UnexpectedMessage {
                from: 2,
                phase: Phase::Sharing,
            },
            ExplicitRoundError::WrongSlotLength {
                received: 3,
                expected: 64,
            },
        ];
        for error in errors {
            assert!(!error.to_string().is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// For any group size and any single sender, every silent member
        /// recovers exactly the transmitted payload.
        #[test]
        fn prop_single_sender_always_recovered(
            size in 2usize..9,
            sender in 0usize..9,
            payload in proptest::collection::vec(any::<u8>(), 0..50),
            seed in any::<u64>(),
        ) {
            let sender = sender % size;
            let mut payloads = vec![None; size];
            payloads[sender] = Some(payload.clone());
            let report = run_explicit_round(&payloads, 64, &mut rng(seed)).unwrap();
            for (index, outcome) in report.outcomes.iter().enumerate() {
                if index != sender {
                    prop_assert_eq!(outcome, &SlotOutcome::Message(payload.clone()));
                }
            }
        }

        /// Collisions never decode as a clean message at silent members.
        #[test]
        fn prop_multiple_senders_never_leak_a_clean_message(
            size in 3usize..8,
            seed in any::<u64>(),
            payload_a in proptest::collection::vec(any::<u8>(), 1..40),
            payload_b in proptest::collection::vec(any::<u8>(), 1..40),
        ) {
            prop_assume!(payload_a != payload_b);
            let mut payloads = vec![None; size];
            payloads[0] = Some(payload_a);
            payloads[1] = Some(payload_b);
            let report = run_explicit_round(&payloads, 64, &mut rng(seed)).unwrap();
            for outcome in report.outcomes.iter().skip(2) {
                prop_assert_eq!(outcome, &SlotOutcome::Collision);
            }
        }
    }
}
